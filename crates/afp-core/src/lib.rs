//! # afp-core — the end-to-end analog layout pipeline
//!
//! This facade crate ties the whole reproduction together, mirroring the
//! paper's Fig. 1 pipeline, and provides the reporting machinery the
//! experiment harnesses use:
//!
//! * [`LayoutPipeline`] — schematic → structure recognition → floorplanning
//!   (R-GCN + RL agent, greedy placer or any baseline) → OARSMT global routing
//!   → procedural layout completion,
//! * [`report`] — the Table I / Table II row structures, the paper's recorded
//!   manual-design reference values and plain-text rendering,
//! * [`stats`] — interquartile means and standard deviations,
//! * [`parallel`] — fan-out of independent experiment runs over worker
//!   threads (re-exported from the bottom-layer `afp-par` crate, which also
//!   powers `afp-metaheuristics`' batched candidate-evaluation pool),
//! * [`serve`] — the solve service (re-exported from `afp-serve`): canonical
//!   problem fingerprints, a content-addressed result cache, and a
//!   [`JobEngine`] that shards cancellable, deadline-aware solve jobs across
//!   a shared persistent worker pool.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::generators;
//! use afp_core::LayoutPipeline;
//!
//! let mut pipeline = LayoutPipeline::with_greedy();
//! let result = pipeline.run(&generators::ota3());
//! assert!(result.layout.area_um2 > 0.0);
//! assert!(result.report.clean || !result.layout.drc_violations.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use afp_par as parallel;
pub use afp_serve as serve;
pub mod pipeline;
pub mod report;
pub mod stats;

pub use parallel::{
    parallel_map, parallel_map_scoped, CancelToken, PoolStats, RunControl, StopReason, WorkerPool,
};
pub use pipeline::{FloorplanMethod, LayoutPipeline, PipelineConfig, PipelineResult};
pub use serve::{JobEngine, JobRequest, JobSpec, ServeConfig};
pub use report::{
    format_table_one, format_table_two, paper_manual_references, ManualReference,
    MethodMeasurements, MethodSummary, TableOneRow, TableTwoRow,
};
pub use stats::{interquartile_mean, mean, std_dev, Summary};

//! Statistics helpers used by the experiment harnesses.
//!
//! Table I reports the interquartile mean and standard deviation over repeated
//! runs; these helpers implement those aggregations plus simple formatting.

/// Interquartile mean of a sample: the mean of the values between the 25th and
/// 75th percentile (inclusive). Falls back to the plain mean for fewer than
/// four samples.
pub fn interquartile_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    if values.len() < 4 {
        return mean(values);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = sorted.len() / 4;
    let trimmed = &sorted[q..sorted.len() - q];
    mean(trimmed)
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0.0 for fewer than two samples).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// A `mean ± std` summary of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Interquartile mean.
    pub iq_mean: f64,
    /// Standard deviation.
    pub std: f64,
}

impl Summary {
    /// Builds the summary of a sample.
    pub fn of(values: &[f64]) -> Self {
        Summary {
            iq_mean: interquartile_mean(values),
            std: std_dev(values),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}±{:.2}", self.iq_mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-9);
        assert!((std_dev(&v) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interquartile_mean_trims_outliers() {
        let v = [1.0, 10.0, 11.0, 12.0, 13.0, 100.0];
        let iqm = interquartile_mean(&v);
        assert!((iqm - 11.5).abs() < 1e-9);
        assert!(iqm < mean(&v));
    }

    #[test]
    fn small_samples_fall_back_to_mean() {
        assert_eq!(interquartile_mean(&[3.0, 5.0]), 4.0);
        assert_eq!(interquartile_mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_formats_like_the_paper() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let text = s.to_string();
        assert!(text.contains('±'));
    }
}

//! Experiment reporting: the row/series structures of Table I and Table II and
//! their plain-text rendering.

use crate::stats::Summary;

/// Repeated measurements of one (circuit, method) pair — the four metrics of
/// Table I.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MethodMeasurements {
    /// Optimization / inference runtimes in seconds.
    pub runtime_s: Vec<f64>,
    /// Dead-space percentages.
    pub dead_space_pct: Vec<f64>,
    /// HPWL values in µm.
    pub hpwl_um: Vec<f64>,
    /// Episode rewards (Eq. 5).
    pub reward: Vec<f64>,
}

impl MethodMeasurements {
    /// Creates an empty measurement set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one run.
    pub fn push(&mut self, runtime_s: f64, dead_space_pct: f64, hpwl_um: f64, reward: f64) {
        self.runtime_s.push(runtime_s);
        self.dead_space_pct.push(dead_space_pct);
        self.hpwl_um.push(hpwl_um);
        self.reward.push(reward);
    }

    /// Number of recorded runs.
    pub fn len(&self) -> usize {
        self.reward.len()
    }

    /// Returns `true` when no runs are recorded.
    pub fn is_empty(&self) -> bool {
        self.reward.is_empty()
    }

    /// Interquartile-mean ± std summaries of the four metrics.
    pub fn summarize(&self) -> MethodSummary {
        MethodSummary {
            runtime_s: Summary::of(&self.runtime_s),
            dead_space_pct: Summary::of(&self.dead_space_pct),
            hpwl_um: Summary::of(&self.hpwl_um),
            reward: Summary::of(&self.reward),
        }
    }
}

/// Summarized metrics of one (circuit, method) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodSummary {
    /// Runtime in seconds.
    pub runtime_s: Summary,
    /// Dead space in percent.
    pub dead_space_pct: Summary,
    /// HPWL in µm.
    pub hpwl_um: Summary,
    /// Episode reward.
    pub reward: Summary,
}

/// One row group of Table I: a circuit with the summaries of every method.
#[derive(Debug, Clone)]
pub struct TableOneRow {
    /// Circuit name.
    pub circuit: String,
    /// Number of functional structures (the "# Struct." column).
    pub num_structures: usize,
    /// `true` for the grey rows (circuits unseen during training).
    pub unseen: bool,
    /// Per-method summaries, in column order.
    pub methods: Vec<(String, MethodSummary)>,
}

impl TableOneRow {
    /// The method with the best (highest) reward in this row.
    pub fn best_method(&self) -> Option<&str> {
        self.methods
            .iter()
            .max_by(|a, b| {
                a.1.reward
                    .iq_mean
                    .partial_cmp(&b.1.reward.iq_mean)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(name, _)| name.as_str())
    }
}

/// Renders Table I as plain text (one block of four metric lines per circuit,
/// mirroring the paper's layout).
pub fn format_table_one(rows: &[TableOneRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "TABLE I — Comparative analysis of the R-GCN+RL method versus previous techniques\n",
    );
    for row in rows {
        out.push_str(&format!(
            "\nCircuit {} ({} structures){}\n",
            row.circuit,
            row.num_structures,
            if row.unseen { " [unseen]" } else { "" }
        ));
        let header: Vec<String> = row.methods.iter().map(|(n, _)| format!("{n:>16}")).collect();
        out.push_str(&format!("  {:<16}{}\n", "Metric", header.join("")));
        let metric_line = |label: &str, pick: &dyn Fn(&MethodSummary) -> Summary| {
            let cells: Vec<String> = row
                .methods
                .iter()
                .map(|(_, s)| format!("{:>16}", pick(s).to_string()))
                .collect();
            format!("  {:<16}{}\n", label, cells.join(""))
        };
        out.push_str(&metric_line("Runtime (s)", &|s| s.runtime_s));
        out.push_str(&metric_line("Dead space (%)", &|s| s.dead_space_pct));
        out.push_str(&metric_line("HPWL (um)", &|s| s.hpwl_um));
        out.push_str(&metric_line("Reward", &|s| s.reward));
        if let Some(best) = row.best_method() {
            out.push_str(&format!("  best reward: {best}\n"));
        }
    }
    out
}

/// The paper's recorded manual-design reference values for Table II
/// (area µm², dead space %, total layout time in hours). These are constants
/// of the original testbed and are reproduced here so the comparison can be
/// reported side by side with our measured automated flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualReference {
    /// Manual layout area in µm².
    pub area_um2: f64,
    /// Manual layout dead space in percent.
    pub dead_space_pct: f64,
    /// Manual layout time in hours.
    pub layout_time_h: f64,
}

/// Manual references from the paper's Table II, keyed by circuit family name.
pub fn paper_manual_references() -> Vec<(&'static str, ManualReference)> {
    vec![
        (
            "OTA",
            ManualReference {
                area_um2: 266.0,
                dead_space_pct: 31.92,
                layout_time_h: 8.0,
            },
        ),
        (
            "Bias-1",
            ManualReference {
                area_um2: 247.1,
                dead_space_pct: 49.32,
                layout_time_h: 8.0,
            },
        ),
        (
            "Driver",
            ManualReference {
                area_um2: 3674.0,
                dead_space_pct: 40.32,
                layout_time_h: 32.0,
            },
        ),
    ]
}

/// One row of Table II: our automated flow versus the manual reference.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTwoRow {
    /// Circuit name.
    pub circuit: String,
    /// Automated-flow layout area in µm².
    pub ours_area_um2: f64,
    /// Automated-flow dead space in percent.
    pub ours_dead_space_pct: f64,
    /// Automated-flow template generation time in seconds.
    pub template_time_s: f64,
    /// Assumed manual-improvement time in hours (the paper reports the manual
    /// touch-up spent after template generation).
    pub manual_improvement_h: f64,
    /// Manual reference values.
    pub manual: ManualReference,
}

impl TableTwoRow {
    /// Total automated layout generation time in hours.
    pub fn total_time_h(&self) -> f64 {
        self.template_time_s / 3600.0 + self.manual_improvement_h
    }

    /// Relative area change versus the manual layout (negative = smaller).
    pub fn area_delta_pct(&self) -> f64 {
        100.0 * (self.ours_area_um2 - self.manual.area_um2) / self.manual.area_um2
    }

    /// Relative layout-time change versus the manual layout.
    pub fn time_delta_pct(&self) -> f64 {
        100.0 * (self.total_time_h() - self.manual.layout_time_h) / self.manual.layout_time_h
    }
}

/// Renders Table II as plain text.
pub fn format_table_two(rows: &[TableTwoRow]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II — Automated flow versus manual design\n");
    out.push_str(&format!(
        "{:<10}{:>10}{:>14}{:>14}{:>16}{:>16}{:>14}\n",
        "Circuit", "Method", "Area (um2)", "Dead space %", "Template (s)", "Total time (h)", "Δarea %"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10}{:>10}{:>14.1}{:>14.2}{:>16.3}{:>16.2}{:>14.1}\n",
            row.circuit,
            "Ours",
            row.ours_area_um2,
            row.ours_dead_space_pct,
            row.template_time_s,
            row.total_time_h(),
            row.area_delta_pct()
        ));
        out.push_str(&format!(
            "{:<10}{:>10}{:>14.1}{:>14.2}{:>16}{:>16.2}{:>14}\n",
            "",
            "Manual",
            row.manual.area_um2,
            row.manual.dead_space_pct,
            "-",
            row.manual.layout_time_h,
            "-"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(reward: f64) -> MethodSummary {
        MethodSummary {
            runtime_s: Summary::of(&[1.0]),
            dead_space_pct: Summary::of(&[50.0]),
            hpwl_um: Summary::of(&[100.0]),
            reward: Summary::of(&[reward]),
        }
    }

    #[test]
    fn measurements_accumulate_and_summarize() {
        let mut m = MethodMeasurements::new();
        m.push(1.0, 50.0, 100.0, -2.0);
        m.push(2.0, 40.0, 120.0, -1.0);
        assert_eq!(m.len(), 2);
        let s = m.summarize();
        assert!((s.runtime_s.iq_mean - 1.5).abs() < 1e-9);
        assert!((s.reward.iq_mean + 1.5).abs() < 1e-9);
    }

    #[test]
    fn best_method_picks_highest_reward() {
        let row = TableOneRow {
            circuit: "OTA-1".into(),
            num_structures: 5,
            unseen: false,
            methods: vec![
                ("SA".into(), summary(-2.0)),
                ("Ours".into(), summary(-0.5)),
                ("GA".into(), summary(-3.0)),
            ],
        };
        assert_eq!(row.best_method(), Some("Ours"));
    }

    #[test]
    fn table_one_rendering_contains_all_methods() {
        let row = TableOneRow {
            circuit: "OTA-2".into(),
            num_structures: 8,
            unseen: true,
            methods: vec![("SA".into(), summary(-2.0)), ("Ours".into(), summary(-1.0))],
        };
        let text = format_table_one(&[row]);
        assert!(text.contains("OTA-2"));
        assert!(text.contains("[unseen]"));
        assert!(text.contains("SA"));
        assert!(text.contains("Ours"));
        assert!(text.contains("HPWL"));
    }

    #[test]
    fn manual_references_match_paper_values() {
        let refs = paper_manual_references();
        assert_eq!(refs.len(), 3);
        let driver = refs.iter().find(|(n, _)| *n == "Driver").unwrap().1;
        assert_eq!(driver.layout_time_h, 32.0);
        assert_eq!(driver.area_um2, 3674.0);
    }

    #[test]
    fn table_two_deltas() {
        let row = TableTwoRow {
            circuit: "OTA".into(),
            ours_area_um2: 228.6,
            ours_dead_space_pct: 30.01,
            template_time_s: 111.0,
            manual_improvement_h: 0.17,
            manual: paper_manual_references()[0].1,
        };
        assert!(row.area_delta_pct() < 0.0);
        assert!(row.total_time_h() < row.manual.layout_time_h);
        let text = format_table_two(&[row]);
        assert!(text.contains("Ours"));
        assert!(text.contains("Manual"));
    }
}

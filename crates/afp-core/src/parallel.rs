//! Parallel evaluation helpers.
//!
//! Experiments such as the Table I sweep evaluate many independent
//! (circuit, method, seed) combinations; this module fans them out over worker
//! threads, mirroring the paper's use of 16 parallel environments to gather
//! experience (§V-A) at the granularity where our single-process design allows
//! it — across independent runs.

use crossbeam::thread;
use parking_lot::Mutex;

/// Applies `f` to every item, distributing items across `workers` threads, and
/// returns the results in the original item order.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let work: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|_| loop {
                let next = work.lock().pop();
                match next {
                    Some((index, item)) => {
                        let out = f(item);
                        results.lock()[index] = Some(out);
                    }
                    None => break,
                }
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_still_works() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map(vec![5], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }
}

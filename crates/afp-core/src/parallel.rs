//! Parallel evaluation helpers.
//!
//! Experiments such as the Table I sweep evaluate many independent
//! (circuit, method, seed) combinations; this module fans them out over worker
//! threads, mirroring the paper's use of 16 parallel environments to gather
//! experience (§V-A) at the granularity where our single-process design allows
//! it — across independent runs.
//!
//! Work is distributed lock-free: items are split into contiguous chunks and
//! workers claim chunks through a single atomic counter, writing results into
//! per-worker buffers that are merged after the scope joins. No mutex is ever
//! taken per item, so workers running short tasks do not serialize on a lock.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, distributing items across `workers` threads, and
/// returns the results in the original item order.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunked claiming: more chunks than workers keeps the load balanced when
    // item costs vary, while one atomic increment per *chunk* (not per item)
    // keeps contention negligible.
    let chunk = (n / (workers * 4)).max(1);
    let num_chunks = n.div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);

    // Pre-split the items into chunk-sized batches. A worker claims a batch
    // with one atomic increment and takes ownership of it with a single,
    // uncontended `take` — the former per-item global work queue locked the
    // whole item list on every pop.
    let mut batches: Vec<std::sync::Mutex<Option<(usize, Vec<T>)>>> =
        Vec::with_capacity(num_chunks);
    {
        let mut items = items.into_iter();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let batch: Vec<T> = items.by_ref().take(end - start).collect();
            batches.push(std::sync::Mutex::new(Some((start, batch))));
            start = end;
        }
    }

    let mut buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(chunk * 2);
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let (start, batch) = batches[c]
                            .lock()
                            .expect("batch slot poisoned")
                            .take()
                            .expect("batch claimed twice");
                        for (offset, item) in batch.into_iter().enumerate() {
                            local.push((start + offset, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for buffer in &mut buffers {
        for (index, value) in buffer.drain(..) {
            results[index] = Some(value);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_still_works() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map(vec![5], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_chunks_cover_every_item() {
        // 1000 items over 7 workers: chunk boundaries do not divide evenly.
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, 7, |x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn variable_cost_items_balance() {
        // Skewed workloads must still produce ordered, complete results.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(items, 4, |x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}

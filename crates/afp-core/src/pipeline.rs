//! The end-to-end automatic layout pipeline (paper Fig. 1).
//!
//! `schematic / netlist → structure recognition → multi-shape configuration →
//! floorplanning → OARSMT global routing → procedural layout completion`.
//!
//! The floorplanning stage is pluggable so that the same pipeline can be run
//! with the R-GCN + RL agent (the paper's method), the fast greedy
//! constructive placer, or any of the metaheuristic baselines — which is
//! exactly what the Table I / Table II harnesses need.

use std::time::Instant;

use afp_circuit::{recognition, Circuit, Schematic};
use afp_gnn::greedy_floorplan;
use afp_layout::{export, metrics, Floorplan, FloorplanMetrics, RewardWeights};
use afp_metaheuristics::Baseline;
use afp_rl::FloorplanAgent;
use afp_route::{complete_layout, CompletedLayout, LayoutReport, ProceduralConfig};

/// The floorplanning engine used by the pipeline.
#[derive(Debug)]
pub enum FloorplanMethod {
    /// The paper's R-GCN + masked-PPO agent (zero-shot or fine-tuned).
    Agent(Box<FloorplanAgent>),
    /// The fast constraint-aware greedy constructive placer.
    Greedy,
    /// One of the metaheuristic baselines (SA, GA, PSO, RL-SA, sequence-pair
    /// RL), run with the given seed.
    Baseline(Baseline, u64),
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Configuration of the procedural completion (routing resolution, wire
    /// width, track pitch, design rules).
    pub procedural: ProceduralConfig,
    /// Reward weights used to score floorplans.
    pub weights: RewardWeights,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            procedural: ProceduralConfig::default(),
            weights: RewardWeights::default(),
        }
    }
}

/// The result of one pipeline run.
#[derive(Debug)]
pub struct PipelineResult {
    /// The circuit that was laid out.
    pub circuit: Circuit,
    /// The floorplan produced by the selected method.
    pub floorplan: Floorplan,
    /// Floorplan metrics (HPWL, dead space, area, aspect ratio).
    pub floorplan_metrics: FloorplanMetrics,
    /// Episode reward (paper Eq. 5) of the floorplan.
    pub floorplan_reward: f64,
    /// Wall-clock floorplanning time in seconds.
    pub floorplan_time_s: f64,
    /// The completed layout (global routing + procedural completion).
    pub layout: CompletedLayout,
    /// The Table II-style report row.
    pub report: LayoutReport,
}

impl PipelineResult {
    /// Renders the placed-and-routed layout as an SVG document (the artefact
    /// behind the paper's Fig. 7).
    pub fn to_svg(&self) -> String {
        let overlays: Vec<export::Overlay> = self
            .layout
            .routing
            .trees
            .iter()
            .flat_map(|tree| {
                tree.segments.iter().map(|s| export::Overlay {
                    points: vec![s.from, s.to],
                    color: "#d62728".to_string(),
                })
            })
            .collect();
        export::svg_floorplan(&self.circuit, &self.floorplan, &overlays)
    }

    /// Renders the floorplan as ASCII art.
    pub fn to_ascii(&self) -> String {
        export::ascii_floorplan(&self.floorplan)
    }
}

/// The end-to-end layout pipeline.
#[derive(Debug)]
pub struct LayoutPipeline {
    method: FloorplanMethod,
    config: PipelineConfig,
}

impl LayoutPipeline {
    /// Creates a pipeline around the R-GCN + RL agent.
    pub fn with_agent(agent: FloorplanAgent) -> Self {
        LayoutPipeline {
            method: FloorplanMethod::Agent(Box::new(agent)),
            config: PipelineConfig::default(),
        }
    }

    /// Creates a pipeline around the greedy constructive placer.
    pub fn with_greedy() -> Self {
        LayoutPipeline {
            method: FloorplanMethod::Greedy,
            config: PipelineConfig::default(),
        }
    }

    /// Creates a pipeline around one of the baselines.
    pub fn with_baseline(baseline: Baseline, seed: u64) -> Self {
        LayoutPipeline {
            method: FloorplanMethod::Baseline(baseline, seed),
            config: PipelineConfig::default(),
        }
    }

    /// Overrides the pipeline configuration (builder-style).
    pub fn with_config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Structure recognition: groups the devices of a schematic into typed
    /// functional blocks (pipeline step 2 of Fig. 1).
    pub fn recognize(schematic: &Schematic) -> Circuit {
        recognition::recognize(schematic)
    }

    /// Runs only the floorplanning stage, returning the floorplan, its reward
    /// and the elapsed time.
    pub fn floorplan(&mut self, circuit: &Circuit) -> (Floorplan, f64, f64) {
        let started = Instant::now();
        let floorplan = match &mut self.method {
            FloorplanMethod::Agent(agent) => agent.solve(circuit).floorplan,
            FloorplanMethod::Greedy => greedy_floorplan(circuit),
            FloorplanMethod::Baseline(baseline, seed) => baseline.run(circuit, *seed).floorplan,
        };
        let elapsed = started.elapsed().as_secs_f64();
        let reward = metrics::episode_reward(
            circuit,
            &floorplan,
            metrics::hpwl_lower_bound(circuit),
            &self.config.weights,
        );
        (floorplan, elapsed, reward)
    }

    /// Runs the full pipeline on a block-level circuit.
    pub fn run(&mut self, circuit: &Circuit) -> PipelineResult {
        let (floorplan, floorplan_time_s, floorplan_reward) = self.floorplan(circuit);
        let layout = complete_layout(circuit, &floorplan, &self.config.procedural);
        let report = LayoutReport::from_layout(circuit, &layout, floorplan_time_s);
        PipelineResult {
            floorplan_metrics: metrics::metrics(circuit, &floorplan),
            circuit: circuit.clone(),
            floorplan,
            floorplan_reward,
            floorplan_time_s,
            layout,
            report,
        }
    }

    /// Runs the full pipeline starting from a device-level schematic
    /// (structure recognition included).
    pub fn run_from_schematic(&mut self, schematic: &Schematic) -> PipelineResult {
        let circuit = Self::recognize(schematic);
        self.run(&circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::SaConfig;
    use afp_rl::AgentConfig;

    #[test]
    fn greedy_pipeline_completes_a_layout() {
        let mut pipeline = LayoutPipeline::with_greedy();
        let result = pipeline.run(&generators::ota3());
        assert_eq!(result.floorplan.num_placed(), 3);
        assert!(result.layout.area_um2 > 0.0);
        assert!(result.report.template_time_s >= result.floorplan_time_s);
        assert!(result.to_svg().contains("<svg"));
        assert!(!result.to_ascii().is_empty());
    }

    #[test]
    fn agent_pipeline_completes_a_layout() {
        let agent = FloorplanAgent::new(AgentConfig::small());
        let mut pipeline = LayoutPipeline::with_agent(agent);
        let result = pipeline.run(&generators::ota3());
        assert_eq!(result.floorplan.num_placed(), 3);
        assert!(result.floorplan_reward.is_finite());
    }

    #[test]
    fn baseline_pipeline_completes_a_layout() {
        let mut pipeline =
            LayoutPipeline::with_baseline(Baseline::Sa(SaConfig::small()), 3);
        let result = pipeline.run(&generators::ota3());
        assert_eq!(result.floorplan.num_placed(), 3);
        assert!(result.layout.wirelength_um > 0.0);
    }

    #[test]
    fn pipeline_runs_from_a_schematic() {
        let mut pipeline = LayoutPipeline::with_greedy();
        let schematic = generators::ota8_schematic();
        let result = pipeline.run_from_schematic(&schematic);
        assert!(result.circuit.num_blocks() > 1);
        assert_eq!(result.floorplan.num_placed(), result.circuit.num_blocks());
    }
}

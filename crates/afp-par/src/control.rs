//! Cooperative run control: deadlines, budgets and cancellation for
//! long-running optimizer loops and pool batches.
//!
//! The types here are the workspace-wide vocabulary for *stopping things*:
//!
//! * [`CancelToken`] — a clonable `AtomicBool` flag. Cloning shares the flag,
//!   so one `cancel()` is observed by every holder: sibling chains of a race,
//!   the pool's chunk-claim loop, and the optimizer loops themselves.
//! * [`RunControl`] — the handle an optimizer run polls: an optional
//!   wall-clock deadline, an optional evaluation budget, the cancel token,
//!   and the polling stride.
//! * [`StopReason`] — the typed outcome recorded in every result: why the
//!   run returned when it did.
//!
//! # Determinism
//!
//! `RunControl` is designed so that an *uninterrupted* run is bit-identical
//! to a run that never held a control at all. [`RunControl::poll`] draws
//! nothing from any RNG and mutates nothing observable; the budget is
//! compared exactly on every call (a pure integer comparison, so a budget
//! stop always happens at the same evaluation count on every machine), while
//! the clock read and the cancel-flag load — whose *outcomes* are inherently
//! racy — are gated to a deterministic stride (every
//! [`stride`](RunControl::stride) ticks). An interrupted run therefore stops
//! at a stride boundary, and an uninterrupted one replays the historical
//! trajectory bit-for-bit because the control never influenced it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default polling stride of [`RunControl`]: interrupt checks (clock,
/// cancel flag) run every this-many ticks. Chosen so a ~1.5 µs SA move loop
/// pays well under 1 % overhead while still reacting within ~100 µs.
pub const DEFAULT_STRIDE: u64 = 64;

/// A clonable cooperative cancellation flag backed by an `AtomicBool`.
///
/// Clones share the flag: `cancel()` on any clone is observed by all of
/// them. Cancellation is cooperative and one-way — there is no "un-cancel".
///
/// # Examples
///
/// ```
/// use afp_par::CancelToken;
///
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; observed by every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised (by any clone).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The shared flag, for advisory relaxed loads inside the pool's
    /// chunk-claim loop.
    pub(crate) fn flag(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Why an optimizer run (or a race over runs) returned when it did.
///
/// `Completed` is the only "uninterrupted" reason; every other variant means
/// the result carries the best candidate found *so far*, not the best the
/// full budget would have produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The run exhausted its configured move/generation budget normally.
    Completed,
    /// The wall-clock deadline passed (observed at a stride boundary).
    Deadline,
    /// The [`CancelToken`] was raised (observed at a stride boundary).
    Cancelled,
    /// The evaluation budget was exhausted (exact: always at the same
    /// evaluation count for a given budget).
    Budget,
    /// A racer reported a domain-level success — in this workspace, a
    /// feasible floorplan under a `stop_on_first_feasible` race — and the
    /// run stopped early to hand it over.
    FirstFeasible,
}

impl StopReason {
    /// Whether the run was cut short (anything but [`StopReason::Completed`]).
    pub fn is_interrupted(&self) -> bool {
        !matches!(self, StopReason::Completed)
    }
}

/// A cooperative control handle threaded through optimizer runs: wall-clock
/// deadline, evaluation budget, cancellation, and the first-feasible race
/// flag.
///
/// Constructed with [`RunControl::unbounded`] and narrowed with the `with_*`
/// builders. Cloning shares the [`CancelToken`] (and copies the limits), so
/// a race hands each member a clone and one member's `cancel()` stops the
/// rest.
///
/// # Determinism
///
/// See the [module docs](self): the budget is checked exactly on every
/// [`poll`](RunControl::poll), interrupt sources (clock, cancel flag) only at
/// stride boundaries, and nothing here ever touches an RNG — an
/// uninterrupted run is bit-identical to an uncontrolled one.
///
/// # Examples
///
/// ```
/// use afp_par::{RunControl, StopReason};
/// use std::time::Duration;
///
/// let control = RunControl::unbounded()
///     .with_deadline(Duration::from_secs(30))
///     .with_budget(10_000);
/// // An optimizer loop polls once per move with its tick and eval counters:
/// assert_eq!(control.poll(1, 1), None);
/// assert_eq!(control.poll(2, 10_000), Some(StopReason::Budget));
/// ```
#[derive(Debug, Clone)]
pub struct RunControl {
    deadline: Option<Instant>,
    budget: Option<u64>,
    cancel: CancelToken,
    stride: u64,
    stop_on_first_feasible: bool,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl::unbounded()
    }
}

impl RunControl {
    /// A control with no deadline, no budget, a fresh token and the default
    /// stride: a run holding it behaves exactly like an uncontrolled run.
    pub fn unbounded() -> Self {
        RunControl {
            deadline: None,
            budget: None,
            cancel: CancelToken::new(),
            stride: DEFAULT_STRIDE,
            stop_on_first_feasible: false,
        }
    }

    /// Sets a wall-clock deadline `after` from now.
    pub fn with_deadline(self, after: Duration) -> Self {
        self.with_deadline_at(Instant::now() + after)
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets an evaluation budget: the run stops (with
    /// [`StopReason::Budget`]) once its evaluation counter reaches `evals`.
    /// Exact and machine-independent — a budgeted run always stops at the
    /// same count.
    pub fn with_budget(mut self, evals: u64) -> Self {
        self.budget = Some(evals);
        self
    }

    /// Replaces the cancel token, sharing cancellation with other holders of
    /// `token`.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Sets the interrupt-polling stride (clamped to at least 1): clock and
    /// cancel-flag checks run every `stride` ticks. Smaller reacts faster,
    /// larger costs less per move; the budget check is unaffected (always
    /// exact).
    pub fn with_stride(mut self, stride: u64) -> Self {
        self.stride = stride.max(1);
        self
    }

    /// Turns the first-feasible race mode on or off (off by default). The
    /// flag is advisory: runners that support racing check their incumbent
    /// best for feasibility at stride/generation boundaries, stop with
    /// [`StopReason::FirstFeasible`], and raise the shared token so sibling
    /// racers stop too. With the flag off, nothing changes — the documented
    /// bit-identity of uncontrolled runs holds.
    pub fn with_stop_on_first_feasible(mut self, on: bool) -> Self {
        self.stop_on_first_feasible = on;
        self
    }

    /// The shared cancel token.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Raises the shared cancel token (convenience for
    /// `cancel_token().cancel()`).
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The interrupt-polling stride in ticks.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The evaluation budget, if one is set.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Whether the first-feasible race mode is on.
    pub fn stop_on_first_feasible(&self) -> bool {
        self.stop_on_first_feasible
    }

    /// The per-move poll: `tick` is the runner's loop counter (moves for SA,
    /// generations for GA, iterations for PSO, episodes for SP-RL) and
    /// `evals` its evaluation counter.
    ///
    /// The budget is compared exactly on every call; the clock and the
    /// cancel flag are read only when `tick` is a multiple of the
    /// [`stride`](RunControl::stride). Returns `None` to continue, or the
    /// [`StopReason`] to stop with. Never touches an RNG.
    pub fn poll(&self, tick: u64, evals: u64) -> Option<StopReason> {
        if let Some(budget) = self.budget {
            if evals >= budget {
                return Some(StopReason::Budget);
            }
        }
        if tick % self.stride == 0 {
            return self.check_interrupts();
        }
        None
    }

    /// [`poll`](RunControl::poll) without stride gating: budget, cancel flag
    /// and deadline are all checked immediately. The natural poll for
    /// coarse-grained loops (one call per GA generation / PSO iteration /
    /// RL episode, each already thousands of evaluations wide).
    pub fn poll_now(&self, evals: u64) -> Option<StopReason> {
        if let Some(budget) = self.budget {
            if evals >= budget {
                return Some(StopReason::Budget);
            }
        }
        self.check_interrupts()
    }

    /// Checks only the interrupt sources (cancel flag first, then deadline),
    /// ignoring budget and stride.
    pub fn check_interrupts(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_control_never_stops() {
        let control = RunControl::unbounded();
        for tick in 0..10_000u64 {
            assert_eq!(control.poll(tick, tick), None);
        }
        assert_eq!(control.poll_now(u64::MAX), None);
    }

    #[test]
    fn budget_is_exact_and_ignores_the_stride() {
        let control = RunControl::unbounded().with_budget(100).with_stride(64);
        assert_eq!(control.poll(99, 99), None);
        // Tick 100 is not a stride boundary; the budget still fires.
        assert_eq!(control.poll(100, 100), Some(StopReason::Budget));
        assert_eq!(control.poll(101, 250), Some(StopReason::Budget));
    }

    #[test]
    fn cancellation_is_shared_across_clones_and_stride_gated() {
        let control = RunControl::unbounded().with_stride(8);
        let clone = control.clone();
        clone.cancel();
        assert!(control.cancel_token().is_cancelled());
        // Off-stride ticks do not look at the flag...
        assert_eq!(control.poll(3, 3), None);
        // ...stride boundaries do.
        assert_eq!(control.poll(8, 8), Some(StopReason::Cancelled));
        assert_eq!(control.poll_now(0), Some(StopReason::Cancelled));
    }

    #[test]
    fn expired_deadline_fires_at_a_stride_boundary() {
        let control = RunControl::unbounded()
            .with_deadline(Duration::from_secs(0))
            .with_stride(4);
        assert_eq!(control.poll(1, 1), None);
        assert_eq!(control.poll(4, 4), Some(StopReason::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let control = RunControl::unbounded().with_deadline(Duration::from_secs(3600));
        for tick in 0..1000u64 {
            assert_eq!(control.poll(tick, tick), None);
        }
    }

    #[test]
    fn cancel_wins_over_deadline() {
        let control = RunControl::unbounded().with_deadline(Duration::from_secs(0));
        control.cancel();
        assert_eq!(control.check_interrupts(), Some(StopReason::Cancelled));
    }

    #[test]
    fn stride_is_clamped_to_one() {
        let control = RunControl::unbounded().with_stride(0);
        assert_eq!(control.stride(), 1);
    }

    #[test]
    fn stop_reasons_classify_interruption() {
        assert!(!StopReason::Completed.is_interrupted());
        for reason in [
            StopReason::Deadline,
            StopReason::Cancelled,
            StopReason::Budget,
            StopReason::FirstFeasible,
        ] {
            assert!(reason.is_interrupted());
        }
    }
}

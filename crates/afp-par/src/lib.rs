//! # afp-par — lock-free parallel mapping primitives
//!
//! The workspace's only threading substrate, kept at the bottom of the crate
//! graph (no dependencies) so that both ends of the stack can use it:
//! `afp-core` fans independent experiment runs out with [`parallel_map`],
//! mirroring the paper's use of 16 parallel environments to gather experience
//! (§V-A), and `afp-metaheuristics` batches a generation's candidate
//! evaluations through [`parallel_map_scoped`], whose per-worker state slots
//! carry each worker's `CostCache` from one generation to the next.
//! `afp_core::parallel` re-exports this module, so existing callers are
//! unaffected by the move.
//!
//! Work is distributed lock-free in both entry points: items are split into
//! contiguous chunks and workers claim chunks through a single atomic
//! counter, writing results into index-keyed slots that come back in input
//! order — so the reduction is deterministic regardless of which worker
//! finished first. No mutex is ever taken per item, so workers running short
//! tasks do not serialize on a lock.
//!
//! Since PR 6 the scoped path is backed by a persistent parked [`WorkerPool`]:
//! threads are spawned once and parked between batches, so a long-lived
//! caller (an optimizer evaluating thousands of generations) pays the spawn
//! cost once instead of per batch. [`PoolHandle`] (PR 8) shares one such pool
//! between several runners — the serve-layer job engine and any nested
//! multistart it launches borrow the same workers instead of stacking pools,
//! with a deadlock-free inline fallback for re-entrant dispatches. [`parallel_map_scoped`] remains as a
//! compatibility shim that builds a transient pool per call — same results,
//! spawn-per-call cost — and [`parallel_map`] (by-value, no worker state)
//! keeps its original scoped-spawn implementation.
//!
//! The [`control`] module is the workspace's run-control vocabulary:
//! [`CancelToken`] (a clonable atomic flag the pool observes at chunk-claim
//! boundaries via [`WorkerPool::map_scoped_cancellable`]), [`RunControl`]
//! (deadline / budget / cancellation handle the optimizer loops poll at a
//! deterministic stride) and [`StopReason`] (the typed outcome recorded in
//! results). The `fault-inject` feature adds the `fault` module — a
//! deterministic splitmix64-seeded fault plan the robustness proptests use
//! to make the Nth job panic or stall.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod control;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod handle;
mod pool;

pub use control::{CancelToken, RunControl, StopReason};
pub use handle::PoolHandle;
pub use pool::{PoolStats, WorkerPool};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, distributing items across `workers` threads, and
/// returns the results in the original item order.
///
/// Items are consumed; each is handed to exactly one worker by value. When the
/// closure needs reusable per-worker state (scratch buffers, caches), use
/// [`parallel_map_scoped`] instead — this entry point gives workers no state
/// hook, so any cache built inside `f` is rebuilt per item.
///
/// # Panics
///
/// Propagates panics from worker closures.
pub fn parallel_map<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Chunked claiming: more chunks than workers keeps the load balanced when
    // item costs vary, while one atomic increment per *chunk* (not per item)
    // keeps contention negligible.
    let chunk = (n / (workers * 4)).max(1);
    let num_chunks = n.div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);

    // Pre-split the items into chunk-sized batches. A worker claims a batch
    // with one atomic increment and takes ownership of it with a single,
    // uncontended `take` — the former per-item global work queue locked the
    // whole item list on every pop.
    let mut batches: Vec<std::sync::Mutex<Option<(usize, Vec<T>)>>> =
        Vec::with_capacity(num_chunks);
    {
        let mut items = items.into_iter();
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let batch: Vec<T> = items.by_ref().take(end - start).collect();
            batches.push(std::sync::Mutex::new(Some((start, batch))));
            start = end;
        }
    }

    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(chunk * 2);
                    loop {
                        let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let (start, batch) = batches[c]
                            .lock()
                            .expect("batch slot poisoned")
                            .take()
                            .expect("batch claimed twice");
                        for (offset, item) in batch.into_iter().enumerate() {
                            local.push((start + offset, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    merge_in_order(n, buffers)
}

/// [`parallel_map`] with borrowed items and persistent per-worker state: the
/// scoped variant the population optimizers' evaluation pool is built on.
///
/// `states` provides one state slot per worker; `states.len()` *is* the
/// worker count (clamped to the item count, so trailing slots of a short
/// batch are simply left untouched). Each spawned worker receives exclusive
/// `&mut` access to its slot for the duration of the call, and because the
/// slots are borrowed — not created inside the call — whatever a worker
/// accumulates in its state (a warm `CostCache`, scratch buffers) survives
/// into the next call. That is the point of this entry point: an optimizer
/// evaluates one generation per call, and per-worker caches must not be
/// rebuilt per generation.
///
/// Results are returned in input order regardless of which worker evaluated
/// which item, so the reduction a caller performs over the returned vector is
/// deterministic for any worker count.
///
/// With a single state slot (or a single item) no thread is spawned and the
/// call degenerates to the plain serial loop `items.iter().map(|item|
/// f(&mut states[0], item))` — byte-for-byte the code path a serial optimizer
/// runs, which is what makes "bit-identical at one worker" a trivial
/// guarantee rather than a testing burden.
///
/// This free function is the *spawn-per-call* form: each call builds a
/// transient [`WorkerPool`], which spawns and joins its threads within the
/// call. Callers that dispatch many batches should hold a [`WorkerPool`] and
/// use [`WorkerPool::map_scoped`] — identical results (same chunking, same
/// candidate-order merge), but the threads are spawned once and parked
/// between batches. The `pool_overhead` section of `BENCH_pack.json` records
/// the measured gap.
///
/// # Panics
///
/// Panics if `states` is empty; propagates panics from worker closures.
///
/// # Examples
///
/// ```
/// // Per-worker state persists across calls: here each worker counts the
/// // items it has processed over two batches.
/// let items: Vec<u64> = (0..100).collect();
/// let mut counters = vec![0usize; 4];
/// let a = afp_par::parallel_map_scoped(&items, &mut counters, |seen, &x| {
///     *seen += 1;
///     x * 2
/// });
/// let b = afp_par::parallel_map_scoped(&items, &mut counters, |seen, &x| {
///     *seen += 1;
///     x * 2
/// });
/// assert_eq!(a, b);
/// assert_eq!(counters.iter().sum::<usize>(), 200, "state survived both calls");
/// ```
pub fn parallel_map_scoped<T, R, S, F>(items: &[T], states: &mut [S], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    assert!(
        !states.is_empty(),
        "parallel_map_scoped needs at least one worker state"
    );
    // A transient pool sized to the effective worker count: `states.len()`
    // is the worker count (clamped to the item count), exactly as before the
    // persistent pool existed. Sizing the pool to the clamp means a 1-item
    // or 1-state call constructs a 1-worker pool, which spawns no thread and
    // runs the serial loop inline.
    let workers = states.len().min(items.len()).max(1);
    WorkerPool::new(workers).map_scoped(items, states, f)
}

/// Merges per-worker `(index, value)` buffers into one vector in input order.
fn merge_in_order<R>(n: usize, buffers: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for buffer in buffers {
        for (index, value) in buffer {
            results[index] = Some(value);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..20).collect();
        let out = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_still_works() {
        let out = parallel_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = parallel_map(vec![5], 16, |x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    fn uneven_chunks_cover_every_item() {
        // 1000 items over 7 workers: chunk boundaries do not divide evenly.
        let items: Vec<usize> = (0..1000).collect();
        let out = parallel_map(items, 7, |x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn variable_cost_items_balance() {
        // Skewed workloads must still produce ordered, complete results.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(items, 4, |x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let mut states = vec![(); 4];
        let out = parallel_map_scoped(&items, &mut states, |_, &x| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_single_state_is_the_serial_loop() {
        // One state slot: no threads, items visited strictly in order.
        let items: Vec<usize> = (0..50).collect();
        let mut states = vec![Vec::<usize>::new()];
        let out = parallel_map_scoped(&items, &mut states, |seen, &x| {
            seen.push(x);
            x
        });
        assert_eq!(out, items);
        assert_eq!(states[0], items, "serial path must visit items in order");
    }

    #[test]
    fn scoped_state_persists_across_calls() {
        let items: Vec<u32> = (0..32).collect();
        let mut counters = vec![0u32; 3];
        for _ in 0..5 {
            let _ = parallel_map_scoped(&items, &mut counters, |count, &x| {
                *count += 1;
                x
            });
        }
        assert_eq!(counters.iter().sum::<u32>(), 5 * 32);
    }

    #[test]
    fn scoped_clamps_workers_to_item_count() {
        // 2 items, 8 state slots: only the first 2 slots may be touched.
        let items = vec![10u64, 20];
        let mut touched = vec![false; 8];
        let out = parallel_map_scoped(&items, &mut touched, |t, &x| {
            *t = true;
            x
        });
        assert_eq!(out, items);
        assert!(touched[2..].iter().all(|&t| !t), "trailing slots untouched");
    }

    #[test]
    fn scoped_empty_input_returns_empty() {
        let mut states = vec![0u8; 2];
        let out: Vec<u8> = parallel_map_scoped(&[], &mut states, |_, &x: &u8| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker state")]
    fn scoped_rejects_empty_states() {
        let items = [1u8];
        let mut states: Vec<u8> = Vec::new();
        let _ = parallel_map_scoped(&items, &mut states, |_, &x| x);
    }

    #[test]
    fn scoped_matches_serial_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
        for workers in 1..=8 {
            let mut states = vec![(); workers];
            let out = parallel_map_scoped(&items, &mut states, |_, &x| x.wrapping_mul(0x9E37));
            assert_eq!(out, serial, "diverged at {workers} workers");
        }
    }
}

//! Deterministic fault injection for pool and race tests (behind the
//! `fault-inject` feature).
//!
//! A [`FaultPlan`] is a pure function from a job index to a
//! [`FaultAction`], derived with a splitmix64 finalizer from a seed and two
//! percentage knobs — no global state, no RNG object, no ordering
//! sensitivity. Test closures consult the plan for the job they are about to
//! run and [`inject`](FaultPlan::inject) the action: a panic with a
//! recognizable message, a short bounded stall, or nothing. Because the plan
//! is pure, the *same* jobs fault at every worker count, which is what lets
//! the fault proptests assert that a multistart winner over surviving chains
//! is bit-identical at workers ∈ {1, 2, 4}.
//!
//! Nothing in this module is wired into production code paths: the feature
//! only adds the plan type and the injected test entry points that take one.

use std::time::Duration;

/// What a [`FaultPlan`] prescribes for one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Run the job normally.
    None,
    /// Panic with a recognizable `"injected fault"` message.
    Panic,
    /// Sleep for the bounded duration before running the job (models a slow
    /// or wedged worker without breaking determinism of results).
    Stall(Duration),
}

/// A deterministic map from job index to [`FaultAction`].
///
/// # Examples
///
/// ```
/// use afp_par::fault::{FaultAction, FaultPlan};
///
/// let plan = FaultPlan::new(42, 25, 10); // 25 % panic, 10 % stall
/// // Pure: the same job always gets the same action.
/// assert_eq!(plan.action(7), plan.action(7));
/// let panics = (0..100).filter(|&j| plan.action(j) == FaultAction::Panic).count();
/// assert!(panics > 0, "a 25 % rate over 100 jobs injects at least one panic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    panic_percent: u8,
    stall_percent: u8,
}

/// The splitmix64 finalizer: the same mixer `chain_seed` uses upstream, so
/// fault rolls are well-distributed for consecutive job indices.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Builds a plan: `panic_percent` of jobs panic, `stall_percent` stall,
    /// the rest run clean. Percentages are clamped so their sum stays ≤ 100.
    pub fn new(seed: u64, panic_percent: u8, stall_percent: u8) -> Self {
        let panic_percent = panic_percent.min(100);
        let stall_percent = stall_percent.min(100 - panic_percent);
        FaultPlan {
            seed,
            panic_percent,
            stall_percent,
        }
    }

    /// The action prescribed for job `job`. Pure and deterministic.
    pub fn action(&self, job: u64) -> FaultAction {
        let h = splitmix64(self.seed ^ job.wrapping_mul(0xD134_2543_DE82_EF95));
        let roll = (h % 100) as u8;
        if roll < self.panic_percent {
            FaultAction::Panic
        } else if roll < self.panic_percent + self.stall_percent {
            // 100–600 µs: long enough to hold a worker mid-chunk while
            // siblings finish, short enough for 200-case proptests.
            FaultAction::Stall(Duration::from_micros(100 + (h >> 8) % 500))
        } else {
            FaultAction::None
        }
    }

    /// Whether job `job` is planned to panic.
    pub fn panics(&self, job: u64) -> bool {
        self.action(job) == FaultAction::Panic
    }

    /// Executes the plan for job `job`: panics with an `"injected fault"`
    /// message, sleeps out the stall, or returns immediately.
    pub fn inject(&self, job: u64) {
        match self.action(job) {
            FaultAction::None => {}
            FaultAction::Panic => {
                panic!("injected fault: job {job} (plan seed {})", self.seed)
            }
            FaultAction::Stall(pause) => std::thread::sleep(pause),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_job() {
        let a = FaultPlan::new(7, 30, 20);
        let b = FaultPlan::new(7, 30, 20);
        for job in 0..256 {
            assert_eq!(a.action(job), b.action(job));
        }
        let other = FaultPlan::new(8, 30, 20);
        assert!(
            (0..256).any(|j| a.action(j) != other.action(j)),
            "different seeds should produce different plans"
        );
    }

    #[test]
    fn rates_clamp_to_a_hundred_percent() {
        let plan = FaultPlan::new(0, 80, 80);
        // 80 % panic leaves at most 20 % stall; every roll lands somewhere.
        for job in 0..100 {
            let _ = plan.action(job);
        }
        let all_panic = FaultPlan::new(0, 200, 50);
        assert!((0..50).all(|j| all_panic.panics(j)));
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::new(123, 0, 0);
        for job in 0..512 {
            assert_eq!(plan.action(job), FaultAction::None);
            plan.inject(job); // must not panic or sleep
        }
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn inject_panics_with_a_recognizable_message() {
        let plan = FaultPlan::new(1, 100, 0);
        plan.inject(0);
    }
}

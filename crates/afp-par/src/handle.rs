//! Shared ownership of a [`WorkerPool`]: a clonable handle through which
//! several runners borrow one process-wide pool instead of each owning
//! (and spawning) their own.
//!
//! ## Why a handle
//!
//! PR 6/7 gave every long-lived optimizer a persistent [`WorkerPool`], but
//! each caller still *owned* its pool: a job engine running a multistart SA
//! under its own pool would stack two thread complements (the engine's and
//! the runner's) and oversubscribe the machine. [`PoolHandle`] makes the pool
//! a process-wide resource: the engine and every nested runner clone the same
//! handle, and whoever dispatches first holds the workers while the dispatch
//! lasts.
//!
//! ## Re-entrancy
//!
//! A nested runner may be *called from inside* a batch running on the very
//! pool it wants to borrow (a job closure that itself fans out chains). A
//! blocking lock would deadlock: the outer dispatch holds the pool until the
//! batch drains, and the batch cannot drain until the inner call returns.
//! The handle therefore takes the pool with [`Mutex::try_lock`] and, when the
//! pool is busy, falls back to the inline serial loop over `states[0]` — the
//! exact code path a 1-worker pool runs. By the workspace's bit-identity
//! contract (results are independent of worker count), the fallback changes
//! *when* work runs, never *what* comes back.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::control::CancelToken;
use crate::pool::{PoolStats, WorkerPool};

/// A clonable, shareable handle to one [`WorkerPool`].
///
/// All clones refer to the same pool; dispatches serialize on an internal
/// mutex. When the pool is already dispatching (including the re-entrant
/// case where the caller *is* one of the pool's workers), the batch runs
/// inline on the calling thread as a serial loop over `states[0]` instead of
/// blocking — deadlock-free by construction, and bit-identical by the
/// worker-count-independence contract the scoped mappers guarantee.
///
/// # Examples
///
/// ```
/// use afp_par::PoolHandle;
///
/// let handle = PoolHandle::new(4);
/// let runner = handle.clone(); // same pool, no new threads
/// let items: Vec<u64> = (0..100).collect();
/// let mut states = vec![(); 4];
/// let out = runner.map_scoped(&items, &mut states, |_, &x| x * 2);
/// assert_eq!(out[99], 198);
/// assert_eq!(handle.workers(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct PoolHandle {
    inner: Arc<Mutex<WorkerPool>>,
    /// Cached so `workers()` never has to take (or wait on) the pool lock.
    workers: usize,
}

impl PoolHandle {
    /// Creates a handle owning a fresh pool of `workers` total workers
    /// (`0` = one per hardware thread; see [`WorkerPool::new`]).
    pub fn new(workers: usize) -> Self {
        Self::from_pool(WorkerPool::new(workers))
    }

    /// Wraps an existing pool in a shared handle.
    pub fn from_pool(pool: WorkerPool) -> Self {
        let workers = pool.workers();
        PoolHandle {
            inner: Arc::new(Mutex::new(pool)),
            workers,
        }
    }

    /// Total worker count of the underlying pool (including the dispatching
    /// thread), cached at construction — never blocks.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Dispatch counters of the underlying pool.
    ///
    /// Taken under the pool lock; if the pool is mid-dispatch this waits for
    /// the current batch to drain (stats are an observability surface, not a
    /// hot path). Inline-fallback batches are not visible here — they never
    /// touch the pool.
    pub fn stats(&self) -> PoolStats {
        self.lock().stats()
    }

    /// Non-blocking variant of [`stats`](PoolHandle::stats): `None` when the
    /// pool is mid-dispatch instead of waiting for the batch to drain.
    ///
    /// Meant for monitoring surfaces that sample a live pool (the serve
    /// daemon's drain loop keeps the pool busy for seconds at a time) where
    /// a stale reading is fine but a blocked reader is not.
    pub fn try_stats(&self) -> Option<PoolStats> {
        self.try_lock().map(|pool| pool.stats())
    }

    /// [`WorkerPool::map_scoped`] through the shared handle.
    ///
    /// Takes the pool with `try_lock`; when the pool is busy (another clone
    /// is dispatching, or this call is re-entrant from inside a batch) the
    /// items run inline as the serial loop over `states[0]`. Results are in
    /// input order and bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty; propagates panics from worker closures.
    pub fn map_scoped<T, R, S, F>(&self, items: &[T], states: &mut [S], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        S: Send,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        assert!(
            !states.is_empty(),
            "map_scoped needs at least one worker state"
        );
        match self.try_lock() {
            Some(mut pool) => pool.map_scoped(items, states, f),
            None => {
                let state = &mut states[0];
                items.iter().map(|item| f(state, item)).collect()
            }
        }
    }

    /// [`WorkerPool::map_scoped_cancellable`] through the shared handle: the
    /// same busy-fallback as [`map_scoped`](PoolHandle::map_scoped), with the
    /// token observed per item on the inline path (the serial analogue of a
    /// chunk-claim boundary).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty; propagates panics from worker closures.
    pub fn map_scoped_cancellable<T, R, S, F>(
        &self,
        items: &[T],
        states: &mut [S],
        cancel: &CancelToken,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        S: Send,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        assert!(
            !states.is_empty(),
            "map_scoped_cancellable needs at least one worker state"
        );
        match self.try_lock() {
            Some(mut pool) => pool.map_scoped_cancellable(items, states, cancel, f),
            None => {
                let state = &mut states[0];
                let flag = cancel.flag();
                items
                    .iter()
                    .map(|item| {
                        if flag.load(Ordering::Relaxed) {
                            None
                        } else {
                            Some(f(state, item))
                        }
                    })
                    .collect()
            }
        }
    }

    /// Blocking lock used by non-dispatch accessors. Poisoning is recovered:
    /// the pool is designed to survive worker panics (batches drain before
    /// re-raising), so a poisoned mutex still guards a usable pool.
    fn lock(&self) -> std::sync::MutexGuard<'_, WorkerPool> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, WorkerPool>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_matches_owned_pool_results() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
        for workers in [1usize, 2, 4] {
            let handle = PoolHandle::new(workers);
            let mut states = vec![(); workers];
            let out = handle.map_scoped(&items, &mut states, |_, &x| x.wrapping_mul(0x9E37));
            assert_eq!(out, serial, "diverged at {workers} workers");
        }
    }

    #[test]
    fn clones_share_one_pool() {
        let handle = PoolHandle::new(3);
        let clone = handle.clone();
        let items: Vec<u64> = (0..64).collect();
        let mut states = vec![(); 3];
        let _ = handle.map_scoped(&items, &mut states, |_, &x| x);
        let _ = clone.map_scoped(&items, &mut states, |_, &x| x);
        // Both dispatches landed on the same pool's counters.
        assert_eq!(handle.stats().batches, 2);
        assert_eq!(clone.stats().batches, 2);
    }

    #[test]
    fn reentrant_dispatch_falls_back_inline_without_deadlock() {
        // An outer batch whose closure dispatches on the same handle: the
        // inner call must take the inline path (the pool lock is held by the
        // outer dispatch) and still return correct, ordered results.
        let handle = PoolHandle::new(2);
        let inner_items: Vec<u64> = (0..10).collect();
        let outer_items: Vec<u64> = (0..8).collect();
        let mut states = vec![(); 2];
        let nested = handle.clone();
        let out = handle.map_scoped(&outer_items, &mut states, |_, &x| {
            let mut inner_states = vec![(); 2];
            let inner: Vec<u64> =
                nested.map_scoped(&inner_items, &mut inner_states, |_, &y| y + x);
            inner.iter().sum::<u64>()
        });
        let expected: Vec<u64> = outer_items
            .iter()
            .map(|&x| inner_items.iter().map(|&y| y + x).sum())
            .collect();
        assert_eq!(out, expected);
        // Only the outer dispatches reached the pool.
        assert_eq!(handle.stats().batches, 1);
    }

    #[test]
    fn try_stats_is_none_only_while_the_pool_is_held() {
        let handle = PoolHandle::new(2);
        let items: Vec<u64> = (0..8).collect();
        let mut states = vec![(); 2];
        let _ = handle.map_scoped(&items, &mut states, |_, &x| x);
        // Idle pool: the sample succeeds and sees the dispatch above.
        assert_eq!(handle.try_stats().expect("pool idle").batches, 1);
        // Pool held by a running batch: the sample declines instead of
        // blocking until the batch drains.
        let sampler = handle.clone();
        let out = handle.map_scoped(&[0u8], &mut states, |_, _| sampler.try_stats().is_none());
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn cancellable_through_handle_observes_the_token() {
        let handle = PoolHandle::new(2);
        let token = CancelToken::new();
        token.cancel();
        let items: Vec<u64> = (0..50).collect();
        let mut states = vec![0u64; 2];
        let out = handle.map_scoped_cancellable(&items, &mut states, &token, |s, &x| {
            *s += 1;
            x
        });
        assert!(out.iter().all(Option::is_none));
        assert_eq!(states.iter().sum::<u64>(), 0);
    }

    #[test]
    fn inline_fallback_observes_the_token_per_item() {
        // Force the fallback by holding the pool from an outer dispatch, then
        // cancel partway through the inner loop.
        let handle = PoolHandle::new(2);
        let mut states = vec![(); 2];
        let nested = handle.clone();
        let out = handle.map_scoped(&[0u8], &mut states, |_, _| {
            let token = CancelToken::new();
            let items: Vec<u64> = (0..100).collect();
            let mut inner_states = vec![(); 1];
            let inner = nested.map_scoped_cancellable(&items, &mut inner_states, &token, |_, &x| {
                if x == 5 {
                    token.cancel();
                }
                x
            });
            inner.iter().filter(|r| r.is_some()).count()
        });
        // Items 0..=5 ran (the flag is checked before each item), the rest
        // were skipped.
        assert_eq!(out, vec![6]);
    }
}

//! Persistent parked worker pool: OS threads spawned once, parked between
//! batches, servicing [`map_scoped`](WorkerPool::map_scoped) dispatches with
//! no per-batch spawn cost.
//!
//! ## Why a persistent pool
//!
//! The scoped entry points ([`crate::parallel_map_scoped`]) pay one thread
//! spawn-and-join per call — ~50–150 µs join-to-join on a quiet Linux host.
//! That is invisible when a batch carries hundreds of µs of work, and
//! dominant when an optimizer batches finely (a 40-candidate generation at
//! ~2 µs per evaluation is ~80 µs of work). A [`WorkerPool`] moves the spawn
//! to construction: workers block in [`std::thread::park`] between batches,
//! a dispatch is one atomic epoch store plus one `unpark` per *active*
//! worker, and the calling thread participates as worker 0 so a `workers = 1`
//! pool never creates a thread at all.
//!
//! ## Dispatch protocol
//!
//! A batch is published as a type-erased [`Job`]: a monomorphic trampoline
//! function pointer plus a pointer to a stack-allocated [`Context`] holding
//! the item slice, the per-worker state slots, the result slots and the
//! shared chunk counter. The dispatcher writes the job, then bumps each
//! active worker's epoch with a `Release` store and unparks it; workers
//! `Acquire`-load the epoch, so the job write happens-before every read of
//! it. The dispatcher blocks (parked) until the `remaining` counter drains,
//! which is what makes lending stack references to `'static` worker threads
//! sound: the context outlives every access because `map_scoped` does not
//! return while any worker can still touch it.
//!
//! ## Determinism
//!
//! Results are written into per-item slots keyed by item index, so the
//! returned vector is in input order no matter which worker claimed which
//! chunk — the same candidate-order merge contract the scoped entry points
//! have always had, and the property the evaluation pool's bit-identity
//! guarantee builds on.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};

use crate::control::CancelToken;

/// A persistent pool of parked worker threads servicing
/// [`map_scoped`](WorkerPool::map_scoped) batches.
///
/// Threads are spawned once, at construction, and parked between batches;
/// dispatching a batch costs one `unpark` per active worker instead of a
/// thread spawn (the module-level docs describe the protocol; the
/// `pool_overhead` section of `BENCH_pack.json` has measured numbers). The
/// calling thread always participates as worker 0, so a 1-worker pool spawns
/// no thread and runs batches inline — byte-for-byte the serial loop.
///
/// Batches with fewer items than workers clamp the active worker count to
/// the item count: surplus threads are simply not woken (they stay parked),
/// so a short batch never pays for the full worker complement.
///
/// # Examples
///
/// ```
/// use afp_par::WorkerPool;
///
/// let items: Vec<u64> = (0..100).collect();
/// let mut pool = WorkerPool::new(4);
/// let mut counters = vec![0usize; 4];
/// // Two batches over the same pool: no thread is spawned in between, and
/// // per-worker state persists exactly as with `parallel_map_scoped`.
/// let a = pool.map_scoped(&items, &mut counters, |seen, &x| { *seen += 1; x * 2 });
/// let b = pool.map_scoped(&items, &mut counters, |seen, &x| { *seen += 1; x * 2 });
/// assert_eq!(a, b);
/// assert_eq!(counters.iter().sum::<usize>(), 200);
/// assert_eq!(pool.stats().batches, 2);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Unpark handles of the spawned threads; thread `t` (1-based worker
    /// index) lives at `threads[t - 1]`. Worker 0 is the dispatching thread.
    threads: Vec<Thread>,
    handles: Vec<JoinHandle<()>>,
    stats: PoolStats,
}

/// Dispatch counters of a [`WorkerPool`], for observability (the perf
/// snapshot records them): how many batches ran, how many were served inline
/// by the calling thread, and how many thread wake-ups were issued.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `map_scoped` batches dispatched (including empty ones).
    pub batches: u64,
    /// Batches that ran entirely on the calling thread (single effective
    /// worker — a 1-worker pool, a 1-item batch, or a 1-slot state).
    pub inline_batches: u64,
    /// Batches that woke at least one parked thread.
    pub parked_dispatches: u64,
    /// Total `unpark` wake-ups issued across all batches — the pool's whole
    /// dispatch cost in units of futex wakes, where the scoped entry points
    /// would have paid a thread spawn each.
    pub threads_woken: u64,
    /// Batches whose item count was below the available worker count, where
    /// the active complement was clamped and surplus workers stayed parked.
    pub clamped_batches: u64,
}

/// The type-erased batch descriptor workers execute. Published by the
/// dispatcher before the epoch stores that release it; never mutated while a
/// worker may read it (the dispatcher blocks until `remaining` drains before
/// returning, and the next `map_scoped` needs `&mut self`).
struct Job {
    /// Monomorphic trampoline reconstructing the concrete [`Context`] type.
    run: unsafe fn(*const (), usize),
    /// Pointer to the dispatcher's stack-allocated [`Context`].
    ctx: *const (),
    /// The dispatching thread, unparked by whichever worker drains
    /// `remaining` to zero.
    caller: Thread,
}

struct Shared {
    job: UnsafeCell<Job>,
    /// Per-thread dispatch epochs (`go[t - 1]` belongs to worker `t`): a
    /// worker parks while its epoch equals the last value it processed, so
    /// waking a worker is an epoch bump plus an unpark — and workers outside
    /// a clamped batch's active set are simply left unbumped.
    go: Vec<AtomicU64>,
    /// Active workers still running the current batch (excluding worker 0).
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// First panic payload of the batch's workers, re-thrown by the
    /// dispatcher after the batch drains.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// SAFETY: `job` is written only by the dispatching thread while no worker is
// active (`remaining == 0` and no epoch has been bumped since), and read by
// workers only after an `Acquire` load of their epoch observes the `Release`
// store that followed the write — a happens-before edge per batch. All other
// fields are atomics or a mutex.
unsafe impl Sync for Shared {}
// SAFETY: the raw `ctx` pointer inside `job` is only dereferenced by worker
// threads during a batch, under the protocol above; sending the container
// between threads moves no aliased access.
unsafe impl Send for Shared {}

/// The concrete batch state a [`Job`] points at, monomorphized per
/// `map_scoped` call and reconstructed by [`run_batch`].
struct Context<T, R, S, F> {
    items: *const T,
    n: usize,
    /// Base of the caller's state slots; worker `t` touches only slot `t`.
    states: *mut S,
    /// Base of the result slots; slot `i` is written exactly once, by the
    /// worker that claimed the chunk containing item `i`.
    results: *mut Option<R>,
    f: *const F,
    next_chunk: AtomicUsize,
    chunk: usize,
    num_chunks: usize,
    /// Optional cancellation flag (null = none): checked with a relaxed load
    /// at every chunk-claim boundary, so a cancelled batch stops claiming new
    /// chunks while in-flight chunks drain to completion. Points at the
    /// caller's [`CancelToken`] flag, which outlives the batch because the
    /// dispatcher blocks until `remaining` drains.
    cancel: *const AtomicBool,
}

/// The monomorphic trampoline: claims chunks off the shared counter and
/// writes each item's result into its index-keyed slot.
///
/// # Safety
///
/// `ctx` must point at a live `Context<T, R, S, F>` whose slices outlive the
/// batch, and `worker` must be a unique index in `0..active_workers` (state
/// slot accesses are disjoint by worker, result slot accesses disjoint by
/// item index).
unsafe fn run_batch<T, R, S, F>(ctx: *const (), worker: usize)
where
    F: Fn(&mut S, &T) -> R,
{
    let ctx = &*(ctx as *const Context<T, R, S, F>);
    let state = &mut *ctx.states.add(worker);
    let f = &*ctx.f;
    loop {
        // Chunk-claim boundary: a raised cancel flag stops this worker from
        // claiming further chunks (the chunk being executed always runs to
        // completion — results are all-or-nothing per item, never torn).
        if !ctx.cancel.is_null() && (*ctx.cancel).load(Ordering::Relaxed) {
            break;
        }
        let c = ctx.next_chunk.fetch_add(1, Ordering::Relaxed);
        if c >= ctx.num_chunks {
            break;
        }
        let start = c * ctx.chunk;
        let end = (start + ctx.chunk).min(ctx.n);
        for i in start..end {
            let item = &*ctx.items.add(i);
            // The slot holds `None` (never dropped a value), so a raw write
            // without reading the old value is sound.
            ctx.results.add(i).write(Some(f(state, item)));
        }
    }
}

/// Placeholder job installed at construction; never executed (workers only
/// run a job after their epoch is bumped, which only `map_scoped` and the
/// shutdown path do — and shutdown breaks before running).
unsafe fn noop_job(_: *const (), _: usize) {}

fn worker_loop(shared: Arc<Shared>, t: usize) {
    let mut seen = 0u64;
    loop {
        let slot = &shared.go[t - 1];
        let mut current = slot.load(Ordering::Acquire);
        while current == seen {
            thread::park();
            current = slot.load(Ordering::Acquire);
        }
        seen = current;
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // SAFETY: the job was published before the `Release` epoch store the
        // loop above acquired, and cannot be overwritten until this worker
        // (with every other active one) decrements `remaining`.
        let (run, ctx, caller) = {
            let job = unsafe { &*shared.job.get() };
            (job.run, job.ctx, job.caller.clone())
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { run(ctx, t) }));
        if let Err(payload) = outcome {
            // Keep the first payload; later ones are dropped (matching what
            // a scoped spawn's sequential joins would have propagated).
            let mut slot = shared.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(payload);
        }
        // `caller` was cloned before the decrement: after `remaining` hits
        // zero the dispatcher may immediately publish the next batch, so the
        // job must not be touched past this point.
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` total workers (including the calling
    /// thread), spawning `workers - 1` OS threads that immediately park.
    /// `workers = 0` means one per available hardware thread; any value is
    /// clamped to at least 1. A 1-worker pool spawns nothing and runs every
    /// batch inline.
    pub fn new(workers: usize) -> Self {
        let workers = if workers == 0 {
            thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            workers
        }
        .max(1);
        let shared = Arc::new(Shared {
            job: UnsafeCell::new(Job {
                run: noop_job,
                ctx: std::ptr::null(),
                caller: thread::current(),
            }),
            go: (1..workers).map(|_| AtomicU64::new(0)).collect(),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let handles: Vec<JoinHandle<()>> = (1..workers)
            .map(|t| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("afp-par-{t}"))
                    .spawn(move || worker_loop(shared, t))
                    .expect("spawn pool worker thread")
            })
            .collect();
        let threads = handles.iter().map(|h| h.thread().clone()).collect();
        WorkerPool {
            shared,
            threads,
            handles,
            stats: PoolStats::default(),
        }
    }

    /// Total worker count, counting the calling thread as worker 0.
    pub fn workers(&self) -> usize {
        self.threads.len() + 1
    }

    /// Dispatch counters accumulated since construction.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// [`crate::parallel_map_scoped`] over the pool's parked workers: applies
    /// `f` to every item with one mutable state slot per worker, returning
    /// results in input order, without spawning a thread.
    ///
    /// The effective worker count is `min(pool workers, states.len(),
    /// items.len())`: trailing state slots of a short batch are left
    /// untouched and surplus pool threads stay parked. With one effective
    /// worker the batch runs inline on the calling thread — byte-for-byte
    /// the serial `items.iter().map(|item| f(&mut states[0], item))` loop.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty; propagates panics from worker closures
    /// (the batch still drains first, so the pool stays usable).
    pub fn map_scoped<T, R, S, F>(&mut self, items: &[T], states: &mut [S], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        S: Send,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        self.dispatch(items, states, None, f)
            .into_iter()
            .map(|r| r.expect("every item processed"))
            .collect()
    }

    /// [`map_scoped`](WorkerPool::map_scoped) with cooperative cancellation:
    /// once `cancel` is raised (by any clone of the token — a worker closure,
    /// another thread, a deadline watcher), workers stop claiming new chunks
    /// at the next chunk-claim boundary and the batch drains promptly.
    ///
    /// Returns one slot per item in input order: `Some(result)` for items
    /// whose chunk ran, `None` for items never claimed. An item's result is
    /// all-or-nothing — a chunk in flight when the flag rises still runs to
    /// completion, so every `Some` is a fully computed result and a re-run of
    /// the same item would be bit-identical. With the token never cancelled
    /// the call is equivalent to `map_scoped` (every slot is `Some`).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty; propagates panics from worker closures
    /// (the batch still drains first, so the pool stays usable).
    pub fn map_scoped_cancellable<T, R, S, F>(
        &mut self,
        items: &[T],
        states: &mut [S],
        cancel: &CancelToken,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        S: Send,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        self.dispatch(items, states, Some(cancel), f)
    }

    /// The shared batch engine behind [`map_scoped`](WorkerPool::map_scoped)
    /// and [`map_scoped_cancellable`](WorkerPool::map_scoped_cancellable):
    /// identical scheduling (chunking, clamping, inline path) with an
    /// optional cancel flag observed at chunk-claim boundaries.
    fn dispatch<T, R, S, F>(
        &mut self,
        items: &[T],
        states: &mut [S],
        cancel: Option<&CancelToken>,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        S: Send,
        F: Fn(&mut S, &T) -> R + Sync,
    {
        assert!(
            !states.is_empty(),
            "map_scoped needs at least one worker state"
        );
        let n = items.len();
        self.stats.batches += 1;
        if n == 0 {
            return Vec::new();
        }
        let available = states.len().min(self.workers());
        if n < available {
            self.stats.clamped_batches += 1;
        }
        let workers = available.min(n);
        if workers == 1 {
            self.stats.inline_batches += 1;
            let state = &mut states[0];
            return match cancel {
                // No flag: byte-for-byte the historical serial loop.
                None => items.iter().map(|item| Some(f(state, item))).collect(),
                // Flag: per-item check (the inline analogue of a chunk-claim
                // boundary); remaining items come back `None`.
                Some(token) => {
                    let flag = token.flag();
                    items
                        .iter()
                        .map(|item| {
                            if flag.load(Ordering::Relaxed) {
                                None
                            } else {
                                Some(f(state, item))
                            }
                        })
                        .collect()
                }
            };
        }

        let chunk = (n / (workers * 4)).max(1);
        let num_chunks = n.div_ceil(chunk);
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let ctx = Context::<T, R, S, F> {
            items: items.as_ptr(),
            n,
            states: states.as_mut_ptr(),
            results: results.as_mut_ptr(),
            f: &f,
            next_chunk: AtomicUsize::new(0),
            chunk,
            num_chunks,
            cancel: cancel.map_or(std::ptr::null(), |token| token.flag() as *const AtomicBool),
        };
        let ctx_ptr = &ctx as *const Context<T, R, S, F> as *const ();

        // Publish the job, then release it to exactly the active workers.
        // SAFETY: no worker is running (`remaining == 0` since the previous
        // batch drained, and `&mut self` excludes concurrent dispatch), so
        // the job slot is exclusively ours to write.
        unsafe {
            *self.shared.job.get() = Job {
                run: run_batch::<T, R, S, F>,
                ctx: ctx_ptr,
                caller: thread::current(),
            };
        }
        let woken = workers - 1;
        self.shared.remaining.store(woken, Ordering::Release);
        self.stats.parked_dispatches += 1;
        self.stats.threads_woken += woken as u64;
        for t in 1..=woken {
            self.shared.go[t - 1].fetch_add(1, Ordering::Release);
            self.threads[t - 1].unpark();
        }

        // The dispatching thread is worker 0. Its own panic is deferred:
        // returning (unwinding) while workers still hold references into the
        // stack context would be unsound, so the batch drains first either way.
        let inline_outcome =
            catch_unwind(AssertUnwindSafe(|| unsafe { run_batch::<T, R, S, F>(ctx_ptr, 0) }));
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            thread::park();
        }

        let worker_panic = self
            .shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        if let Err(payload) = inline_outcome {
            resume_unwind(payload);
        }
        results
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for (i, thread) in self.threads.iter().enumerate() {
            self.shared.go[i].fetch_add(1, Ordering::Release);
            thread.unpark();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_matches_serial_for_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
        for workers in 1..=8 {
            let mut pool = WorkerPool::new(workers);
            let mut states = vec![(); workers];
            for round in 0..3 {
                let out = pool.map_scoped(&items, &mut states, |_, &x| x.wrapping_mul(0x9E37));
                assert_eq!(out, serial, "diverged at {workers} workers, round {round}");
            }
        }
    }

    #[test]
    fn pool_reuses_threads_across_batches_of_different_types() {
        let mut pool = WorkerPool::new(3);
        let mut sums = vec![0u64; 3];
        let numbers: Vec<u64> = (0..50).collect();
        let doubled = pool.map_scoped(&numbers, &mut sums, |sum, &x| {
            *sum += x;
            x * 2
        });
        assert_eq!(doubled[49], 98);
        // A second batch with completely different item/result/state types
        // runs on the same parked threads (the job is type-erased per batch).
        let words = vec!["a", "bb", "ccc"];
        let mut scratch = vec![String::new(); 3];
        let lens = pool.map_scoped(&words, &mut scratch, |buf, w| {
            buf.push_str(w);
            w.len()
        });
        assert_eq!(lens, vec![1, 2, 3]);
        assert_eq!(sums.iter().sum::<u64>(), (0..50).sum::<u64>());
    }

    #[test]
    fn single_worker_pool_spawns_nothing_and_runs_in_order() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let items: Vec<usize> = (0..50).collect();
        let mut states = vec![Vec::<usize>::new()];
        let out = pool.map_scoped(&items, &mut states, |seen, &x| {
            seen.push(x);
            x
        });
        assert_eq!(out, items);
        assert_eq!(states[0], items, "inline path must visit items in order");
        assert_eq!(pool.stats().inline_batches, 1);
        assert_eq!(pool.stats().threads_woken, 0);
    }

    #[test]
    fn small_batches_clamp_instead_of_waking_the_full_complement() {
        let mut pool = WorkerPool::new(8);
        let mut touched = vec![false; 8];
        let items = vec![10u64, 20];
        let out = pool.map_scoped(&items, &mut touched, |t, &x| {
            *t = true;
            x
        });
        assert_eq!(out, items);
        assert!(touched[2..].iter().all(|&t| !t), "trailing slots untouched");
        let stats = pool.stats();
        assert_eq!(stats.clamped_batches, 1);
        assert!(
            stats.threads_woken <= 1,
            "a 2-item batch may wake at most 1 extra worker, woke {}",
            stats.threads_woken
        );
        // A 1-item batch runs inline: no wake at all.
        let one = [7u64];
        let _ = pool.map_scoped(&one, &mut touched, |_, &x| x);
        assert_eq!(pool.stats().threads_woken, stats.threads_woken);
        assert_eq!(pool.stats().inline_batches, 1);
    }

    #[test]
    fn state_persists_across_batches() {
        let items: Vec<u32> = (0..32).collect();
        let mut pool = WorkerPool::new(3);
        let mut counters = vec![0u32; 3];
        for _ in 0..5 {
            let _ = pool.map_scoped(&items, &mut counters, |count, &x| {
                *count += 1;
                x
            });
        }
        assert_eq!(counters.iter().sum::<u32>(), 5 * 32);
        assert_eq!(pool.stats().batches, 5);
    }

    #[test]
    fn empty_batch_returns_empty() {
        let mut pool = WorkerPool::new(4);
        let mut states = vec![0u8; 4];
        let out: Vec<u8> = pool.map_scoped(&[], &mut states, |_, &x: &u8| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker state")]
    fn rejects_empty_states() {
        let mut pool = WorkerPool::new(2);
        let items = [1u8];
        let mut states: Vec<u8> = Vec::new();
        let _ = pool.map_scoped(&items, &mut states, |_, &x| x);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let mut states = vec![(); 4];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map_scoped(&items, &mut states, |_, &x| {
                assert!(x != 13, "boom at 13");
                x
            });
        }));
        assert!(outcome.is_err(), "panic must propagate to the dispatcher");
        // The batch drained before unwinding, so the pool is still usable.
        let out = pool.map_scoped(&items, &mut states, |_, &x| x + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_chunks_cover_every_item() {
        let items: Vec<usize> = (0..1000).collect();
        let mut pool = WorkerPool::new(7);
        let mut states = vec![(); 7];
        let out = pool.map_scoped(&items, &mut states, |_, &x| x + 1);
        assert_eq!(out, (1..=1000).collect::<Vec<_>>());
    }

    #[test]
    fn dropping_an_idle_pool_joins_cleanly() {
        let pool = WorkerPool::new(6);
        drop(pool);
        let mut pool = WorkerPool::new(2);
        let _ = pool.map_scoped(&[1u8, 2, 3], &mut [(), ()], |_, &x| x);
        drop(pool);
    }

    #[test]
    fn repeated_panics_across_successive_batches_keep_the_pool_usable() {
        // Panic recovery beyond one shot: five consecutive batches each blow
        // up at a different item, and after every one the pool must still
        // dispatch, drain and count correctly.
        let mut pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let mut states = vec![(); 4];
        for round in 0..5u64 {
            let bomb = round * 11 + 3;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = pool.map_scoped(&items, &mut states, |_, &x| {
                    assert!(x != bomb, "boom at {bomb}");
                    x
                });
            }));
            assert!(outcome.is_err(), "round {round} must propagate its panic");
        }
        let out = pool.map_scoped(&items, &mut states, |_, &x| x + 1);
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        // Counters balance: every batch ran to a drain, none was lost.
        let stats = pool.stats();
        assert_eq!(stats.batches, 6);
        assert_eq!(stats.inline_batches + stats.parked_dispatches, stats.batches);
    }

    #[test]
    fn panic_in_worker_zero_is_deferred_until_the_batch_drains() {
        // Worker 0 is the dispatching thread: its panic must not unwind past
        // the stack context while spawned workers may still touch it. States
        // are per-worker, so marking slot 0 targets the caller exactly.
        let mut pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..64).collect();
        let mut states: Vec<usize> = (0..4).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map_scoped(&items, &mut states, |slot, &x| {
                assert!(*slot != 0, "caller-slot boom");
                x
            });
        }));
        assert!(outcome.is_err(), "worker 0's panic must propagate");
        let mut states = vec![(); 4];
        let out = pool.map_scoped(&items, &mut states, |_, &x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(pool.stats().batches, 2);
    }

    #[test]
    fn panic_while_other_workers_are_mid_chunk_still_drains() {
        // One item panics while every other item stalls briefly, so sibling
        // workers are guaranteed to be mid-chunk when the panic lands. The
        // dispatcher must still wait for the full drain before re-raising —
        // anything else would leave workers reading a dead stack frame.
        let mut pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..32).collect();
        let mut states = vec![(); 4];
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.map_scoped(&items, &mut states, |_, &x| {
                if x == 5 {
                    panic!("mid-chunk boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            });
        }));
        assert!(outcome.is_err());
        let out = pool.map_scoped(&items, &mut states, |_, &x| x + 7);
        assert_eq!(out, (7..39).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.inline_batches + stats.parked_dispatches, stats.batches);
    }

    #[test]
    fn uncancelled_token_matches_map_scoped_exactly() {
        let items: Vec<u64> = (0..257).collect();
        let token = CancelToken::new();
        for workers in [1usize, 2, 4] {
            let mut pool = WorkerPool::new(workers);
            let mut states = vec![(); workers];
            let plain = pool.map_scoped(&items, &mut states, |_, &x| x.wrapping_mul(3));
            let gated =
                pool.map_scoped_cancellable(&items, &mut states, &token, |_, &x| {
                    x.wrapping_mul(3)
                });
            assert_eq!(gated.len(), items.len());
            assert!(gated.iter().all(Option::is_some), "{workers} workers");
            let gated: Vec<u64> = gated.into_iter().flatten().collect();
            assert_eq!(gated, plain, "{workers} workers");
        }
    }

    #[test]
    fn pre_cancelled_batch_claims_nothing() {
        let token = CancelToken::new();
        token.cancel();
        for workers in [1usize, 3] {
            let mut pool = WorkerPool::new(workers);
            let mut states = vec![0u64; workers];
            let items: Vec<u64> = (0..100).collect();
            let out = pool.map_scoped_cancellable(&items, &mut states, &token, |s, &x| {
                *s += 1;
                x
            });
            assert_eq!(out.len(), items.len());
            assert!(out.iter().all(Option::is_none), "{workers} workers");
            assert_eq!(states.iter().sum::<u64>(), 0, "no closure may have run");
        }
    }

    #[test]
    fn mid_batch_cancellation_drains_with_partial_results() {
        // A worker closure raises the flag partway through: every returned
        // `Some` must be a complete, correct result, and at least one trailing
        // item must have been skipped (the flag rose long before the end).
        let mut pool = WorkerPool::new(2);
        let items: Vec<u64> = (0..400).collect();
        let mut states = vec![(); 2];
        let token = CancelToken::new();
        let out = pool.map_scoped_cancellable(&items, &mut states, &token, |_, &x| {
            if x == 3 {
                token.cancel();
            }
            x * 2
        });
        assert!(token.is_cancelled());
        for (i, slot) in out.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, (i as u64) * 2, "partial results must be exact");
            }
        }
        assert!(
            out.iter().any(Option::is_none),
            "cancellation at item 3 of 400 must leave unclaimed items"
        );
        // The pool survives a cancelled batch like any other.
        let clean = pool.map_scoped(&items, &mut states, |_, &x| x);
        assert_eq!(clean, items);
    }
}

//! Deterministic fault-injection proptests for the persistent [`WorkerPool`]
//! (compiled only under the `fault-inject` feature — `scripts/ci.sh` runs
//! them by name).
//!
//! A splitmix64-seeded [`FaultPlan`] makes planned jobs panic or stall, and
//! 200 proptest cases assert the pool's failure-domain contract: injected
//! panics propagate exactly when planned and never deadlock the dispatcher,
//! stalls only delay, [`PoolStats`] stays consistent through it all, and a
//! pool remains usable after arbitrarily many faulted batches.
#![cfg(feature = "fault-inject")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use afp_par::fault::FaultPlan;
use afp_par::{CancelToken, WorkerPool};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The pool-level survival property: across several batches with planned
    /// panics and stalls, every batch drains (no deadlock — the test
    /// completing is the evidence, and CI wraps the run in a `timeout`),
    /// panics propagate exactly when the plan contains one, surviving
    /// results match the serial loop bit-for-bit, stats counters balance,
    /// and a final clean batch runs as if nothing ever went wrong.
    #[test]
    fn pool_survives_injected_faults(
        seed in 0u64..1_000_000,
        workers in 1usize..5,
        items in 1usize..48,
        panic_percent in 0u8..40,
        stall_percent in 0u8..25,
        batches in 1usize..4,
    ) {
        let plan = FaultPlan::new(seed, panic_percent, stall_percent);
        let mut pool = WorkerPool::new(workers);
        let mut states = vec![0u64; workers];
        let xs: Vec<u64> = (0..items as u64).collect();
        for batch in 0..batches as u64 {
            // Job ids advance across batches so each batch faults at
            // different (but planned) positions.
            let offset = batch * 1000;
            let planned_panic = xs.iter().any(|&x| plan.panics(offset + x));
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.map_scoped(&xs, &mut states, |hits, &x| {
                    plan.inject(offset + x);
                    *hits += 1;
                    x.wrapping_mul(0x9E37)
                })
            }));
            match outcome {
                Ok(results) => {
                    prop_assert!(!planned_panic, "planned panic was swallowed");
                    let serial: Vec<u64> =
                        xs.iter().map(|&x| x.wrapping_mul(0x9E37)).collect();
                    prop_assert_eq!(results, serial);
                }
                Err(payload) => {
                    prop_assert!(planned_panic, "unplanned panic escaped");
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    prop_assert!(
                        message.contains("injected fault"),
                        "foreign panic payload: {}", message
                    );
                }
            }
        }
        // PoolStats consistency after repeated faulted batches.
        let stats = pool.stats();
        prop_assert_eq!(stats.batches, batches as u64);
        prop_assert_eq!(stats.inline_batches + stats.parked_dispatches, stats.batches);
        prop_assert!(stats.threads_woken <= stats.parked_dispatches * (workers as u64));
        // Reusability: a clean batch (and a clean cancellable batch) both
        // run to completion with exact results.
        let clean = pool.map_scoped(&xs, &mut states, |_, &x| x + 1);
        prop_assert_eq!(clean, (1..=items as u64).collect::<Vec<_>>());
        let token = CancelToken::new();
        let gated = pool.map_scoped_cancellable(&xs, &mut states, &token, |_, &x| x + 1);
        prop_assert!(gated.iter().all(Option::is_some));
        prop_assert_eq!(pool.stats().batches, batches as u64 + 2);
    }
}

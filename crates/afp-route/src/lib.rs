//! # afp-route — global routing and procedural layout completion
//!
//! The back half of the paper's pipeline (Fig. 1 and §IV-E):
//!
//! * [`maze`] — an obstacle-aware routing grid with BFS shortest paths,
//! * [`steiner`] — obstacle-avoiding rectilinear Steiner trees (OARSMT), one
//!   per net, plus whole-circuit [`global_route`],
//! * [`conduit`] — segmentation of the trees into layer-assigned conduits and
//!   extraction of the routing channels between blocks,
//! * [`drc`] — geometric spacing checks,
//! * [`procedural`] — the ANAGEN-substitute layout completion flow producing
//!   the area / dead-space / generation-time numbers of Table II.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::{generators, Shape, BlockId};
//! use afp_layout::{Canvas, Cell, Floorplan};
//! use afp_route::global_route;
//!
//! let circuit = generators::ota3();
//! let mut floorplan = Floorplan::new(Canvas::for_circuit(&circuit));
//! floorplan.place(BlockId(0), 0, Shape::new(8.0, 7.0), Cell::new(0, 0)).unwrap();
//! floorplan.place(BlockId(1), 0, Shape::new(7.0, 7.0), Cell::new(10, 0)).unwrap();
//! floorplan.place(BlockId(2), 0, Shape::new(6.0, 5.0), Cell::new(20, 0)).unwrap();
//! let routing = global_route(&circuit, &floorplan, 48);
//! assert!(routing.total_wirelength() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conduit;
pub mod drc;
pub mod maze;
pub mod procedural;
pub mod steiner;

pub use conduit::{conduits_for_routing, conduits_for_tree, extract_channels, Channel, Conduit, Layer};
pub use drc::{check, DesignRules, DrcViolation};
pub use maze::{RouteCell, RoutingGrid};
pub use procedural::{complete_layout, CompletedLayout, LayoutReport, ProceduralConfig};
pub use steiner::{build_tree, global_route, GlobalRouting, Segment, SteinerTree};

//! Lightweight design-rule checks for completed layouts.
//!
//! The procedural generator's output is judged on being "DRC and LVS clean"
//! (paper §V-C). This module provides the geometric subset of those checks
//! that the substitute flow can verify: block-to-block spacing, wire-to-block
//! spacing on the same layer, and wire-to-wire spacing between different nets.

use afp_layout::{Floorplan, Rect};

use crate::conduit::Conduit;

/// Spacing rules, in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignRules {
    /// Minimum spacing between two placed blocks.
    pub block_spacing_um: f64,
    /// Minimum spacing between two wires of different nets on the same layer.
    pub wire_spacing_um: f64,
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules {
            block_spacing_um: 0.0,
            wire_spacing_um: 0.2,
        }
    }
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcViolation {
    /// Two blocks are closer than the minimum block spacing (or overlap).
    BlockSpacing {
        /// Index of the first placed block.
        first: usize,
        /// Index of the second placed block.
        second: usize,
    },
    /// Two wires of different nets on the same layer are too close.
    WireSpacing {
        /// Index of the first conduit.
        first: usize,
        /// Index of the second conduit.
        second: usize,
    },
}

/// Runs the design-rule checks and returns every violation found.
pub fn check(floorplan: &Floorplan, conduits: &[Conduit], rules: &DesignRules) -> Vec<DrcViolation> {
    let mut violations = Vec::new();
    let placed = floorplan.placed();
    for i in 0..placed.len() {
        for j in (i + 1)..placed.len() {
            let a = placed[i].rect.inflated(rules.block_spacing_um / 2.0);
            let b = placed[j].rect.inflated(rules.block_spacing_um / 2.0);
            if a.overlaps(&b) {
                violations.push(DrcViolation::BlockSpacing { first: i, second: j });
            }
        }
    }
    for i in 0..conduits.len() {
        for j in (i + 1)..conduits.len() {
            let (a, b) = (&conduits[i], &conduits[j]);
            if a.net == b.net || a.layer != b.layer {
                continue;
            }
            let fa: Rect = a.footprint().inflated(rules.wire_spacing_um / 2.0);
            let fb: Rect = b.footprint().inflated(rules.wire_spacing_um / 2.0);
            if fa.overlaps(&fb) {
                violations.push(DrcViolation::WireSpacing { first: i, second: j });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conduit::Layer;
    use crate::steiner::Segment;
    use afp_circuit::{BlockId, NetId, Shape};
    use afp_layout::{Canvas, Cell};

    fn conduit(net: usize, y: f64, layer: Layer) -> Conduit {
        Conduit {
            net: NetId(net),
            segment: Segment {
                from: (0.0, y),
                to: (5.0, y),
            },
            layer,
            width_um: 0.2,
        }
    }

    #[test]
    fn separated_blocks_pass() {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(6, 0)).unwrap();
        assert!(check(&fp, &[], &DesignRules::default()).is_empty());
    }

    #[test]
    fn touching_blocks_violate_spacing_rule() {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(4, 0)).unwrap();
        let rules = DesignRules {
            block_spacing_um: 0.5,
            ..DesignRules::default()
        };
        let violations = check(&fp, &[], &rules);
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], DrcViolation::BlockSpacing { .. }));
    }

    #[test]
    fn close_wires_of_different_nets_violate() {
        let fp = Floorplan::new(Canvas::new(32.0, 32.0));
        let conduits = [
            conduit(0, 1.0, Layer::Horizontal),
            conduit(1, 1.1, Layer::Horizontal),
        ];
        let violations = check(&fp, &conduits, &DesignRules::default());
        assert_eq!(violations.len(), 1);
        assert!(matches!(violations[0], DrcViolation::WireSpacing { .. }));
    }

    #[test]
    fn same_net_or_different_layer_wires_are_exempt() {
        let fp = Floorplan::new(Canvas::new(32.0, 32.0));
        let same_net = [conduit(0, 1.0, Layer::Horizontal), conduit(0, 1.1, Layer::Horizontal)];
        assert!(check(&fp, &same_net, &DesignRules::default()).is_empty());
        let cross_layer = [conduit(0, 1.0, Layer::Horizontal), conduit(1, 1.1, Layer::Vertical)];
        assert!(check(&fp, &cross_layer, &DesignRules::default()).is_empty());
    }
}

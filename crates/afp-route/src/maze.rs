//! A uniform routing grid with obstacle-aware shortest paths.
//!
//! The grid is the substrate of the OARSMT construction: placed blocks become
//! obstacles (with a small clearance so wires can hug block edges), and
//! breadth-first search finds shortest rectilinear paths between cells.

use std::collections::VecDeque;

use afp_layout::{Floorplan, Rect};

/// A cell of the routing grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteCell {
    /// Column index.
    pub x: usize,
    /// Row index.
    pub y: usize,
}

/// A uniform routing grid over the floorplan region.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    columns: usize,
    rows: usize,
    origin: (f64, f64),
    cell_size: f64,
    blocked: Vec<bool>,
}

impl RoutingGrid {
    /// Builds a routing grid covering the floorplan bounding box (plus a
    /// one-cell halo) with approximately `resolution` cells along the longer
    /// side. Placed blocks are marked as obstacles after being shrunk by
    /// `clearance_um` on every side so that routes may run along block edges.
    pub fn from_floorplan(floorplan: &Floorplan, resolution: usize, clearance_um: f64) -> Self {
        let bb = floorplan
            .bounding_box()
            .unwrap_or(Rect::from_origin_size(0.0, 0.0, 1.0, 1.0));
        let span = bb.width().max(bb.height()).max(1e-6);
        let cell_size = span / resolution.max(4) as f64;
        let origin = (bb.x0 - cell_size, bb.y0 - cell_size);
        let columns = (bb.width() / cell_size).ceil() as usize + 3;
        let rows = (bb.height() / cell_size).ceil() as usize + 3;
        let mut grid = RoutingGrid {
            columns,
            rows,
            origin,
            cell_size,
            blocked: vec![false; columns * rows],
        };
        for placed in floorplan.placed() {
            let shrunk = placed.rect.inflated(-clearance_um.min(placed.rect.width() / 4.0));
            grid.block_rect(&shrunk);
        }
        grid
    }

    /// Builds an empty grid with explicit geometry (used in tests).
    pub fn new(columns: usize, rows: usize, origin: (f64, f64), cell_size: f64) -> Self {
        RoutingGrid {
            columns,
            rows,
            origin,
            cell_size,
            blocked: vec![false; columns * rows],
        }
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Edge length of one routing cell in µm.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    fn index(&self, cell: RouteCell) -> usize {
        cell.y * self.columns + cell.x
    }

    /// Marks all cells intersecting a rectangle as blocked.
    pub fn block_rect(&mut self, rect: &Rect) {
        for y in 0..self.rows {
            for x in 0..self.columns {
                let (cx, cy) = self.cell_center(RouteCell { x, y });
                if rect.contains_point(cx, cy) {
                    let idx = y * self.columns + x;
                    self.blocked[idx] = true;
                }
            }
        }
    }

    /// Whether a cell is blocked by an obstacle.
    pub fn is_blocked(&self, cell: RouteCell) -> bool {
        self.blocked[self.index(cell)]
    }

    /// Fraction of blocked cells.
    pub fn blocked_fraction(&self) -> f64 {
        self.blocked.iter().filter(|&&b| b).count() as f64 / self.blocked.len().max(1) as f64
    }

    /// Centre of a cell in µm.
    pub fn cell_center(&self, cell: RouteCell) -> (f64, f64) {
        (
            self.origin.0 + (cell.x as f64 + 0.5) * self.cell_size,
            self.origin.1 + (cell.y as f64 + 0.5) * self.cell_size,
        )
    }

    /// The grid cell containing a µm point, clamped to the grid.
    pub fn cell_at(&self, x: f64, y: f64) -> RouteCell {
        let cx = ((x - self.origin.0) / self.cell_size).floor().max(0.0) as usize;
        let cy = ((y - self.origin.1) / self.cell_size).floor().max(0.0) as usize;
        RouteCell {
            x: cx.min(self.columns - 1),
            y: cy.min(self.rows - 1),
        }
    }

    /// The nearest unblocked cell to a µm point (spiral search), or `None` if
    /// the whole grid is blocked.
    pub fn nearest_free_cell(&self, x: f64, y: f64) -> Option<RouteCell> {
        let start = self.cell_at(x, y);
        if !self.is_blocked(start) {
            return Some(start);
        }
        for radius in 1..self.columns.max(self.rows) {
            for dy in -(radius as isize)..=(radius as isize) {
                for dx in -(radius as isize)..=(radius as isize) {
                    if dx.abs().max(dy.abs()) != radius as isize {
                        continue;
                    }
                    let nx = start.x as isize + dx;
                    let ny = start.y as isize + dy;
                    if nx < 0 || ny < 0 || nx as usize >= self.columns || ny as usize >= self.rows {
                        continue;
                    }
                    let cell = RouteCell {
                        x: nx as usize,
                        y: ny as usize,
                    };
                    if !self.is_blocked(cell) {
                        return Some(cell);
                    }
                }
            }
        }
        None
    }

    /// Shortest rectilinear path between two cells avoiding blocked cells,
    /// by breadth-first search from a set of source cells. Returns the cell
    /// sequence from (one of) the sources to the target, or `None` if the
    /// target is unreachable.
    pub fn shortest_path_from_set(
        &self,
        sources: &[RouteCell],
        target: RouteCell,
    ) -> Option<Vec<RouteCell>> {
        if sources.is_empty() {
            return None;
        }
        let mut predecessor: Vec<Option<RouteCell>> = vec![None; self.columns * self.rows];
        let mut visited = vec![false; self.columns * self.rows];
        let mut queue = VecDeque::new();
        for &s in sources {
            if self.is_blocked(s) && s != target {
                continue;
            }
            visited[self.index(s)] = true;
            queue.push_back(s);
        }
        if queue.is_empty() {
            return None;
        }
        while let Some(cell) = queue.pop_front() {
            if cell == target {
                // Reconstruct.
                let mut path = vec![cell];
                let mut cursor = cell;
                while let Some(prev) = predecessor[self.index(cursor)] {
                    path.push(prev);
                    cursor = prev;
                }
                path.reverse();
                return Some(path);
            }
            let neighbors = [
                (cell.x as isize + 1, cell.y as isize),
                (cell.x as isize - 1, cell.y as isize),
                (cell.x as isize, cell.y as isize + 1),
                (cell.x as isize, cell.y as isize - 1),
            ];
            for (nx, ny) in neighbors {
                if nx < 0 || ny < 0 || nx as usize >= self.columns || ny as usize >= self.rows {
                    continue;
                }
                let next = RouteCell {
                    x: nx as usize,
                    y: ny as usize,
                };
                let idx = self.index(next);
                if visited[idx] {
                    continue;
                }
                // The target is reachable even if it sits on a blocked cell
                // (a pin inside a block footprint).
                if self.blocked[idx] && next != target {
                    continue;
                }
                visited[idx] = true;
                predecessor[idx] = Some(cell);
                queue.push_back(next);
            }
        }
        None
    }

    /// Shortest path between two single cells.
    pub fn shortest_path(&self, from: RouteCell, to: RouteCell) -> Option<Vec<RouteCell>> {
        self.shortest_path_from_set(&[from], to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_wall() -> RoutingGrid {
        let mut g = RoutingGrid::new(10, 10, (0.0, 0.0), 1.0);
        // Vertical wall at x=5, leaving a gap at y=9.
        for y in 0..9 {
            g.block_rect(&Rect::from_origin_size(5.0, y as f64, 1.0, 1.0));
        }
        g
    }

    #[test]
    fn straight_path_without_obstacles() {
        let g = RoutingGrid::new(8, 8, (0.0, 0.0), 1.0);
        let path = g
            .shortest_path(RouteCell { x: 0, y: 0 }, RouteCell { x: 5, y: 0 })
            .unwrap();
        assert_eq!(path.len(), 6);
    }

    #[test]
    fn path_detours_around_obstacles() {
        let g = grid_with_wall();
        let path = g
            .shortest_path(RouteCell { x: 2, y: 2 }, RouteCell { x: 8, y: 2 })
            .unwrap();
        // Must detour via y=9: longer than the Manhattan distance of 6.
        assert!(path.len() > 7);
        assert!(path.iter().all(|&c| !g.is_blocked(c) || c.x != 5 || c.y == 9));
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut g = RoutingGrid::new(10, 10, (0.0, 0.0), 1.0);
        // Full wall.
        for y in 0..10 {
            g.block_rect(&Rect::from_origin_size(5.0, y as f64, 1.0, 1.0));
        }
        assert!(g
            .shortest_path(RouteCell { x: 1, y: 1 }, RouteCell { x: 8, y: 8 })
            .is_none());
    }

    #[test]
    fn nearest_free_cell_escapes_obstacles() {
        let g = grid_with_wall();
        let free = g.nearest_free_cell(5.5, 4.5).unwrap();
        assert!(!g.is_blocked(free));
    }

    #[test]
    fn cell_center_roundtrip() {
        let g = RoutingGrid::new(10, 10, (2.0, 3.0), 0.5);
        let c = RouteCell { x: 4, y: 6 };
        let (x, y) = g.cell_center(c);
        assert_eq!(g.cell_at(x, y), c);
    }

    #[test]
    fn grid_from_floorplan_marks_blocks() {
        use afp_circuit::{BlockId, Shape};
        use afp_layout::{Canvas, Cell, Floorplan};
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(10.0, 10.0), Cell::new(5, 5)).unwrap();
        let grid = RoutingGrid::from_floorplan(&fp, 32, 0.2);
        assert!(grid.blocked_fraction() > 0.1);
        assert!(grid.columns() > 8 && grid.rows() > 8);
    }
}

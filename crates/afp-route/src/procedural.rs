//! Procedural layout completion — the ANAGEN substitute.
//!
//! ANAGEN \[11\], \[12\] is Infineon's proprietary procedural generator that takes
//! a floorplan plus routing conduits and emits a DRC/LVS-clean layout. This
//! module reproduces the part of that flow the paper's Table II measures:
//! detailed routing along the conduits (snapping wires to a track grid,
//! counting vias at layer changes), spacing-rule verification, and the final
//! layout assembly with its area / dead-space accounting and generation-time
//! report.

use std::time::Instant;

use afp_circuit::Circuit;
use afp_layout::{metrics, Floorplan, Rect};

use crate::conduit::{conduits_for_routing, extract_channels, Channel, Conduit};
use crate::drc::{check, DesignRules, DrcViolation};
use crate::steiner::{global_route, GlobalRouting};

/// Technology-like parameters of the procedural generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProceduralConfig {
    /// Routing-grid resolution used for the OARSMT construction.
    pub routing_resolution: usize,
    /// Wire width in µm.
    pub wire_width_um: f64,
    /// Routing track pitch in µm (wires snap to this grid).
    pub track_pitch_um: f64,
    /// Design rules applied to the completed layout.
    pub rules: DesignRules,
}

impl Default for ProceduralConfig {
    fn default() -> Self {
        ProceduralConfig {
            routing_resolution: 64,
            wire_width_um: 0.4,
            track_pitch_um: 0.8,
            rules: DesignRules::default(),
        }
    }
}

/// A completed layout with the metrics Table II reports.
#[derive(Debug, Clone)]
pub struct CompletedLayout {
    /// The placed floorplan (unchanged by routing).
    pub floorplan: Floorplan,
    /// The global routing used.
    pub routing: GlobalRouting,
    /// The detailed-routing conduits (snapped to tracks).
    pub conduits: Vec<Conduit>,
    /// The routing channels between blocks and their occupancy.
    pub channels: Vec<Channel>,
    /// Final layout area in µm² (block bounding box extended by any routing
    /// that escapes it).
    pub area_um2: f64,
    /// Dead space of the final layout.
    pub dead_space: f64,
    /// Total routed wirelength in µm.
    pub wirelength_um: f64,
    /// Estimated via count (one per conduit direction change).
    pub via_count: usize,
    /// Detected design-rule violations.
    pub drc_violations: Vec<DrcViolation>,
    /// Wall-clock template-generation time in seconds.
    pub generation_time_s: f64,
}

impl CompletedLayout {
    /// `true` when the layout is free of spacing violations and every net was
    /// fully connected — the "DRC and LVS clean" criterion of the paper.
    pub fn is_clean(&self) -> bool {
        self.drc_violations.is_empty() && self.routing.incomplete_nets() == 0
    }
}

/// Snaps a coordinate to the routing track grid.
fn snap(value: f64, pitch: f64) -> f64 {
    (value / pitch).round() * pitch
}

/// Runs the procedural completion flow on a floorplanned circuit.
pub fn complete_layout(
    circuit: &Circuit,
    floorplan: &Floorplan,
    config: &ProceduralConfig,
) -> CompletedLayout {
    let started = Instant::now();
    // 1. Global routing: one OARSMT per net.
    let routing = global_route(circuit, floorplan, config.routing_resolution);
    // 2. Conduit extraction and detailed routing: snap every conduit endpoint
    //    to the track grid.
    let mut conduits = conduits_for_routing(&routing, config.wire_width_um);
    for conduit in &mut conduits {
        // Snap each conduit to the track grid — but keep the original
        // geometry when snapping would collapse a short wire to nothing
        // (tightly packed floorplans legitimately produce sub-pitch wires
        // between abutting pins, and dropping them would report zero routed
        // wirelength for a fully connected net).
        let original = conduit.segment;
        conduit.segment.from.0 = snap(conduit.segment.from.0, config.track_pitch_um);
        conduit.segment.from.1 = snap(conduit.segment.from.1, config.track_pitch_um);
        conduit.segment.to.0 = snap(conduit.segment.to.0, config.track_pitch_um);
        conduit.segment.to.1 = snap(conduit.segment.to.1, config.track_pitch_um);
        if conduit.length() <= 1e-9 {
            conduit.segment = original;
        }
    }
    conduits.retain(|c| c.length() > 1e-9);
    // 3. Channel definition.
    let channels = extract_channels(floorplan, &conduits);
    // 4. DRC.
    let drc_violations = check(floorplan, &conduits, &config.rules);
    // 5. Layout assembly: the final outline is the union of block rectangles
    //    and conduit footprints.
    let mut outline = floorplan
        .bounding_box()
        .unwrap_or(Rect::from_origin_size(0.0, 0.0, 0.0, 0.0));
    for conduit in &conduits {
        outline = outline.union(&conduit.footprint());
    }
    let area = outline.area();
    let block_area: f64 = floorplan.placed_area_um2();
    let dead_space = if area > 0.0 {
        (1.0 - block_area / area).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let via_count = routing.trees.iter().map(|t| t.bend_count()).sum();
    let wirelength_um = conduits.iter().map(Conduit::length).sum();

    CompletedLayout {
        floorplan: floorplan.clone(),
        routing,
        conduits,
        channels,
        area_um2: area,
        dead_space,
        wirelength_um,
        via_count,
        drc_violations,
        generation_time_s: started.elapsed().as_secs_f64(),
    }
}

/// Summary row of the Table II comparison for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutReport {
    /// Circuit name.
    pub circuit: String,
    /// Final layout area in µm².
    pub area_um2: f64,
    /// Dead space percentage.
    pub dead_space_pct: f64,
    /// Template (floorplan + routing) generation time in seconds.
    pub template_time_s: f64,
    /// Routed wirelength in µm.
    pub wirelength_um: f64,
    /// Whether the layout passed the geometric checks.
    pub clean: bool,
}

impl LayoutReport {
    /// Builds the report row from a completed layout.
    pub fn from_layout(circuit: &Circuit, layout: &CompletedLayout, floorplan_time_s: f64) -> Self {
        LayoutReport {
            circuit: circuit.name.clone(),
            area_um2: layout.area_um2,
            dead_space_pct: layout.dead_space * 100.0,
            template_time_s: floorplan_time_s + layout.generation_time_s,
            wirelength_um: layout.wirelength_um,
            clean: layout.is_clean(),
        }
    }
}

/// Convenience helper: the HPWL of the floorplan, exposed so reports can show
/// proxy-vs-routed wirelength side by side.
pub fn floorplan_hpwl(circuit: &Circuit, floorplan: &Floorplan) -> f64 {
    metrics::hpwl(circuit, floorplan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{generators, Shape};
    use afp_layout::{Canvas, Cell};

    fn floorplan_for(circuit: &Circuit) -> Floorplan {
        let mut fp = Floorplan::new(Canvas::for_circuit(circuit));
        let mut x = 0usize;
        let mut y = 0usize;
        let mut row_height = 0usize;
        for id in circuit.blocks_by_decreasing_area() {
            let area = circuit.block(id).unwrap().area_um2;
            let shape = Shape::from_area_and_aspect(area, 1.0);
            let (gw, gh) = fp.grid_footprint(&shape);
            if x + gw >= afp_layout::GRID_SIZE {
                x = 0;
                y += row_height + 1;
                row_height = 0;
            }
            fp.place(id, 0, shape, Cell::new(x, y)).unwrap();
            x += gw + 1;
            row_height = row_height.max(gh);
        }
        fp
    }

    #[test]
    fn completion_produces_finite_metrics() {
        let circuit = generators::ota3();
        let fp = floorplan_for(&circuit);
        let layout = complete_layout(&circuit, &fp, &ProceduralConfig::default());
        assert!(layout.area_um2 > 0.0);
        assert!((0.0..1.0).contains(&layout.dead_space));
        assert!(layout.wirelength_um > 0.0);
        assert_eq!(layout.routing.incomplete_nets(), 0);
        assert!(layout.generation_time_s >= 0.0);
    }

    #[test]
    fn conduits_are_snapped_to_tracks() {
        let circuit = generators::ota3();
        let fp = floorplan_for(&circuit);
        let config = ProceduralConfig::default();
        let layout = complete_layout(&circuit, &fp, &config);
        for c in &layout.conduits {
            for v in [c.segment.from.0, c.segment.from.1, c.segment.to.0, c.segment.to.1] {
                let snapped = snap(v, config.track_pitch_um);
                assert!((v - snapped).abs() < 1e-9, "coordinate {v} not on track grid");
            }
        }
    }

    #[test]
    fn layout_area_is_at_least_block_bounding_box() {
        let circuit = generators::bias9();
        let fp = floorplan_for(&circuit);
        let layout = complete_layout(&circuit, &fp, &ProceduralConfig::default());
        let bb = fp.bounding_box().unwrap();
        assert!(layout.area_um2 >= bb.area() * 0.999);
    }

    #[test]
    fn report_row_has_percentage_dead_space() {
        let circuit = generators::ota3();
        let fp = floorplan_for(&circuit);
        let layout = complete_layout(&circuit, &fp, &ProceduralConfig::default());
        let report = LayoutReport::from_layout(&circuit, &layout, 0.5);
        assert_eq!(report.circuit, "OTA-3");
        assert!(report.dead_space_pct >= 0.0 && report.dead_space_pct <= 100.0);
        assert!(report.template_time_s >= 0.5);
    }

    #[test]
    fn routed_wirelength_exceeds_proxy_hpwl_lower_bound() {
        // Detailed routes must be at least as long as a point-to-point proxy.
        let circuit = generators::ota5();
        let fp = floorplan_for(&circuit);
        let layout = complete_layout(&circuit, &fp, &ProceduralConfig::default());
        let hpwl = floorplan_hpwl(&circuit, &fp);
        assert!(layout.wirelength_um > 0.3 * hpwl);
    }
}

//! Obstacle-avoiding rectilinear Steiner tree (OARSMT) construction.
//!
//! Each net of the floorplanned circuit gets a rectilinear Steiner tree that
//! connects its pins while avoiding placed blocks (paper §IV-E). The tree is
//! built with the standard path-growing heuristic: starting from one terminal,
//! the nearest unconnected terminal is attached through the shortest
//! obstacle-avoiding path to the *whole* existing tree, which naturally
//! creates Steiner branch points.

use afp_circuit::{BlockId, Circuit, NetId};
use afp_layout::Floorplan;

use crate::maze::{RouteCell, RoutingGrid};

/// One rectilinear segment of a routed net, in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub from: (f64, f64),
    /// End point.
    pub to: (f64, f64),
}

impl Segment {
    /// Manhattan length of the segment (segments are axis-parallel).
    pub fn length(&self) -> f64 {
        (self.from.0 - self.to.0).abs() + (self.from.1 - self.to.1).abs()
    }

    /// `true` if the segment runs horizontally.
    pub fn is_horizontal(&self) -> bool {
        (self.from.1 - self.to.1).abs() < 1e-9
    }
}

/// The routed tree of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// The net this tree connects.
    pub net: NetId,
    /// Terminal points (pin locations) in µm.
    pub terminals: Vec<(f64, f64)>,
    /// Tree segments in µm.
    pub segments: Vec<Segment>,
    /// Whether every terminal could be connected.
    pub complete: bool,
}

impl SteinerTree {
    /// Total rectilinear wirelength of the tree.
    pub fn wirelength(&self) -> f64 {
        self.segments.iter().map(Segment::length).sum()
    }

    /// Number of bends (direction changes) in the tree, a proxy for via count.
    pub fn bend_count(&self) -> usize {
        let mut bends = 0;
        for pair in self.segments.windows(2) {
            if pair[0].is_horizontal() != pair[1].is_horizontal() {
                bends += 1;
            }
        }
        bends
    }
}

/// Pin access point of a block for a given net: the centre of the block edge
/// facing the centroid of the net's other pins — a reasonable abstraction of
/// ANAGEN's terminal export without modelling per-device pin geometry.
pub fn pin_position(circuit: &Circuit, floorplan: &Floorplan, block: BlockId, others: &[(f64, f64)]) -> Option<(f64, f64)> {
    let placed = floorplan.find(block)?;
    let rect = placed.rect;
    let (cx, cy) = rect.center();
    if others.is_empty() {
        return Some((cx, cy));
    }
    let ox = others.iter().map(|p| p.0).sum::<f64>() / others.len() as f64;
    let oy = others.iter().map(|p| p.1).sum::<f64>() / others.len() as f64;
    let dx = ox - cx;
    let dy = oy - cy;
    let _ = circuit;
    Some(if dx.abs() > dy.abs() {
        if dx > 0.0 {
            (rect.x1, cy)
        } else {
            (rect.x0, cy)
        }
    } else if dy > 0.0 {
        (cx, rect.y1)
    } else {
        (cx, rect.y0)
    })
}

/// Builds the OARSMT of one net over a routing grid.
pub fn build_tree(net: NetId, terminals: &[(f64, f64)], grid: &RoutingGrid) -> SteinerTree {
    let mut tree = SteinerTree {
        net,
        terminals: terminals.to_vec(),
        segments: Vec::new(),
        complete: terminals.len() >= 2,
    };
    if terminals.len() < 2 {
        tree.complete = terminals.len() == 1;
        return tree;
    }
    // Map terminals to grid cells (escaping blocked cells).
    let cells: Vec<Option<RouteCell>> = terminals
        .iter()
        .map(|&(x, y)| grid.nearest_free_cell(x, y))
        .collect();
    let mut connected: Vec<RouteCell> = Vec::new();
    let mut remaining: Vec<(usize, RouteCell)> = Vec::new();
    for (i, c) in cells.iter().enumerate() {
        match c {
            Some(cell) if connected.is_empty() => connected.push(*cell),
            Some(cell) => remaining.push((i, *cell)),
            None => tree.complete = false,
        }
    }
    // Greedily attach the terminal whose shortest path to the tree is minimal.
    while !remaining.is_empty() {
        let mut best: Option<(usize, Vec<RouteCell>)> = None;
        for (pos, (_, target)) in remaining.iter().enumerate() {
            if let Some(path) = grid.shortest_path_from_set(&connected, *target) {
                if best.as_ref().map_or(true, |(_, b)| path.len() < b.len()) {
                    best = Some((pos, path));
                }
            }
        }
        match best {
            Some((pos, path)) => {
                // Convert the cell path into merged rectilinear segments.
                tree.segments.extend(path_to_segments(&path, grid));
                for cell in path {
                    if !connected.contains(&cell) {
                        connected.push(cell);
                    }
                }
                remaining.remove(pos);
            }
            None => {
                tree.complete = false;
                break;
            }
        }
    }
    // Dense packings can block nearly the whole routing grid: terminals then
    // escape to almost the same free cell and the maze paths collapse to a
    // couple of cells, or some terminal cannot be connected at all. Either
    // way the tree is not a usable global route, so fall back to direct
    // L-shaped connections along the terminals' Manhattan MST — modelling
    // over-the-block routing on upper metal layers.
    let mst = manhattan_mst(terminals);
    let mst_length: f64 = mst
        .iter()
        .map(|&(a, b)| manhattan(terminals[a], terminals[b]))
        .sum();
    if !tree.complete || tree.wirelength() + 1e-9 < 0.5 * mst_length {
        tree.segments.clear();
        for &(a, b) in &mst {
            tree.segments.extend(l_route(terminals[a], terminals[b]));
        }
        tree.complete = true;
    }
    tree
}

/// Manhattan distance between two points.
fn manhattan(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).abs() + (a.1 - b.1).abs()
}

/// Edges of the Manhattan-distance minimum spanning tree over `points`
/// (Prim's algorithm; the point sets here are tiny).
fn manhattan_mst(points: &[(f64, f64)]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_cost = vec![f64::INFINITY; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best_cost[i] = manhattan(points[0], points[i]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&i| !in_tree[i])
            .min_by(|&a, &b| best_cost[a].partial_cmp(&best_cost[b]).unwrap())
            .expect("an unconnected point remains");
        in_tree[next] = true;
        edges.push((best_parent[next], next));
        for i in 0..n {
            if !in_tree[i] {
                let d = manhattan(points[next], points[i]);
                if d < best_cost[i] {
                    best_cost[i] = d;
                    best_parent[i] = next;
                }
            }
        }
    }
    edges
}

/// Horizontal-then-vertical rectilinear connection between two points.
fn l_route(a: (f64, f64), b: (f64, f64)) -> Vec<Segment> {
    let corner = (b.0, a.1);
    let mut segments = Vec::with_capacity(2);
    let horizontal = Segment { from: a, to: corner };
    if horizontal.length() > 1e-12 {
        segments.push(horizontal);
    }
    let vertical = Segment { from: corner, to: b };
    if vertical.length() > 1e-12 {
        segments.push(vertical);
    }
    segments
}

/// Merges a cell path into maximal horizontal / vertical segments in µm.
fn path_to_segments(path: &[RouteCell], grid: &RoutingGrid) -> Vec<Segment> {
    if path.len() < 2 {
        return Vec::new();
    }
    let mut segments = Vec::new();
    let mut run_start = grid.cell_center(path[0]);
    let mut prev = grid.cell_center(path[0]);
    let mut direction: Option<bool> = None; // true = horizontal
    for &cell in &path[1..] {
        let point = grid.cell_center(cell);
        let horizontal = (point.1 - prev.1).abs() < 1e-9;
        match direction {
            Some(d) if d == horizontal => {}
            Some(_) => {
                segments.push(Segment {
                    from: run_start,
                    to: prev,
                });
                run_start = prev;
            }
            None => {}
        }
        direction = Some(horizontal);
        prev = point;
    }
    segments.push(Segment {
        from: run_start,
        to: prev,
    });
    segments.retain(|s| s.length() > 1e-12);
    segments
}

/// Global routing of a whole circuit: one OARSMT per net with ≥ 2 placed pins.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRouting {
    /// One tree per routed net.
    pub trees: Vec<SteinerTree>,
    /// Routing-grid resolution used.
    pub grid_resolution: usize,
}

impl GlobalRouting {
    /// Total routed wirelength in µm.
    pub fn total_wirelength(&self) -> f64 {
        self.trees.iter().map(SteinerTree::wirelength).sum()
    }

    /// Number of nets whose tree could not connect every pin.
    pub fn incomplete_nets(&self) -> usize {
        self.trees.iter().filter(|t| !t.complete).count()
    }
}

/// Routes every net of a floorplanned circuit.
pub fn global_route(circuit: &Circuit, floorplan: &Floorplan, resolution: usize) -> GlobalRouting {
    let grid = RoutingGrid::from_floorplan(floorplan, resolution, 0.15);
    let mut trees = Vec::new();
    for net in &circuit.nets {
        let blocks: Vec<BlockId> = net
            .blocks()
            .into_iter()
            .filter(|b| floorplan.is_placed(*b))
            .collect();
        if blocks.len() < 2 {
            continue;
        }
        let centers: Vec<(f64, f64)> = blocks
            .iter()
            .filter_map(|&b| floorplan.block_center(b))
            .collect();
        let terminals: Vec<(f64, f64)> = blocks
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| {
                let others: Vec<(f64, f64)> = centers
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, &p)| p)
                    .collect();
                pin_position(circuit, floorplan, b, &others)
            })
            .collect();
        trees.push(build_tree(net.id, &terminals, &grid));
    }
    GlobalRouting {
        trees,
        grid_resolution: resolution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{generators, Shape};
    use afp_layout::{Canvas, Cell};

    fn routed_ota() -> (Circuit, Floorplan, GlobalRouting) {
        let circuit = generators::ota3();
        let mut fp = Floorplan::new(Canvas::for_circuit(&circuit));
        let order = circuit.blocks_by_decreasing_area();
        let mut x = 0usize;
        for id in order {
            let area = circuit.block(id).unwrap().area_um2;
            let shape = Shape::from_area_and_aspect(area, 1.0);
            fp.place(id, 0, shape, Cell::new(x, 0)).unwrap();
            let (gw, _) = fp.grid_footprint(&shape);
            x += gw + 1;
        }
        let routing = global_route(&circuit, &fp, 48);
        (circuit, fp, routing)
    }

    #[test]
    fn every_multi_pin_net_gets_a_tree() {
        let (circuit, _, routing) = routed_ota();
        assert_eq!(routing.trees.len(), circuit.num_nets());
        assert_eq!(routing.incomplete_nets(), 0);
        assert!(routing.total_wirelength() > 0.0);
    }

    #[test]
    fn segments_are_rectilinear() {
        let (_, _, routing) = routed_ota();
        for tree in &routing.trees {
            for s in &tree.segments {
                let dx = (s.from.0 - s.to.0).abs();
                let dy = (s.from.1 - s.to.1).abs();
                assert!(dx < 1e-9 || dy < 1e-9, "segment is not axis-parallel");
            }
        }
    }

    #[test]
    fn tree_wirelength_at_least_hpwl_of_terminals() {
        let (_, _, routing) = routed_ota();
        for tree in &routing.trees {
            if tree.terminals.len() < 2 {
                continue;
            }
            let min_x = tree.terminals.iter().map(|p| p.0).fold(f64::MAX, f64::min);
            let max_x = tree.terminals.iter().map(|p| p.0).fold(f64::MIN, f64::max);
            let min_y = tree.terminals.iter().map(|p| p.1).fold(f64::MAX, f64::min);
            let max_y = tree.terminals.iter().map(|p| p.1).fold(f64::MIN, f64::max);
            let hpwl = (max_x - min_x) + (max_y - min_y);
            // Allow a one-grid-cell slack from terminal snapping.
            assert!(
                tree.wirelength() + 2.0 * 1.0 >= hpwl * 0.5,
                "tree shorter than half its HPWL"
            );
        }
    }

    #[test]
    fn trees_avoid_third_party_blocks() {
        // Two connected blocks on either side of an obstacle: the path must
        // not cross the obstacle interior.
        use afp_circuit::{BlockKind, NetClass};
        let circuit = Circuit::builder("detour")
            .block("A", BlockKind::CurrentMirror, 16.0, 2)
            .block("B", BlockKind::CurrentMirror, 16.0, 2)
            .block("OBS", BlockKind::CapacitorBank, 64.0, 2)
            .net("ab", &[("A", "d"), ("B", "d")], NetClass::Signal)
            .net("power", &[("OBS", "a"), ("A", "vdd")], NetClass::Power)
            .build()
            .unwrap();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(afp_circuit::BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 8)).unwrap();
        fp.place(afp_circuit::BlockId(2), 0, Shape::new(8.0, 8.0), Cell::new(8, 6)).unwrap();
        fp.place(afp_circuit::BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 8)).unwrap();
        let routing = global_route(&circuit, &fp, 64);
        let ab_tree = routing.trees.iter().find(|t| t.net == circuit.nets[0].id).unwrap();
        assert!(ab_tree.complete);
        let obstacle = fp.find(afp_circuit::BlockId(2)).unwrap().rect.inflated(-0.4);
        for s in &ab_tree.segments {
            let mid = ((s.from.0 + s.to.0) / 2.0, (s.from.1 + s.to.1) / 2.0);
            assert!(
                !obstacle.contains_point(mid.0, mid.1),
                "segment midpoint {mid:?} crosses the obstacle"
            );
        }
    }

    #[test]
    fn single_pin_nets_are_skipped() {
        let (circuit, fp, _) = routed_ota();
        // Route with only one block placed: no trees.
        let mut partial = Floorplan::new(*fp.canvas());
        let first = circuit.blocks_by_decreasing_area()[0];
        partial
            .place(first, 0, Shape::from_area_and_aspect(circuit.block(first).unwrap().area_um2, 1.0), Cell::new(0, 0))
            .unwrap();
        let routing = global_route(&circuit, &partial, 32);
        assert!(routing.trees.is_empty());
    }

    #[test]
    fn bend_count_counts_direction_changes() {
        let tree = SteinerTree {
            net: NetId(0),
            terminals: vec![(0.0, 0.0), (2.0, 2.0)],
            segments: vec![
                Segment { from: (0.0, 0.0), to: (2.0, 0.0) },
                Segment { from: (2.0, 0.0), to: (2.0, 2.0) },
            ],
            complete: true,
        };
        assert_eq!(tree.bend_count(), 1);
        assert_eq!(tree.wirelength(), 4.0);
    }
}

//! Conduits and routing channels.
//!
//! The global routing tree of each net is segmented into *conduits*: directed
//! runs on a specific metal layer that tell the procedural generator's
//! detailed router where to realize the connection (paper §IV-E: "The global
//! routing tree is segmented into conduits, detailing connections and layers,
//! guiding ANAGEN's router"). Channels are the free corridors between placed
//! blocks that the conduits occupy.

use afp_circuit::NetId;
use afp_layout::{Floorplan, Rect};

use crate::steiner::{GlobalRouting, Segment, SteinerTree};

/// Metal layer assigned to a conduit (simple HV layer scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Horizontal routing layer (e.g. Metal-2).
    Horizontal,
    /// Vertical routing layer (e.g. Metal-3).
    Vertical,
}

/// One conduit: a maximal straight run of a net on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Conduit {
    /// The net the conduit belongs to.
    pub net: NetId,
    /// Geometric segment in µm.
    pub segment: Segment,
    /// Assigned layer.
    pub layer: Layer,
    /// Wire width in µm.
    pub width_um: f64,
}

impl Conduit {
    /// Length of the conduit.
    pub fn length(&self) -> f64 {
        self.segment.length()
    }

    /// The rectangle covered by the conduit (segment inflated by half the wire
    /// width), used by spacing checks.
    pub fn footprint(&self) -> Rect {
        let half = self.width_um / 2.0;
        Rect::from_corners(
            self.segment.from.0.min(self.segment.to.0) - half,
            self.segment.from.1.min(self.segment.to.1) - half,
            self.segment.from.0.max(self.segment.to.0) + half,
            self.segment.from.1.max(self.segment.to.1) + half,
        )
    }
}

/// Segments one net tree into conduits with an HV layer assignment.
pub fn conduits_for_tree(tree: &SteinerTree, wire_width_um: f64) -> Vec<Conduit> {
    tree.segments
        .iter()
        .map(|&segment| Conduit {
            net: tree.net,
            segment,
            layer: if segment.is_horizontal() {
                Layer::Horizontal
            } else {
                Layer::Vertical
            },
            width_um: wire_width_um,
        })
        .collect()
}

/// Segments a whole global routing into conduits.
pub fn conduits_for_routing(routing: &GlobalRouting, wire_width_um: f64) -> Vec<Conduit> {
    routing
        .trees
        .iter()
        .flat_map(|t| conduits_for_tree(t, wire_width_um))
        .collect()
}

/// A routing channel: a free corridor between two adjacent placed blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// The corridor rectangle in µm.
    pub region: Rect,
    /// Whether the corridor runs horizontally (between vertically stacked
    /// blocks) or vertically.
    pub horizontal: bool,
    /// Number of conduits passing through the channel.
    pub occupancy: usize,
}

impl Channel {
    /// Available routing tracks in the channel for the given pitch.
    pub fn capacity(&self, pitch_um: f64) -> usize {
        let width = if self.horizontal {
            self.region.height()
        } else {
            self.region.width()
        };
        (width / pitch_um.max(1e-9)).floor() as usize
    }

    /// Whether more conduits pass through the channel than it has tracks.
    pub fn is_congested(&self, pitch_um: f64) -> bool {
        self.occupancy > self.capacity(pitch_um)
    }
}

/// Extracts the vertical and horizontal channels between adjacent blocks of a
/// floorplan and counts how many conduits run through each.
pub fn extract_channels(floorplan: &Floorplan, conduits: &[Conduit]) -> Vec<Channel> {
    let mut channels = Vec::new();
    let placed = floorplan.placed();
    for (i, a) in placed.iter().enumerate() {
        for b in placed.iter().skip(i + 1) {
            // Horizontal gap (blocks side by side with overlapping y ranges).
            let y_overlap = a.rect.y1.min(b.rect.y1) - a.rect.y0.max(b.rect.y0);
            let x_gap_lo = a.rect.x1.min(b.rect.x1);
            let x_gap_hi = a.rect.x0.max(b.rect.x0);
            if y_overlap > 0.0 && x_gap_hi > x_gap_lo {
                channels.push(Channel {
                    region: Rect::from_corners(
                        x_gap_lo,
                        a.rect.y0.max(b.rect.y0),
                        x_gap_hi,
                        a.rect.y1.min(b.rect.y1),
                    ),
                    horizontal: false,
                    occupancy: 0,
                });
            }
            // Vertical gap (blocks stacked with overlapping x ranges).
            let x_overlap = a.rect.x1.min(b.rect.x1) - a.rect.x0.max(b.rect.x0);
            let y_gap_lo = a.rect.y1.min(b.rect.y1);
            let y_gap_hi = a.rect.y0.max(b.rect.y0);
            if x_overlap > 0.0 && y_gap_hi > y_gap_lo {
                channels.push(Channel {
                    region: Rect::from_corners(
                        a.rect.x0.max(b.rect.x0),
                        y_gap_lo,
                        a.rect.x1.min(b.rect.x1),
                        y_gap_hi,
                    ),
                    horizontal: true,
                    occupancy: 0,
                });
            }
        }
    }
    // Count conduit occupancy.
    for channel in &mut channels {
        channel.occupancy = conduits
            .iter()
            .filter(|c| c.footprint().overlaps(&channel.region))
            .count();
    }
    channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{BlockId, Shape};
    use afp_layout::{Canvas, Cell, Floorplan};

    fn tree() -> SteinerTree {
        SteinerTree {
            net: NetId(0),
            terminals: vec![(0.0, 0.0), (4.0, 3.0)],
            segments: vec![
                Segment { from: (0.0, 0.0), to: (4.0, 0.0) },
                Segment { from: (4.0, 0.0), to: (4.0, 3.0) },
            ],
            complete: true,
        }
    }

    #[test]
    fn conduits_get_hv_layers() {
        let conduits = conduits_for_tree(&tree(), 0.4);
        assert_eq!(conduits.len(), 2);
        assert_eq!(conduits[0].layer, Layer::Horizontal);
        assert_eq!(conduits[1].layer, Layer::Vertical);
        assert!((conduits[0].length() - 4.0).abs() < 1e-9);
        assert!(conduits[0].footprint().height() - 0.4 < 1e-9);
    }

    #[test]
    fn channels_between_adjacent_blocks() {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(6.0, 6.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(6.0, 6.0), Cell::new(8, 0)).unwrap();
        let channels = extract_channels(&fp, &[]);
        assert_eq!(channels.len(), 1);
        assert!(!channels[0].horizontal);
        assert!((channels[0].region.width() - 2.0).abs() < 1e-9);
        assert_eq!(channels[0].capacity(0.5), 4);
    }

    #[test]
    fn channel_congestion_detected() {
        let channel = Channel {
            region: Rect::from_origin_size(0.0, 0.0, 1.0, 6.0),
            horizontal: false,
            occupancy: 5,
        };
        assert!(channel.is_congested(0.5));
        let relaxed = Channel {
            occupancy: 1,
            ..channel.clone()
        };
        assert!(!relaxed.is_congested(0.5));
    }

    #[test]
    fn occupancy_counts_crossing_conduits() {
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(6.0, 6.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(6.0, 6.0), Cell::new(8, 0)).unwrap();
        // A horizontal conduit crossing the gap between the two blocks.
        let conduit = Conduit {
            net: NetId(0),
            segment: Segment { from: (5.0, 3.0), to: (9.0, 3.0) },
            layer: Layer::Horizontal,
            width_um: 0.4,
        };
        let channels = extract_channels(&fp, &[conduit]);
        assert_eq!(channels[0].occupancy, 1);
    }
}

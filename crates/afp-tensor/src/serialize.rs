//! Saving and loading network parameters.
//!
//! A checkpoint is an ordered list of named tensors (a "state dict"). The
//! on-disk format is a small self-describing text format so that checkpoints
//! can be inspected and diffed without extra tooling, and so the crate stays
//! dependency-free.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::{Layer, Tensor};

/// An ordered collection of named parameter tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    entries: Vec<(String, Tensor)>,
}

impl StateDict {
    /// Creates an empty state dict.
    pub fn new() -> Self {
        StateDict {
            entries: Vec::new(),
        }
    }

    /// Extracts the parameters of a layer (in declaration order).
    pub fn from_layer<L: Layer + ?Sized>(layer: &L) -> Self {
        let entries = layer
            .params()
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("{}:{}", i, p.name), p.value.clone()))
            .collect();
        StateDict { entries }
    }

    /// Writes the parameters back into a layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of parameters or any shape differs.
    pub fn apply_to<L: Layer + ?Sized>(&self, layer: &mut L) -> Result<(), SerializeError> {
        let mut params = layer.params_mut();
        if params.len() != self.entries.len() {
            return Err(SerializeError::ParameterCountMismatch {
                expected: params.len(),
                found: self.entries.len(),
            });
        }
        for (p, (name, value)) in params.iter_mut().zip(self.entries.iter()) {
            if p.value.shape() != value.shape() {
                return Err(SerializeError::ShapeMismatch {
                    name: name.clone(),
                    expected: p.value.shape().to_vec(),
                    found: value.shape().to_vec(),
                });
            }
            p.value = value.clone();
        }
        Ok(())
    }

    /// Number of tensors stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no tensors are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// Adds a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        self.entries.push((name.into(), tensor));
    }

    /// Serializes the state dict to a writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writeln!(writer, "afp-state-dict v1 {}", self.entries.len())?;
        for (name, tensor) in &self.entries {
            let shape: Vec<String> = tensor.shape().iter().map(|d| d.to_string()).collect();
            writeln!(writer, "{} {}", name.replace(' ', "_"), shape.join(","))?;
            let values: Vec<String> = tensor.data().iter().map(|v| format!("{v:e}")).collect();
            writeln!(writer, "{}", values.join(" "))?;
        }
        Ok(())
    }

    /// Deserializes a state dict from a reader.
    ///
    /// # Errors
    ///
    /// Returns a [`SerializeError`] if the stream is not a valid checkpoint.
    pub fn load<R: Read>(reader: R) -> Result<Self, SerializeError> {
        let mut lines = BufReader::new(reader).lines();
        let header = lines
            .next()
            .ok_or(SerializeError::Malformed("empty stream"))?
            .map_err(SerializeError::Io)?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("afp-state-dict") || parts.next() != Some("v1") {
            return Err(SerializeError::Malformed("bad header"));
        }
        let count: usize = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or(SerializeError::Malformed("bad entry count"))?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let meta = lines
                .next()
                .ok_or(SerializeError::Malformed("missing tensor header"))?
                .map_err(SerializeError::Io)?;
            let mut meta_parts = meta.split_whitespace();
            let name = meta_parts
                .next()
                .ok_or(SerializeError::Malformed("missing tensor name"))?
                .to_string();
            let shape: Vec<usize> = meta_parts
                .next()
                .ok_or(SerializeError::Malformed("missing tensor shape"))?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.parse()
                        .map_err(|_| SerializeError::Malformed("bad shape value"))
                })
                .collect::<Result<_, _>>()?;
            let data_line = lines
                .next()
                .ok_or(SerializeError::Malformed("missing tensor data"))?
                .map_err(SerializeError::Io)?;
            let data: Vec<f32> = data_line
                .split_whitespace()
                .map(|s| {
                    s.parse()
                        .map_err(|_| SerializeError::Malformed("bad data value"))
                })
                .collect::<Result<_, _>>()?;
            let expected: usize = shape.iter().product();
            if data.len() != expected {
                return Err(SerializeError::Malformed("data length does not match shape"));
            }
            entries.push((name, Tensor::from_vec(data, &shape)));
        }
        Ok(StateDict { entries })
    }
}

/// Errors produced when saving or loading checkpoints.
#[derive(Debug)]
pub enum SerializeError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The stream is not a valid checkpoint.
    Malformed(&'static str),
    /// The checkpoint holds a different number of parameters than the network.
    ParameterCountMismatch {
        /// Parameters in the target network.
        expected: usize,
        /// Parameters found in the checkpoint.
        found: usize,
    },
    /// A tensor in the checkpoint has the wrong shape.
    ShapeMismatch {
        /// Parameter name.
        name: String,
        /// Shape expected by the network.
        expected: Vec<usize>,
        /// Shape found in the checkpoint.
        found: Vec<usize>,
    },
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            SerializeError::ParameterCountMismatch { expected, found } => write!(
                f,
                "parameter count mismatch: network has {expected}, checkpoint has {found}"
            ),
            SerializeError::ShapeMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch for {name}: expected {expected:?}, found {found:?}"
            ),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Dense, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, &mut rng));
        net.push(Activation::relu());
        net.push(Dense::new(4, 2, &mut rng));
        net
    }

    #[test]
    fn save_load_roundtrip() {
        let net = small_net(1);
        let dict = StateDict::from_layer(&net);
        let mut buf = Vec::new();
        dict.save(&mut buf).unwrap();
        let loaded = StateDict::load(buf.as_slice()).unwrap();
        assert_eq!(dict, loaded);
    }

    #[test]
    fn apply_transfers_weights() {
        let src = small_net(1);
        let mut dst = small_net(2);
        let x = Tensor::from_slice(&[0.2, -0.4, 0.9]);
        let y_src = {
            let mut s = small_net(1);
            s.forward(&x)
        };
        StateDict::from_layer(&src).apply_to(&mut dst).unwrap();
        let y_dst = dst.forward(&x);
        assert_eq!(y_src.data(), y_dst.data());
    }

    #[test]
    fn apply_rejects_wrong_architecture() {
        let src = small_net(1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut other = Sequential::new();
        other.push(Dense::new(3, 4, &mut rng));
        let err = StateDict::from_layer(&src).apply_to(&mut other);
        assert!(matches!(
            err,
            Err(SerializeError::ParameterCountMismatch { .. })
        ));
    }

    #[test]
    fn load_rejects_garbage() {
        let result = StateDict::load("not a checkpoint".as_bytes());
        assert!(result.is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = SerializeError::ParameterCountMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
    }
}

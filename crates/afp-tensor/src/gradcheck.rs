//! Finite-difference gradient checking utilities.
//!
//! These helpers are used by the test suites of every layer (dense,
//! convolution, transposed convolution, R-GCN) to verify that the manual
//! backward passes match a numerical derivative of a scalar probe loss.

use crate::{Layer, Tensor};

/// The scalar probe loss used by the gradient checker: a fixed weighted sum of
/// the outputs, `L = Σ_i w_i · y_i` with `w_i = sin(i + 1)`.
///
/// Using a non-uniform weighting exercises every output independently.
fn probe_loss(output: &Tensor) -> (f32, Tensor) {
    let weights: Vec<f32> = (0..output.len()).map(|i| ((i + 1) as f32).sin()).collect();
    let loss = output
        .data()
        .iter()
        .zip(weights.iter())
        .map(|(y, w)| y * w)
        .sum();
    (loss, Tensor::from_vec(weights, output.shape()))
}

/// Checks the parameter *and* input gradients of `layer` at `input` against
/// central finite differences and returns the maximum relative error observed.
///
/// The layer is left with modified cached activations; do not reuse it for
/// training afterwards within the same test without re-running `forward`.
pub fn check_layer_gradients<L: Layer + ?Sized>(layer: &mut L, input: &Tensor) -> f32 {
    let eps = 1e-2f32;
    // Analytic gradients.
    layer.zero_grad();
    let out = layer.forward(input);
    let (_, grad_out) = probe_loss(&out);
    let grad_in = layer.backward(&grad_out);
    let analytic_param_grads: Vec<Tensor> =
        layer.params().iter().map(|p| p.grad.clone()).collect();

    let mut max_err = 0.0f32;

    // Parameter gradients.
    let n_params = layer.params().len();
    for pi in 0..n_params {
        let n_el = layer.params()[pi].value.len();
        for j in 0..n_el {
            let orig = layer.params()[pi].value.data()[j];
            layer.params_mut()[pi].value.data_mut()[j] = orig + eps;
            let (lp, _) = probe_loss(&layer.forward(input));
            layer.params_mut()[pi].value.data_mut()[j] = orig - eps;
            let (lm, _) = probe_loss(&layer.forward(input));
            layer.params_mut()[pi].value.data_mut()[j] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_param_grads[pi].data()[j];
            max_err = max_err.max(relative_error(numeric, analytic));
        }
    }

    // Input gradients.
    let mut x = input.clone();
    for j in 0..x.len() {
        let orig = x.data()[j];
        x.data_mut()[j] = orig + eps;
        let (lp, _) = probe_loss(&layer.forward(&x));
        x.data_mut()[j] = orig - eps;
        let (lm, _) = probe_loss(&layer.forward(&x));
        x.data_mut()[j] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        max_err = max_err.max(relative_error(numeric, grad_in.data()[j]));
    }
    max_err
}

/// Relative error between a numerical and analytic derivative, with an
/// absolute floor so tiny gradients do not blow up the ratio.
pub fn relative_error(numeric: f32, analytic: f32) -> f32 {
    let denom = numeric.abs().max(analytic.abs()).max(1.0);
    (numeric - analytic).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_zero_for_equal() {
        assert_eq!(relative_error(1.5, 1.5), 0.0);
    }

    #[test]
    fn relative_error_scales() {
        assert!((relative_error(2.0, 1.0) - 0.5).abs() < 1e-6);
        // Small absolute difference on small values uses the floor of 1.0.
        assert!(relative_error(1e-4, 0.0) < 1e-3);
    }

    #[test]
    fn probe_loss_uses_all_outputs() {
        let y = Tensor::ones(&[4]);
        let (l, g) = probe_loss(&y);
        assert_eq!(g.len(), 4);
        assert!((l - g.sum()).abs() < 1e-6);
        // Weights are distinct.
        assert!(g.get(0) != g.get(1));
    }
}

//! Loss functions with analytic gradients.
//!
//! Each loss returns the scalar loss value together with the gradient of the
//! loss with respect to the prediction, ready to be fed into
//! [`crate::Layer::backward`].

use crate::Tensor;

/// Mean squared error between `prediction` and `target`.
///
/// Used for the R-GCN supervised pre-training task (predicting the floorplan
/// reward of a circuit graph, paper §IV-C) and for the PPO value-function loss.
///
/// Returns `(loss, d loss / d prediction)`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "mse shape mismatch");
    let n = prediction.len().max(1) as f32;
    let diff = prediction.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Huber (smooth-L1) loss, a more outlier-robust alternative to MSE used by
/// some value-function implementations.
///
/// Returns `(loss, d loss / d prediction)`.
pub fn huber(prediction: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(prediction.shape(), target.shape(), "huber shape mismatch");
    let n = prediction.len().max(1) as f32;
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(prediction.shape());
    for i in 0..prediction.len() {
        let d = prediction.data()[i] - target.data()[i];
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

/// Categorical cross-entropy with logits for a single sample.
///
/// `logits` is an unnormalized score vector and `target` the index of the true
/// class. Returns `(loss, d loss / d logits)` where the gradient is
/// `softmax(logits) - one_hot(target)`.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn cross_entropy_with_logits(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(target < logits.len(), "target index out of range");
    let log_probs = logits.log_softmax();
    let loss = -log_probs.get(target);
    let mut grad = log_probs.map(f32::exp);
    grad.data_mut()[target] -= 1.0;
    (loss, grad)
}

/// Entropy of a categorical distribution given by `logits`, together with the
/// gradient of the entropy with respect to the logits.
///
/// PPO adds an entropy bonus to the objective to encourage exploration; the
/// gradient returned here is `dH/d logits` so callers can scale it by the
/// entropy coefficient and *subtract* it from the loss gradient.
pub fn categorical_entropy(logits: &Tensor) -> (f32, Tensor) {
    let log_p = logits.log_softmax();
    let p = log_p.map(f32::exp);
    let entropy = -p
        .data()
        .iter()
        .zip(log_p.data().iter())
        .map(|(&pi, &lpi)| if pi > 0.0 { pi * lpi } else { 0.0 })
        .sum::<f32>();
    // dH/dz_j = -p_j * (log p_j + H)
    let grad = Tensor::from_vec(
        p.data()
            .iter()
            .zip(log_p.data().iter())
            .map(|(&pi, &lpi)| -pi * (lpi + entropy))
            .collect(),
        logits.shape(),
    );
    (entropy, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_equal_tensors() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.sum(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    fn huber_matches_mse_for_small_errors() {
        let p = Tensor::from_slice(&[0.1, -0.2]);
        let t = Tensor::from_slice(&[0.0, 0.0]);
        let (h, _) = huber(&p, &t, 1.0);
        let expected = (0.5 * 0.01 + 0.5 * 0.04) / 2.0;
        assert!((h - expected).abs() < 1e-6);
    }

    #[test]
    fn huber_linear_for_large_errors() {
        let p = Tensor::from_slice(&[10.0]);
        let t = Tensor::from_slice(&[0.0]);
        let (h, g) = huber(&p, &t, 1.0);
        assert!((h - 9.5).abs() < 1e-6);
        assert!((g.get(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero() {
        let logits = Tensor::from_slice(&[0.1, 1.2, -0.5, 0.7]);
        let (loss, grad) = cross_entropy_with_logits(&logits, 1);
        assert!(loss > 0.0);
        assert!(grad.sum().abs() < 1e-5);
        assert!(grad.get(1) < 0.0);
    }

    #[test]
    fn cross_entropy_confident_prediction_has_low_loss() {
        let logits = Tensor::from_slice(&[10.0, -10.0]);
        let (loss, _) = cross_entropy_with_logits(&logits, 0);
        assert!(loss < 1e-3);
    }

    #[test]
    fn entropy_is_max_for_uniform_logits() {
        let uniform = Tensor::from_slice(&[0.0, 0.0, 0.0, 0.0]);
        let peaked = Tensor::from_slice(&[10.0, 0.0, 0.0, 0.0]);
        let (hu, _) = categorical_entropy(&uniform);
        let (hp, _) = categorical_entropy(&peaked);
        assert!(hu > hp);
        assert!((hu - (4.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn entropy_gradient_finite_difference() {
        let logits = Tensor::from_slice(&[0.3, -0.6, 1.1]);
        let (_, grad) = categorical_entropy(&logits);
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let (hp, _) = categorical_entropy(&plus);
            let (hm, _) = categorical_entropy(&minus);
            let num = (hp - hm) / (2.0 * eps);
            assert!(
                (num - grad.get(i)).abs() < 1e-2,
                "entropy grad mismatch at {}: {} vs {}",
                i,
                num,
                grad.get(i)
            );
        }
    }
}

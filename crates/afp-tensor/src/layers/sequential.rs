//! Sequential container of layers.

use crate::{Layer, Param, Tensor};

/// A feed-forward stack of layers applied in order.
///
/// # Examples
///
/// ```
/// use afp_tensor::{layers::{Activation, Dense, Sequential}, Layer, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Activation::relu());
/// net.push(Dense::new(8, 1, &mut rng));
/// let y = net.forward(&Tensor::zeros(&[4]));
/// assert_eq!(y.shape(), &[1]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(f, "Sequential({:?})", names)
    }
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the stack.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer to the stack.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the container holds no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn name(&self) -> &str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::layers::{Activation, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        net.push(Dense::new(4, 6, rng));
        net.push(Activation::tanh());
        net.push(Dense::new(6, 3, rng));
        net
    }

    #[test]
    fn forward_produces_expected_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = mlp(&mut rng);
        let y = net.forward(&Tensor::from_slice(&[0.1, 0.2, -0.3, 0.4]));
        assert_eq!(y.shape(), &[3]);
        assert_eq!(net.len(), 3);
    }

    #[test]
    fn gradients_flow_through_stack() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = mlp(&mut rng);
        let input = Tensor::from_slice(&[0.5, -0.2, 0.1, 0.9]);
        let max_err = check_layer_gradients(&mut net, &input);
        assert!(max_err < 1e-2, "max gradient error {}", max_err);
    }

    #[test]
    fn params_collects_all_layers() {
        let mut rng = StdRng::seed_from_u64(0);
        let net = mlp(&mut rng);
        // Two dense layers → 4 parameter tensors.
        assert_eq!(net.params().len(), 4);
        assert_eq!(net.num_parameters(), 4 * 6 + 6 + 6 * 3 + 3);
    }
}

//! Flattening layer: `[C, H, W] → [C·H·W]`.

use crate::{Layer, Param, Tensor};

/// Flattens a multi-dimensional activation into a vector, remembering the
/// original shape for the backward pass.
///
/// Used between the CNN feature extractor and the dense state projection in
/// the RL agent (paper Fig. 4).
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        input.reshape(&[input.len()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Flatten::backward called before forward");
        grad_output.reshape(shape)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "Flatten"
    }
}

/// The inverse of [`Flatten`]: reshapes a vector into `[C, H, W]`.
///
/// Used at the head of the deconvolutional policy network to turn the
/// 512-dimensional projection into a `[32, 4, 4]` activation before upsampling.
#[derive(Debug)]
pub struct Reshape {
    target: Vec<usize>,
    cached_shape: Option<Vec<usize>>,
}

impl Reshape {
    /// Creates a reshape layer with the given target shape.
    pub fn new(target: &[usize]) -> Self {
        Reshape {
            target: target.to_vec(),
            cached_shape: None,
        }
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        input.reshape(&self.target)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Reshape::backward called before forward");
        grad_output.reshape(shape)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "Reshape"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[24]);
        let g = f.backward(&Tensor::ones(&[24]));
        assert_eq!(g.shape(), &[2, 3, 4]);
    }

    #[test]
    fn reshape_roundtrip() {
        let mut r = Reshape::new(&[4, 2, 2]);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[16]);
        let y = r.forward(&x);
        assert_eq!(y.shape(), &[4, 2, 2]);
        let g = r.backward(&y);
        assert_eq!(g.shape(), &[16]);
        assert_eq!(g.data(), x.data());
    }
}

//! 2-D transposed convolution ("deconvolution") over `[channels, height, width]`.

use rand::Rng;

use crate::{Init, Layer, Param, Tensor};

/// A 2-D transposed convolution layer.
///
/// The paper's deconvolutional policy network upsamples a 512-dimensional state
/// embedding back to the 32×32 action grid with three of these layers
/// (kernel 4×4, stride 2, padding 1), so that the agent can emit a joint
/// probability distribution over `(shape, grid cell)` actions.
///
/// The output spatial size for an input of size `n` is
/// `(n - 1) * stride - 2 * padding + kernel`, i.e. kernel 4 / stride 2 /
/// padding 1 exactly doubles the resolution.
///
/// # Examples
///
/// ```
/// use afp_tensor::{layers::ConvTranspose2d, Layer, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut deconv = ConvTranspose2d::new(8, 4, 4, 2, 1, &mut rng);
/// let y = deconv.forward(&Tensor::zeros(&[8, 4, 4]));
/// assert_eq!(y.shape(), &[4, 8, 8]);
/// ```
#[derive(Debug)]
pub struct ConvTranspose2d {
    weight: Param, // [in_c, out_c, kh, kw]
    bias: Param,   // [out_c]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl ConvTranspose2d {
    /// Creates a transposed convolution layer with Kaiming-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Init::KaimingUniform.sample(
            rng,
            &[in_channels, out_channels, kernel, kernel],
            fan_in,
            fan_out,
        );
        ConvTranspose2d {
            weight: Param::new("deconv.weight", weight),
            bias: Param::new("deconv.bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Spatial output size for a given input size.
    pub fn output_size(&self, input_size: usize) -> usize {
        (input_size - 1) * self.stride + self.kernel - 2 * self.padding
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for ConvTranspose2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.ndim(), 3, "ConvTranspose2d expects [C, H, W] input");
        assert_eq!(
            input.shape()[0],
            self.in_channels,
            "ConvTranspose2d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[0]
        );
        self.cached_input = Some(input.clone());
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let k = self.kernel;
        let x = input.data();
        let wgt = self.weight.value.data();
        let mut out = vec![0.0f32; self.out_channels * oh * ow];
        // Initialize with bias.
        for oc in 0..self.out_channels {
            let b = self.bias.value.get(oc);
            if b != 0.0 {
                for v in &mut out[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v = b;
                }
            }
        }
        for ic in 0..self.in_channels {
            for iy in 0..h {
                for ix in 0..w {
                    let xv = x[ic * h * w + iy * w + ix];
                    if xv == 0.0 {
                        continue;
                    }
                    for oc in 0..self.out_channels {
                        for ky in 0..k {
                            let oy = iy * self.stride + ky;
                            if oy < self.padding || oy - self.padding >= oh {
                                continue;
                            }
                            let oy = oy - self.padding;
                            for kx in 0..k {
                                let ox = ix * self.stride + kx;
                                if ox < self.padding || ox - self.padding >= ow {
                                    continue;
                                }
                                let ox = ox - self.padding;
                                let wv = wgt[((ic * self.out_channels + oc) * k + ky) * k + kx];
                                out[oc * oh * ow + oy * ow + ox] += xv * wv;
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[self.out_channels, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("ConvTranspose2d::backward called before forward")
            .clone();
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        assert_eq!(grad_output.shape(), &[self.out_channels, oh, ow]);
        let k = self.kernel;
        let x = input.data();
        let gy = grad_output.data();
        let wgt = self.weight.value.data();
        let mut gx = vec![0.0f32; self.in_channels * h * w];
        {
            let gw = self.weight.grad.data_mut();
            let gb = self.bias.grad.data_mut();
            for oc in 0..self.out_channels {
                for v in &gy[oc * oh * ow..(oc + 1) * oh * ow] {
                    gb[oc] += v;
                }
            }
            for ic in 0..self.in_channels {
                for iy in 0..h {
                    for ix in 0..w {
                        let xi = ic * h * w + iy * w + ix;
                        let xv = x[xi];
                        let mut gxi = 0.0f32;
                        for oc in 0..self.out_channels {
                            for ky in 0..k {
                                let oy = iy * self.stride + ky;
                                if oy < self.padding || oy - self.padding >= oh {
                                    continue;
                                }
                                let oy = oy - self.padding;
                                for kx in 0..k {
                                    let ox = ix * self.stride + kx;
                                    if ox < self.padding || ox - self.padding >= ow {
                                        continue;
                                    }
                                    let ox = ox - self.padding;
                                    let g = gy[oc * oh * ow + oy * ow + ox];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    let wi = ((ic * self.out_channels + oc) * k + ky) * k + kx;
                                    gw[wi] += g * xv;
                                    gxi += g * wgt[wi];
                                }
                            }
                        }
                        gx[xi] += gxi;
                    }
                }
            }
        }
        Tensor::from_vec(gx, &[self.in_channels, h, w])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        "ConvTranspose2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn doubles_spatial_resolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut deconv = ConvTranspose2d::new(4, 2, 4, 2, 1, &mut rng);
        let y = deconv.forward(&Tensor::zeros(&[4, 8, 8]));
        assert_eq!(y.shape(), &[2, 16, 16]);
    }

    #[test]
    fn three_stage_upsample_reaches_32() {
        // The paper's policy: 4×4 → 8×8 → 16×16 → 32×32.
        let mut rng = StdRng::seed_from_u64(0);
        let mut d1 = ConvTranspose2d::new(32, 32, 4, 2, 1, &mut rng);
        let mut d2 = ConvTranspose2d::new(32, 16, 4, 2, 1, &mut rng);
        let mut d3 = ConvTranspose2d::new(16, 8, 4, 2, 1, &mut rng);
        let y = d3.forward(&d2.forward(&d1.forward(&Tensor::zeros(&[32, 4, 4]))));
        assert_eq!(y.shape(), &[8, 32, 32]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut deconv = ConvTranspose2d::new(2, 2, 4, 2, 1, &mut rng);
        let input = Init::XavierUniform.sample(&mut rng, &[2, 3, 3], 18, 18);
        let max_err = check_layer_gradients(&mut deconv, &input);
        assert!(max_err < 2e-2, "max gradient error {}", max_err);
    }

    #[test]
    fn bias_fills_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut deconv = ConvTranspose2d::new(1, 1, 4, 2, 1, &mut rng);
        deconv.weight.value = Tensor::zeros(&[1, 1, 4, 4]);
        deconv.bias.value = Tensor::from_slice(&[0.7]);
        let y = deconv.forward(&Tensor::zeros(&[1, 2, 2]));
        assert!(y.data().iter().all(|&v| (v - 0.7).abs() < 1e-6));
    }
}

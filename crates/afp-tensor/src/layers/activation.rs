//! Element-wise activation layers: ReLU, Tanh and Sigmoid.

use crate::{Layer, Param, Tensor};

/// The kind of element-wise nonlinearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationKind {
    /// `max(0, x)` — used after every convolution and dense layer in the CNN
    /// feature extractor and the policy/value networks.
    Relu,
    /// Hyperbolic tangent — used in the R-GCN reward head.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

/// An element-wise activation layer (no learnable parameters).
///
/// # Examples
///
/// ```
/// use afp_tensor::{layers::Activation, Layer, Tensor};
///
/// let mut relu = Activation::relu();
/// let y = relu.forward(&Tensor::from_slice(&[-1.0, 2.0]));
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_input: None,
        }
    }

    /// Rectified linear unit.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// Hyperbolic tangent.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Logistic sigmoid.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    fn apply(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    fn derivative(&self, x: f32) -> f32 {
        match self.kind {
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            ActivationKind::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
        }
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|x| self.apply(x))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Activation::backward called before forward");
        input.zip(grad_output, |x, g| self.derivative(x) * g)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn name(&self) -> &str {
        match self.kind {
            ActivationKind::Relu => "ReLU",
            ActivationKind::Tanh => "Tanh",
            ActivationKind::Sigmoid => "Sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::relu();
        let y = a.forward(&Tensor::from_slice(&[-2.0, 0.0, 3.0]));
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
        let g = a.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_saturates() {
        let mut a = Activation::tanh();
        let y = a.forward(&Tensor::from_slice(&[100.0, -100.0]));
        assert!((y.get(0) - 1.0).abs() < 1e-6);
        assert!((y.get(1) + 1.0).abs() < 1e-6);
        let g = a.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert!(g.get(0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_midpoint() {
        let mut a = Activation::sigmoid();
        let y = a.forward(&Tensor::from_slice(&[0.0]));
        assert!((y.get(0) - 0.5).abs() < 1e-6);
        let g = a.backward(&Tensor::from_slice(&[1.0]));
        assert!((g.get(0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn no_parameters() {
        let a = Activation::relu();
        assert!(a.params().is_empty());
        assert_eq!(a.num_parameters(), 0);
    }
}

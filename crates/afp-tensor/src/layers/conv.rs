//! 2-D convolution over `[channels, height, width]` inputs.

use rand::Rng;

use crate::{Init, Layer, Param, Tensor};

/// A 2-D convolution layer.
///
/// The paper's CNN state feature extractor stacks five of these with a 3×3
/// kernel, stride 1 and padding 1 over the 6×32×32 mask tensor
/// (grid view, wire mask, dead-space mask and the three positional masks).
///
/// Input and output layout is `[channels, height, width]` (single sample).
///
/// # Examples
///
/// ```
/// use afp_tensor::{layers::Conv2d, Layer, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
/// let y = conv.forward(&Tensor::zeros(&[2, 8, 8]));
/// assert_eq!(y.shape(), &[4, 8, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param, // [out_c, in_c, kh, kw]
    bias: Param,   // [out_c]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Init::KaimingUniform.sample(
            rng,
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
        );
        Conv2d {
            weight: Param::new("conv2d.weight", weight),
            bias: Param::new("conv2d.bias", Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Spatial output size for a given input size.
    pub fn output_size(&self, input_size: usize) -> usize {
        (input_size + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn check_input(&self, input: &Tensor) {
        assert_eq!(input.ndim(), 3, "Conv2d expects [C, H, W] input");
        assert_eq!(
            input.shape()[0],
            self.in_channels,
            "Conv2d expects {} input channels, got {}",
            self.in_channels,
            input.shape()[0]
        );
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.check_input(input);
        self.cached_input = Some(input.clone());
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let k = self.kernel;
        let x = input.data();
        let wgt = self.weight.value.data();
        let mut out = vec![0.0f32; self.out_channels * oh * ow];
        for oc in 0..self.out_channels {
            let b = self.bias.value.get(oc);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    let iy0 = oy * self.stride;
                    let ix0 = ox * self.stride;
                    for ic in 0..self.in_channels {
                        for ky in 0..k {
                            let iy = iy0 + ky;
                            if iy < self.padding || iy - self.padding >= h {
                                continue;
                            }
                            let iy = iy - self.padding;
                            for kx in 0..k {
                                let ix = ix0 + kx;
                                if ix < self.padding || ix - self.padding >= w {
                                    continue;
                                }
                                let ix = ix - self.padding;
                                let xv = x[ic * h * w + iy * w + ix];
                                let wv = wgt[((oc * self.in_channels + ic) * k + ky) * k + kx];
                                acc += xv * wv;
                            }
                        }
                    }
                    out[oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
        Tensor::from_vec(out, &[self.out_channels, oh, ow])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Conv2d::backward called before forward")
            .clone();
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        assert_eq!(grad_output.shape(), &[self.out_channels, oh, ow]);
        let k = self.kernel;
        let x = input.data();
        let gy = grad_output.data();
        let wgt = self.weight.value.data();
        let mut gx = vec![0.0f32; self.in_channels * h * w];
        {
            let gw = self.weight.grad.data_mut();
            let gb = self.bias.grad.data_mut();
            for oc in 0..self.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gy[oc * oh * ow + oy * ow + ox];
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        let iy0 = oy * self.stride;
                        let ix0 = ox * self.stride;
                        for ic in 0..self.in_channels {
                            for ky in 0..k {
                                let iy = iy0 + ky;
                                if iy < self.padding || iy - self.padding >= h {
                                    continue;
                                }
                                let iy = iy - self.padding;
                                for kx in 0..k {
                                    let ix = ix0 + kx;
                                    if ix < self.padding || ix - self.padding >= w {
                                        continue;
                                    }
                                    let ix = ix - self.padding;
                                    let xi = ic * h * w + iy * w + ix;
                                    let wi = ((oc * self.in_channels + ic) * k + ky) * k + kx;
                                    gw[wi] += g * x[xi];
                                    gx[xi] += g * wgt[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(gx, &[self.in_channels, h, w])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_same_padding() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 5, 3, 1, 1, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[3, 16, 16]));
        assert_eq!(y.shape(), &[5, 16, 16]);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        // Build a delta kernel: only the centre tap is 1.
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.data_mut()[4] = 1.0;
        conv.weight.value = w;
        conv.bias.value = Tensor::zeros(&[1]);
        let input = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 4, 4]);
        let y = conv.forward(&input);
        assert_eq!(y.data(), input.data());
    }

    #[test]
    fn stride_two_halves_resolution() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 2, 4, 2, 1, &mut rng);
        let y = conv.forward(&Tensor::zeros(&[1, 8, 8]));
        assert_eq!(y.shape(), &[2, 4, 4]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let input = Init::XavierUniform.sample(&mut rng, &[2, 5, 5], 50, 75);
        let max_err = check_layer_gradients(&mut conv, &input);
        assert!(max_err < 2e-2, "max gradient error {}", max_err);
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn wrong_channel_count_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[3, 4, 4]));
    }
}

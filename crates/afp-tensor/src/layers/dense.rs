//! Fully connected (affine) layer.

use rand::Rng;

use crate::{Init, Layer, Param, Tensor};

/// A fully connected layer computing `y = W·x + b` on 1-D inputs.
///
/// Used throughout the paper's model: the MLP reward head on top of the R-GCN,
/// the 512-dimensional state projection after the CNN feature extractor, the
/// value network and the policy input projection.
///
/// # Examples
///
/// ```
/// use afp_tensor::{layers::Dense, Layer, Tensor};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut dense = Dense::new(4, 2, &mut rng);
/// let y = dense.forward(&Tensor::from_slice(&[1.0, 0.0, -1.0, 0.5]));
/// assert_eq!(y.shape(), &[2]);
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights and zero biases.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        Self::with_init(in_features, out_features, Init::KaimingUniform, rng)
    }

    /// Creates a dense layer with an explicit weight initialization scheme.
    pub fn with_init<R: Rng + ?Sized>(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut R,
    ) -> Self {
        let weight = init.sample(rng, &[out_features, in_features], in_features, out_features);
        Dense {
            weight: Param::new("dense.weight", weight),
            bias: Param::new("dense.bias", Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.len(),
            self.in_features,
            "Dense: expected input of length {}, got {:?}",
            self.in_features,
            input.shape()
        );
        self.cached_input = Some(input.clone());
        let mut out = vec![0.0f32; self.out_features];
        let w = self.weight.value.data();
        let x = input.data();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = self.bias.value.get(o);
            for (wi, xi) in row.iter().zip(x.iter()) {
                acc += wi * xi;
            }
            *out_v = acc;
        }
        Tensor::from_vec(out, &[self.out_features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        assert_eq!(grad_output.len(), self.out_features);
        let x = input.data();
        let gy = grad_output.data();
        // dW[o, i] += gy[o] * x[i]; db[o] += gy[o]
        {
            let gw = self.weight.grad.data_mut();
            for (o, &g) in gy.iter().enumerate() {
                if g == 0.0 {
                    continue;
                }
                let row = &mut gw[o * self.in_features..(o + 1) * self.in_features];
                for (gwi, &xi) in row.iter_mut().zip(x.iter()) {
                    *gwi += g * xi;
                }
            }
            let gb = self.bias.grad.data_mut();
            for (o, &g) in gy.iter().enumerate() {
                gb[o] += g;
            }
        }
        // gx[i] = sum_o W[o, i] * gy[o]
        let w = self.weight.value.data();
        let mut gx = vec![0.0f32; self.in_features];
        for (o, &g) in gy.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &w[o * self.in_features..(o + 1) * self.in_features];
            for (gxi, &wi) in gx.iter_mut().zip(row.iter()) {
                *gxi += wi * g;
            }
        }
        Tensor::from_vec(gx, &[self.in_features])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, &mut rng);
        // Overwrite with known weights.
        layer.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        layer.bias.value = Tensor::from_slice(&[0.5, -0.5]);
        let y = layer.forward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut layer = Dense::new(5, 3, &mut rng);
        let input = Tensor::from_slice(&[0.3, -0.7, 1.2, 0.0, -0.1]);
        let max_err = check_layer_gradients(&mut layer, &input);
        assert!(max_err < 1e-2, "max gradient error {}", max_err);
    }

    #[test]
    #[should_panic(expected = "expected input of length")]
    fn wrong_input_size_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        let _ = layer.forward(&Tensor::from_slice(&[1.0]));
    }
}

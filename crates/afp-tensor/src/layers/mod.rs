//! Neural-network layers used across the floorplanning models.
//!
//! All layers operate on single samples (no batch dimension); minibatches are
//! handled by looping `forward` / `backward` and relying on gradient
//! accumulation inside [`crate::Param`].

mod activation;
mod conv;
mod deconv;
mod dense;
mod flatten;
mod sequential;

pub use activation::{Activation, ActivationKind};
pub use conv::Conv2d;
pub use deconv::ConvTranspose2d;
pub use dense::Dense;
pub use flatten::{Flatten, Reshape};
pub use sequential::Sequential;

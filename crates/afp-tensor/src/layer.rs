//! The [`Layer`] trait: per-sample forward / backward with cached activations.
//!
//! Rather than a general-purpose autodiff tape, every building block of the
//! paper's networks implements an explicit `forward` / `backward` pair. The
//! backward pass accumulates parameter gradients in place (so a minibatch is
//! simply a loop of `forward` + `backward` per sample followed by one optimizer
//! step) and returns the gradient with respect to the layer input so that
//! layers compose.

use crate::{Param, Tensor};

/// A differentiable computation with learnable parameters.
///
/// # Contract
///
/// * `forward` must be called before `backward`; the layer caches whatever it
///   needs from the most recent forward pass.
/// * `backward` accumulates parameter gradients (it does **not** overwrite
///   them) and returns `dL/d input`.
/// * `zero_grad` clears all accumulated parameter gradients.
pub trait Layer: Send {
    /// Runs the layer on `input`, caching activations needed for `backward`.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Propagates `grad_output = dL/d output` backwards, accumulating parameter
    /// gradients and returning `dL/d input`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `forward` has not been called.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable access to the learnable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to the learnable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// A short human-readable layer name for diagnostics.
    fn name(&self) -> &str;

    /// Clears all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of learnable scalars.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.num_elements()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn num_parameters_counts_weights_and_biases() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::new(3, 2, &mut rng);
        // 3*2 weights + 2 biases
        assert_eq!(layer.num_parameters(), 8);
    }

    #[test]
    fn zero_grad_resets_all_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_slice(&[1.0, -1.0]);
        let y = layer.forward(&x);
        let g = Tensor::ones(y.shape());
        layer.backward(&g);
        assert!(layer.params().iter().any(|p| p.grad.norm() > 0.0));
        layer.zero_grad();
        assert!(layer.params().iter().all(|p| p.grad.norm() == 0.0));
    }
}

//! Dense, row-major, `f32` tensors.
//!
//! [`Tensor`] is the numeric workhorse of the whole workspace: the R-GCN
//! encoder, the CNN feature extractor, the deconvolutional policy head and the
//! PPO losses are all expressed in terms of the operations defined here.
//!
//! The implementation is deliberately simple — a flat `Vec<f32>` plus a shape
//! vector — because the networks used by the paper are small (32×32 grids,
//! 32-dimensional embeddings) and clarity matters more than peak FLOPs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Block size of the matmul k-loop: 64 × 64 `f32` ≈ 16 KiB of the right-hand
/// operand per slab, comfortably inside L1/L2 for the matrix sizes the
/// networks use.
const MATMUL_BLOCK: usize = 64;

/// The matmul inner kernel: `out += alpha * xs`, element-wise over equal-length
/// rows. Kept as a named `#[inline]` function so the compiler vectorizes one
/// obvious loop instead of re-deriving it per call site.
#[inline]
fn axpy(alpha: f32, xs: &[f32], out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(xs.iter()) {
        *o += alpha * x;
    }
}

/// A dense, row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use afp_tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), a.data());
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(f, ", data=[{} elements]", self.data.len())?;
        }
        write!(f, ")")
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use afp_tensor::Tensor;
    /// let t = Tensor::zeros(&[2, 3]);
    /// assert_eq!(t.len(), 6);
    /// assert!(t.data().iter().all(|&x| x == 0.0));
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates an identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Builds a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Builds a 2-D tensor from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Tensor::zeros(&[0, 0]);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Borrow the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape (same number of elements).
    ///
    /// # Panics
    ///
    /// Panics if the number of elements differs.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape to incompatible size");
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Scalar access for a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of bounds.
    pub fn at(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.ndim(), 2, "at() requires a 2-D tensor");
        self.data[i * self.shape[1] + j]
    }

    /// Mutable scalar access for a 2-D tensor.
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        assert_eq!(self.ndim(), 2, "at_mut() requires a 2-D tensor");
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Scalar access for a 1-D tensor.
    pub fn get(&self, i: usize) -> f32 {
        self.data[i]
    }

    /// Element-wise application of a function, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place element-wise application of a function.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary operation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place accumulate: `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled_inplace");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.len(), other.len(), "length mismatch in dot");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Matrix multiplication of two 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Uses i-k-j loop ordering (the inner loop streams a row of `other`
    /// and a row of the output, both contiguous) with blocking over the
    /// shared dimension so the active `MATMUL_BLOCK × n` slab of `other`
    /// stays cache-resident across output rows. Zero entries of `self` skip
    /// their row entirely — the R-GCN adjacency operands are sparse.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {} vs {}", k, k2);
        let mut out = vec![0.0f32; m * n];
        for kb in (0..k).step_by(MATMUL_BLOCK) {
            let kb_end = (kb + MATMUL_BLOCK).min(k);
            for i in 0..m {
                let a_row = &self.data[i * k + kb..i * k + kb_end];
                let o_row = &mut out[i * n..(i + 1) * n];
                for (p, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[(kb + p) * n..(kb + p + 1) * n];
                    axpy(a, b_row, o_row);
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Row `i` of a 2-D tensor as a new 1-D tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let n = self.shape[1];
        Tensor::from_slice(&self.data[i * n..(i + 1) * n])
    }

    /// Mean over rows of a 2-D tensor, producing a 1-D tensor of length `cols`.
    pub fn mean_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "mean_rows() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            for j in 0..n {
                out[j] += self.data[i * n + j];
            }
        }
        if m > 0 {
            for v in &mut out {
                *v /= m as f32;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Concatenates 1-D tensors into a single 1-D tensor.
    pub fn concat(parts: &[&Tensor]) -> Tensor {
        let mut data = Vec::new();
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }

    /// Stacks equally shaped tensors along a new leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes differ.
    pub fn stack(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let shape = parts[0].shape.clone();
        let mut data = Vec::with_capacity(parts.len() * parts[0].len());
        for p in parts {
            assert_eq!(p.shape, shape, "stack shape mismatch");
            data.extend_from_slice(&p.data);
        }
        let mut new_shape = vec![parts.len()];
        new_shape.extend_from_slice(&shape);
        Tensor::from_vec(data, &new_shape)
    }

    /// Numerically stable softmax over a flat vector.
    pub fn softmax(&self) -> Tensor {
        let m = self.max();
        let exps: Vec<f32> = self.data.iter().map(|&x| (x - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        Tensor {
            shape: self.shape.clone(),
            data: exps.iter().map(|&e| e / s.max(1e-12)).collect(),
        }
    }

    /// Numerically stable log-softmax over a flat vector.
    pub fn log_softmax(&self) -> Tensor {
        let m = self.max();
        let log_sum: f32 = self
            .data
            .iter()
            .map(|&x| (x - m).exp())
            .sum::<f32>()
            .ln()
            + m;
        self.map(|x| x - log_sum)
    }

    /// Index of the maximum element.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.max(lo).min(hi))
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 2.5);
        assert_eq!(f.sum(), 10.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        let c = a.matmul(&i);
        assert_eq!(c.data(), a.data());
        assert_eq!(c.shape(), &[2, 3]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    /// Reference matmul in the textbook i-j-p ordering (the pre-blocking
    /// implementation's semantics), used to pin down the blocked version.
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(i, p) * b.at(p, j);
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    #[test]
    fn blocked_matmul_matches_reference_ordering() {
        // Sizes straddling the block boundary, including sparse inputs.
        let mut state = 0x1234_5678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / u32::MAX as f32) - 0.25
        };
        for &(m, k, n) in &[(3, 5, 4), (17, 64, 9), (8, 65, 130), (1, 200, 1)] {
            let a = Tensor::from_vec(
                (0..m * k).map(|i| if i % 7 == 0 { 0.0 } else { next() }).collect(),
                &[m, k],
            );
            let b = Tensor::from_vec((0..k * n).map(|_| next()).collect(), &[k, n]);
            let fast = a.matmul(&b);
            let reference = matmul_reference(&a, &b);
            for (x, y) in fast.data().iter().zip(reference.data().iter()) {
                assert!(
                    (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                    "blocked matmul diverged: {x} vs {y} ({m}x{k}x{n})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn softmax_sums_to_one() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let s = a.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-5);
        assert_eq!(s.argmax(), 3);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let a = Tensor::from_slice(&[0.5, -1.0, 2.0]);
        let ls = a.log_softmax();
        let s = a.softmax();
        for i in 0..3 {
            assert!((ls.get(i).exp() - s.get(i)).abs() < 1e-5);
        }
    }

    #[test]
    fn mean_rows_basic() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let m = a.mean_rows();
        assert_eq!(m.data(), &[2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let b = a.reshape(&[2, 2]);
        assert_eq!(b.at(1, 0), 3.0);
    }

    #[test]
    fn stack_and_row() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.row(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn clamp_limits() {
        let a = Tensor::from_slice(&[-2.0, 0.5, 3.0]);
        let c = a.clamp(-1.0, 1.0);
        assert_eq!(c.data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn add_scaled_inplace_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }
}

//! # afp-tensor — neural-network substrate for the analog floorplanning stack
//!
//! The paper *Effective Analog ICs Floorplanning with Relational Graph Neural
//! Networks and Reinforcement Learning* (Basso et al., DATE 2025) builds its
//! models on DGL and Stable-Baselines3. Neither library exists in Rust, so this
//! crate provides the minimal — but fully tested — machinery the rest of the
//! workspace needs:
//!
//! * a dense row-major [`Tensor`] type with the linear-algebra operations used
//!   by the models (matmul, softmax, reductions, …),
//! * [`layers`]: dense, 2-D convolution, 2-D transposed convolution,
//!   activations, flatten/reshape and a [`layers::Sequential`] container, all
//!   implementing the explicit-backprop [`Layer`] trait,
//! * [`optim`]: SGD and Adam with gradient clipping,
//! * [`loss`]: MSE / Huber regression losses, categorical cross-entropy and
//!   entropy with analytic gradients (the pieces PPO needs),
//! * [`serialize`]: a small text checkpoint format for transfer learning
//!   (pre-trained R-GCN encoder → RL agent, zero-/few-shot fine-tuning),
//! * [`gradcheck`]: finite-difference gradient checking used across test
//!   suites.
//!
//! # Examples
//!
//! Train a tiny regression network:
//!
//! ```
//! use afp_tensor::{layers::{Activation, Dense, Sequential}, loss::mse, optim::Adam, Layer, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = Sequential::new();
//! net.push(Dense::new(1, 8, &mut rng));
//! net.push(Activation::tanh());
//! net.push(Dense::new(8, 1, &mut rng));
//! let mut opt = Adam::new(0.01);
//!
//! for _ in 0..50 {
//!     net.zero_grad();
//!     for i in 0..8 {
//!         let x = i as f32 / 8.0;
//!         let pred = net.forward(&Tensor::from_slice(&[x]));
//!         let (_, grad) = mse(&pred, &Tensor::from_slice(&[2.0 * x]));
//!         net.backward(&grad);
//!     }
//!     opt.step(&mut net.params_mut());
//! }
//! let out = net.forward(&Tensor::from_slice(&[0.5]));
//! assert!(out.get(0).is_finite());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod init;
mod layer;
mod param;
mod tensor;

pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod serialize;

pub use init::Init;
pub use layer::Layer;
pub use param::Param;
pub use serialize::{SerializeError, StateDict};
pub use tensor::Tensor;

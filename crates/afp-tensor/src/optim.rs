//! First-order optimizers: SGD (with momentum) and Adam.
//!
//! Optimizers operate on the parameter list returned by
//! [`crate::Layer::params_mut`]; per-parameter state (momentum / Adam moments)
//! is kept positionally, so the same layer structure must be passed on every
//! step — which is always the case for a fixed network.

use crate::{Param, Tensor};

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`; `0.0` disables momentum.
    pub momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to the given parameters, consuming their
    /// accumulated gradients (the gradients are left untouched; call
    /// `zero_grad` afterwards).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                for (vj, gj) in v.data_mut().iter_mut().zip(p.grad.data().iter()) {
                    *vj = self.momentum * *vj + gj;
                }
                let v = self.velocity[i].clone();
                p.value.add_scaled_inplace(&v, -self.learning_rate);
            } else {
                let g = p.grad.clone();
                p.value.add_scaled_inplace(&g, -self.learning_rate);
            }
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015), as used by Stable-Baselines3's PPO
/// implementation that the paper builds on.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper / SB3 default: `3e-4`).
    pub learning_rate: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub epsilon: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard `beta` defaults.
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of update steps applied so far.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update to the given parameters.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
        self.step_count += 1;
        let t = self.step_count as f32;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (i, p) in params.iter_mut().enumerate() {
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let g = p.grad.data();
            let w = p.value.data_mut();
            for j in 0..g.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * g[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * g[j] * g[j];
                let m_hat = m[j] / bias1;
                let v_hat = v[j] / bias2;
                w[j] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

/// Clips the global L2 norm of the gradients to `max_norm`, returning the
/// pre-clip norm. Matches SB3's `max_grad_norm` behaviour for PPO.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.map_inplace(|g| g * scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::{Layer, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x + 1 with a single dense unit and checks convergence.
    fn train_linear(optimizer: &mut dyn FnMut(&mut [&mut Param])) -> f32 {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Dense::new(1, 1, &mut rng);
        let data: Vec<(f32, f32)> = (0..20).map(|i| (i as f32 / 10.0, 2.0 * i as f32 / 10.0 + 1.0)).collect();
        let mut loss = f32::MAX;
        for _ in 0..400 {
            loss = 0.0;
            layer.zero_grad();
            for &(x, y) in &data {
                let pred = layer.forward(&Tensor::from_slice(&[x]));
                let err = pred.get(0) - y;
                loss += err * err;
                layer.backward(&Tensor::from_slice(&[2.0 * err / data.len() as f32]));
            }
            loss /= data.len() as f32;
            let mut params = layer.params_mut();
            optimizer(&mut params);
        }
        loss
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut opt = Sgd::new(0.1, 0.0);
        let loss = train_linear(&mut |p| opt.step(p));
        assert!(loss < 1e-3, "SGD final loss {}", loss);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd::new(0.05, 0.9);
        let loss = train_linear(&mut |p| opt.step(p));
        assert!(loss < 1e-3, "momentum SGD final loss {}", loss);
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut opt = Adam::new(0.1);
        let loss = train_linear(&mut |p| opt.step(p));
        assert!(loss < 1e-2, "Adam final loss {}", loss);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p = Param::new("w", Tensor::zeros(&[3]));
        p.grad = Tensor::from_slice(&[3.0, 4.0, 0.0]); // norm 5
        let mut params = [&mut p];
        let norm = clip_grad_norm(&mut params, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((params[0].grad.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut p = Param::new("w", Tensor::zeros(&[2]));
        p.grad = Tensor::from_slice(&[0.1, 0.1]);
        let before = p.grad.clone();
        let mut params = [&mut p];
        clip_grad_norm(&mut params, 10.0);
        assert_eq!(params[0].grad, before);
    }
}

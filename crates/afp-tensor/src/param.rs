//! Learnable parameters: a value tensor paired with its gradient accumulator.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// A learnable parameter of a layer.
///
/// The gradient is accumulated across [`crate::layer::Layer::backward`] calls
/// until it is explicitly cleared (see [`Param::zero_grad`]), which makes it
/// easy to sum gradients over a minibatch by looping per-sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Human-readable parameter name, used in diagnostics and serialization.
    pub name: String,
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient of the loss with respect to `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }

    /// Number of scalar values held by this parameter.
    pub fn num_elements(&self) -> usize {
        self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new("w", Tensor::ones(&[2, 2]));
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.num_elements(), 4);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("b", Tensor::ones(&[3]));
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}

//! Weight initialization schemes.
//!
//! The paper's networks (R-GCN layers, CNN feature extractor, deconvolutional
//! policy head, MLP heads) are initialized with the standard Glorot/Xavier and
//! He/Kaiming uniform schemes used by DGL and Stable-Baselines3.

use rand::Rng;

use crate::Tensor;

/// Weight initialization scheme for a layer parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`, suited to ReLU.
    KaimingUniform,
    /// Orthogonal-ish initialization approximated by scaled Xavier; used for
    /// policy output layers where small initial logits help exploration.
    ScaledXavier(f32),
}

impl Init {
    /// Samples a tensor of the given shape with the given fan-in / fan-out.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
    ) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = match self {
            Init::Zeros => vec![0.0; n],
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::KaimingUniform => {
                let a = (6.0 / fan_in.max(1) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::ScaledXavier(scale) => {
                let a = scale * (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                if a == 0.0 {
                    vec![0.0; n]
                } else {
                    (0..n).map(|_| rng.gen_range(-a..=a)).collect()
                }
            }
        };
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init_is_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = Init::Zeros.sample(&mut rng, &[3, 3], 3, 3);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 16;
        let fan_out = 16;
        let a = (6.0 / 32.0f32).sqrt();
        let t = Init::XavierUniform.sample(&mut rng, &[fan_in, fan_out], fan_in, fan_out);
        assert!(t.max() <= a + 1e-6);
        assert!(t.min() >= -a - 1e-6);
        // Should not be degenerate.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn kaiming_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Init::KaimingUniform.sample(&mut rng, &[8, 4], 4, 8);
        let a = (6.0 / 4.0f32).sqrt();
        assert!(t.max() <= a + 1e-6);
        assert!(t.min() >= -a - 1e-6);
    }

    #[test]
    fn scaled_xavier_is_smaller() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Init::ScaledXavier(0.01).sample(&mut rng, &[64, 64], 64, 64);
        assert!(t.max().abs() < 0.01);
    }
}

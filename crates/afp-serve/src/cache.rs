//! Content-addressed result cache and the shareable [`CacheHandle`].
//!
//! Maps [`Fingerprint`]s to solved [`BaselineResult`]s. Because equal
//! fingerprints imply bit-identical solves (the canonicalization contract of
//! [`crate::fingerprint`]), a hit can be returned verbatim in place of a
//! re-solve. Alongside each result the cache stores the winning sequence-pair
//! [`Candidate`] (when the solver exposes one) keyed by the spec's topology
//! fingerprint, so a *near*-identical request — same circuit graph, perturbed
//! sizings or solver knobs — can be seeded from a cached winner's layout
//! instead of a random start ([`ResultCache::warm_hint`]).
//!
//! The warm-start index is **K-deep**: each topology key retains the
//! [`warm_depth`](ResultCache::warm_depth) most recently inserted exact
//! fingerprints (most recent first), and an eviction removes only the evicted
//! entry from its topology's list — the other K−1 keep serving hints. At
//! `warm_depth == 1` the index degenerates to the single most-recent slot the
//! layer originally shipped with ([`ResultCache::new`]).
//!
//! The cache is bounded: inserting into a full cache evicts the
//! least-recently-used entry (recency is a logical tick bumped on every get
//! and insert, so the policy is deterministic — no wall clock involved).
//!
//! [`CacheHandle`] wraps the cache in an `Arc<Mutex<…>>` so several
//! [`JobEngine`](crate::engine::JobEngine)s (and a
//! [`ServeDaemon`](crate::daemon::ServeDaemon)'s drain thread) memoize into
//! one store. Unlike [`afp_par::PoolHandle`], whose dispatch holds its lock
//! for a whole batch and therefore needs a `try_lock` + inline-fallback
//! discipline, every cache operation is microseconds and never calls back
//! into user code, so a plain blocking lock cannot deadlock and keeps the
//! counters exact.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

use afp_metaheuristics::{BaselineResult, Candidate};

use crate::fingerprint::Fingerprint;
use crate::persist::{self, PersistError};

/// Default depth of the per-topology warm-start index
/// ([`ServeConfig::warm_depth`](crate::engine::ServeConfig::warm_depth)).
pub const DEFAULT_WARM_DEPTH: usize = 4;

/// A memoized solve: the result plus the winning candidate (if the solver
/// exposes one) for warm-starting same-topology requests.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The solve result, returned verbatim on an exact fingerprint hit.
    pub result: BaselineResult,
    /// The winning candidate, used to warm-start same-topology requests.
    pub best: Option<Candidate>,
}

/// Hit/miss/eviction counters, monotone over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-fingerprint lookups that found a memoized result.
    pub hits: u64,
    /// Exact-fingerprint lookups that found nothing.
    pub misses: u64,
    /// Warm-start hints served to near-identical (same-topology) requests.
    pub warm_seeds: u64,
    /// Entries inserted (restores from a snapshot count here too).
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    solve: CachedSolve,
    topology: Fingerprint,
    last_used: u64,
}

/// Bounded, LRU-evicting, content-addressed store of solve results.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<Fingerprint, Entry>,
    /// The K most recently inserted exact fingerprints per topology
    /// fingerprint, most recent first — the warm-start index.
    by_topology: HashMap<Fingerprint, Vec<Fingerprint>>,
    capacity: usize,
    warm_depth: usize,
    tick: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1) with a
    /// single-slot warm-start index — the exact behavior the serve layer
    /// originally shipped with. Use [`ResultCache::with_warm_depth`] for a
    /// deeper index.
    pub fn new(capacity: usize) -> Self {
        ResultCache::with_warm_depth(capacity, 1)
    }

    /// Creates a cache holding at most `capacity` entries (minimum 1) whose
    /// warm-start index keeps the `warm_depth` (minimum 1) most recent
    /// entries per topology key.
    pub fn with_warm_depth(capacity: usize, warm_depth: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            by_topology: HashMap::new(),
            capacity: capacity.max(1),
            warm_depth: warm_depth.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Warm-start entries retained per topology key.
    pub fn warm_depth(&self) -> usize {
        self.warm_depth
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up an exact fingerprint, counting a hit or miss and refreshing
    /// the entry's recency.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<&CachedSolve> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(&entry.solve)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Exact lookup without touching recency or counters (for inspection).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<&CachedSolve> {
        self.entries.get(&fingerprint).map(|e| &e.solve)
    }

    /// The cached winner for the most recent surviving entry with this
    /// topology fingerprint, if any — a warm-start seed for a near-identical
    /// request. Walks the topology's index most-recent-first and returns the
    /// first entry that exposes a candidate. Counts a `warm_seeds` stat when
    /// it returns one.
    pub fn warm_hint(&mut self, topology: Fingerprint) -> Option<Candidate> {
        let index = self.by_topology.get(&topology)?;
        let best = index.iter().find_map(|exact| {
            self.entries
                .get(exact)
                .and_then(|entry| entry.solve.best.clone())
        });
        if best.is_some() {
            self.stats.warm_seeds += 1;
        }
        best
    }

    /// Inserts (or replaces) the solve for a fingerprint, evicting the
    /// least-recently-used entry if the cache is full, and promotes the
    /// fingerprint to the front of its topology's warm-start index.
    pub fn insert(&mut self, fingerprint: Fingerprint, topology: Fingerprint, solve: CachedSolve) {
        self.tick += 1;
        if let Some(existing) = self.entries.get(&fingerprint) {
            // Replacement: if the caller re-keys the fingerprint to a new
            // topology (cannot happen for fingerprints derived from one
            // JobSpec, but the API allows it), drop the stale index entry so
            // the old topology can never serve this fingerprint's winner.
            if existing.topology != topology {
                let stale = existing.topology;
                self.unindex(stale, fingerprint);
            }
        } else if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            fingerprint,
            Entry {
                solve,
                topology,
                last_used: self.tick,
            },
        );
        let index = self.by_topology.entry(topology).or_default();
        index.retain(|fp| *fp != fingerprint);
        index.insert(0, fingerprint);
        index.truncate(self.warm_depth);
        self.stats.insertions += 1;
    }

    /// Counts a hit that was served from outside the store: an in-round
    /// duplicate answered directly from its lead's completed result. The
    /// lead's entry may already have been LRU-evicted by later inserts in
    /// the same round, so this never requires residency; when the entry is
    /// still resident its recency is refreshed, exactly as a
    /// [`ResultCache::get`] hit would.
    pub(crate) fn count_follower_hit(&mut self, fingerprint: Fingerprint) {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&fingerprint) {
            entry.last_used = self.tick;
        }
        self.stats.hits += 1;
    }

    /// Entries in ascending recency order (least recently used first, ties
    /// broken by fingerprint). Re-inserting them in this order into a fresh
    /// cache reproduces the LRU eviction order and rebuilds a warm-start
    /// index keyed by recency — the canonical form the snapshot persists.
    pub(crate) fn entries_by_recency(&self) -> Vec<(Fingerprint, Fingerprint, &CachedSolve)> {
        let mut rows: Vec<(u64, Fingerprint, Fingerprint, &CachedSolve)> = self
            .entries
            .iter()
            .map(|(fp, entry)| (entry.last_used, *fp, entry.topology, &entry.solve))
            .collect();
        rows.sort_by_key(|&(tick, fp, _, _)| (tick, fp));
        rows.into_iter()
            .map(|(_, fp, topo, solve)| (fp, topo, solve))
            .collect()
    }

    /// Removes `fingerprint` from `topology`'s warm-start index, dropping the
    /// index when it empties.
    fn unindex(&mut self, topology: Fingerprint, fingerprint: Fingerprint) {
        if let Some(index) = self.by_topology.get_mut(&topology) {
            index.retain(|fp| *fp != fingerprint);
            if index.is_empty() {
                self.by_topology.remove(&topology);
            }
        }
    }

    fn evict_lru(&mut self) {
        // O(n) scan: the cache is bounded and small relative to solve cost,
        // so a heap would be complexity without payoff. Ties broken by
        // fingerprint for determinism (ticks are unique in practice).
        let victim = self
            .entries
            .iter()
            .min_by_key(|(fp, entry)| (entry.last_used, **fp))
            .map(|(fp, _)| *fp);
        if let Some(fp) = victim {
            if let Some(entry) = self.entries.remove(&fp) {
                // Eviction-aware cleanup: only the evicted entry leaves the
                // warm-start index; the topology's other entries keep
                // serving hints.
                self.unindex(entry.topology, fp);
                self.stats.evictions += 1;
            }
        }
    }
}

/// A clonable, shareable handle to one [`ResultCache`].
///
/// All clones refer to the same store, so N [`JobEngine`]s (or a
/// [`ServeDaemon`] plus ad-hoc engines) memoize into one cache and one set of
/// [`CacheStats`]. Every method takes the internal lock for the duration of
/// one cache operation only — the lock is never held across a solve, a pool
/// dispatch, or any user code, so a blocking lock is deadlock-free here (see
/// the module docs for the contrast with [`afp_par::PoolHandle`]).
///
/// [`JobEngine`]: crate::engine::JobEngine
/// [`ServeDaemon`]: crate::daemon::ServeDaemon
#[derive(Clone, Debug)]
pub struct CacheHandle {
    inner: Arc<Mutex<ResultCache>>,
}

impl CacheHandle {
    /// Creates a handle owning a fresh cache of `capacity` entries with the
    /// default warm-start depth ([`DEFAULT_WARM_DEPTH`]).
    pub fn new(capacity: usize) -> Self {
        CacheHandle::with_warm_depth(capacity, DEFAULT_WARM_DEPTH)
    }

    /// Creates a handle owning a fresh cache with an explicit warm depth.
    pub fn with_warm_depth(capacity: usize, warm_depth: usize) -> Self {
        CacheHandle::from_cache(ResultCache::with_warm_depth(capacity, warm_depth))
    }

    /// Wraps an existing cache in a shared handle.
    pub fn from_cache(cache: ResultCache) -> Self {
        CacheHandle {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Lifetime counters of the shared store (totals across every engine
    /// that clones this handle).
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the shared cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.lock().capacity()
    }

    /// Warm-start entries retained per topology key.
    pub fn warm_depth(&self) -> usize {
        self.lock().warm_depth()
    }

    /// Counted exact lookup ([`ResultCache::get`]), cloning the hit out of
    /// the lock scope.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<CachedSolve> {
        self.lock().get(fingerprint).cloned()
    }

    /// Uncounted exact lookup ([`ResultCache::peek`]).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<CachedSolve> {
        self.lock().peek(fingerprint).cloned()
    }

    /// Warm-start hint for a topology ([`ResultCache::warm_hint`]).
    pub fn warm_hint(&self, topology: Fingerprint) -> Option<Candidate> {
        self.lock().warm_hint(topology)
    }

    /// Inserts a solve ([`ResultCache::insert`]).
    pub fn insert(&self, fingerprint: Fingerprint, topology: Fingerprint, solve: CachedSolve) {
        self.lock().insert(fingerprint, topology, solve);
    }

    /// Counts an externally served hit ([`ResultCache::count_follower_hit`]).
    pub(crate) fn count_follower_hit(&self, fingerprint: Fingerprint) {
        self.lock().count_follower_hit(fingerprint);
    }

    /// Serializes the shared cache into the versioned binary snapshot format
    /// (see [`crate::persist`]).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        persist::snapshot_bytes(&self.lock())
    }

    /// Decodes a snapshot and inserts its entries (oldest first, so recency
    /// and the warm-start index rebuild in snapshot order) into the shared
    /// cache. Returns the number of snapshot entries actually resident
    /// afterwards — restoring into a cache with a smaller capacity than the
    /// snapshot evicts the oldest entries during the insert loop, and those
    /// are not counted. Decoding is atomic: on any [`PersistError`] the
    /// cache is left untouched — the caller falls back to cold.
    pub fn restore_bytes(&self, bytes: &[u8]) -> Result<usize, PersistError> {
        let snapshot = persist::decode_snapshot(bytes)?;
        let mut cache = self.lock();
        let keys: Vec<Fingerprint> = snapshot.entries.iter().map(|(fp, _, _)| *fp).collect();
        for (fingerprint, topology, solve) in snapshot.entries {
            cache.insert(fingerprint, topology, solve);
        }
        Ok(keys
            .iter()
            .filter(|fp| cache.peek(**fp).is_some())
            .count())
    }

    /// Writes the snapshot to `path` (via a sibling temp file + rename, so a
    /// crash mid-write never leaves a truncated snapshot behind).
    pub fn persist(&self, path: &Path) -> Result<(), PersistError> {
        let bytes = self.snapshot_bytes();
        persist::write_snapshot_file(path, &bytes)
    }

    /// Reads and restores a snapshot from `path`. Typed-error counterpart of
    /// [`CacheHandle::restore_or_cold`].
    pub fn restore(&self, path: &Path) -> Result<usize, PersistError> {
        let bytes = std::fs::read(path).map_err(PersistError::Io)?;
        self.restore_bytes(&bytes)
    }

    /// Reads and restores a snapshot from `path`, treating every failure —
    /// missing file, truncation, corruption, version mismatch — as a cold
    /// start. Returns the number of entries restored (0 on any failure).
    /// Never panics: a damaged snapshot costs re-solves, not the process.
    pub fn restore_or_cold(&self, path: &Path) -> usize {
        self.restore(path).unwrap_or(0)
    }

    /// Poisoning is recovered: the cache's own invariants hold after every
    /// statement, and the serve layer isolates solver panics before they can
    /// unwind through a cache call anyway.
    fn lock(&self) -> MutexGuard<'_, ResultCache> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, RunControl, SaConfig};

    use crate::fingerprint::JobSpec;

    fn fp(words: [u64; 2]) -> Fingerprint {
        Fingerprint(words)
    }

    fn solve() -> CachedSolve {
        let circuit = generators::ota3();
        let (result, best) = Baseline::Sa(SaConfig::small()).run_controlled_seeded(
            &circuit,
            3,
            &RunControl::unbounded(),
            None,
        );
        CachedSolve { result, best }
    }

    /// A solve whose candidate is tagged recognizably by rotating the first
    /// `tag` positions of the positive sequence.
    fn tagged_solve(tag: usize) -> CachedSolve {
        let mut s = solve();
        if let Some(best) = &mut s.best {
            let len = best.positive.len().max(1);
            best.positive.rotate_left(tag % len);
        }
        s
    }

    #[test]
    fn hit_returns_the_inserted_result_and_counts() {
        let mut cache = ResultCache::new(4);
        let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 3);
        let key = spec.fingerprint();
        let topo = spec.topology_fingerprint();
        assert!(cache.get(key).is_none());
        let solve = solve();
        cache.insert(key, topo, solve.clone());
        let hit = cache.get(key).expect("hit");
        assert_eq!(hit.result.reward.to_bits(), solve.result.reward.to_bits());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = ResultCache::new(2);
        let s = solve();
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        cache.insert(fp([2, 2]), fp([20, 20]), s.clone());
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(cache.get(fp([1, 1])).is_some());
        cache.insert(fp([3, 3]), fp([30, 30]), s);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(fp([1, 1])).is_some());
        assert!(cache.peek(fp([2, 2])).is_none());
        assert!(cache.peek(fp([3, 3])).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // Entry 2's warm-start index went with it.
        assert!(cache.warm_hint(fp([20, 20])).is_none());
        assert!(cache.warm_hint(fp([30, 30])).is_some());
    }

    #[test]
    fn warm_hint_follows_the_most_recent_same_topology_entry() {
        let mut cache = ResultCache::new(4);
        let topo = fp([10, 10]);
        let older = solve();
        let mut newer = older.clone();
        if let Some(best) = &mut newer.best {
            best.positive.swap(0, 1);
        }
        cache.insert(fp([1, 1]), topo, older);
        cache.insert(fp([2, 2]), topo, newer.clone());
        let hint = cache.warm_hint(topo).expect("hint");
        assert_eq!(hint.positive, newer.best.unwrap().positive);
        assert_eq!(cache.stats().warm_seeds, 1);
        assert!(cache.warm_hint(fp([99, 99])).is_none());
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let mut cache = ResultCache::new(1);
        let s = solve();
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        cache.insert(fp([2, 2]), fp([20, 20]), s);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = ResultCache::new(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.warm_depth(), 1);
        assert_eq!(ResultCache::with_warm_depth(4, 0).warm_depth(), 1);
    }

    #[test]
    fn warm_index_keeps_the_remaining_k_minus_one_entries_after_eviction() {
        // Three same-topology entries at depth 2: the index holds the two
        // most recent. Evicting the front one must fall back to the other —
        // the single-slot index (warm_depth 1) loses the topology entirely.
        let topo = fp([10, 10]);
        let mut cache = ResultCache::with_warm_depth(2, 2);
        cache.insert(fp([1, 1]), topo, tagged_solve(0));
        cache.insert(fp([2, 2]), topo, tagged_solve(1)); // index: [2, 1]
        cache.insert(fp([3, 3]), topo, tagged_solve(2)); // evicts 1; index: [3, 2]
        assert_eq!(cache.stats().evictions, 1);

        // Make entry 3 (the front of the warm index) the LRU victim.
        assert!(cache.get(fp([2, 2])).is_some());
        cache.insert(fp([4, 4]), fp([40, 40]), tagged_solve(3)); // evicts 3
        assert_eq!(cache.stats().evictions, 2);

        let hint = cache.warm_hint(topo).expect("K-1 entries keep serving");
        assert_eq!(
            hint.positive,
            tagged_solve(1).best.expect("sa exposes a winner").positive,
            "hint must come from the surviving second-most-recent entry"
        );
    }

    #[test]
    fn warm_depth_one_reproduces_the_single_slot_index() {
        // Same eviction sequence as the K-deep test, at depth 1: evicting
        // the most recent same-topology entry loses the topology's hint even
        // though an older same-topology entry survives — exactly the
        // original single-slot behavior ResultCache::new pins.
        let topo = fp([10, 10]);
        let mut cache = ResultCache::new(2);
        cache.insert(fp([2, 2]), topo, tagged_solve(1));
        cache.insert(fp([3, 3]), topo, tagged_solve(2)); // index: [3]
        assert!(cache.get(fp([2, 2])).is_some());
        cache.insert(fp([4, 4]), fp([40, 40]), tagged_solve(3)); // evicts 3
        assert!(
            cache.warm_hint(topo).is_none(),
            "depth-1 index must not fall back to older same-topology entries"
        );
        // The older entry is still an exact hit — only the hint is gone.
        assert!(cache.peek(fp([2, 2])).is_some());
    }

    #[test]
    fn warm_index_depth_bounds_the_per_topology_list() {
        let topo = fp([10, 10]);
        let mut cache = ResultCache::with_warm_depth(8, 2);
        for i in 1..=4u64 {
            cache.insert(fp([i, i]), topo, tagged_solve(i as usize));
        }
        // All four entries live, but the index only tracks the two newest:
        // evicting both must leave the topology hint-less even though
        // entries 1 and 2 survive.
        cache.with_warm_hint_victims(topo);
    }

    impl ResultCache {
        /// Test helper: assert the warm index for `topo` holds exactly the
        /// two newest entries (4, then 3) and nothing older.
        fn with_warm_hint_victims(&mut self, topo: Fingerprint) {
            let index = self.by_topology.get(&topo).expect("indexed").clone();
            assert_eq!(index, vec![fp_raw(4), fp_raw(3)]);
        }
    }

    fn fp_raw(i: u64) -> Fingerprint {
        Fingerprint([i, i])
    }

    #[test]
    fn follower_hits_count_and_refresh_recency_without_requiring_residency() {
        let mut cache = ResultCache::new(2);
        // An already-evicted lead is still a counted hit for its follower.
        cache.count_follower_hit(fp([9, 9]));
        assert_eq!(cache.stats().hits, 1);
        let s = solve();
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        cache.insert(fp([2, 2]), fp([20, 20]), s.clone());
        // A resident lead is refreshed exactly like a `get` hit, so entry 2
        // becomes the LRU victim.
        cache.count_follower_hit(fp([1, 1]));
        cache.insert(fp([3, 3]), fp([30, 30]), s);
        assert!(cache.peek(fp([1, 1])).is_some());
        assert!(cache.peek(fp([2, 2])).is_none());
        assert_eq!((cache.stats().hits, cache.stats().misses), (2, 0));
    }

    #[test]
    fn restore_reports_resident_entries_when_capacity_shrinks() {
        let donor = CacheHandle::new(4);
        let s = solve();
        donor.insert(fp([1, 1]), fp([10, 10]), s.clone());
        donor.insert(fp([2, 2]), fp([20, 20]), s.clone());
        donor.insert(fp([3, 3]), fp([30, 30]), s);
        let bytes = donor.snapshot_bytes();

        // Restoring three entries into a capacity-1 cache evicts the two
        // oldest during the insert loop; the reported count is what is
        // actually resident, not the snapshot's length.
        let small = CacheHandle::new(1);
        assert_eq!(small.restore_bytes(&bytes).expect("restore"), 1);
        assert_eq!(small.len(), 1);
        // Snapshot order is oldest-first, so the most recent entry survives.
        assert!(small.peek(fp([3, 3])).is_some());
    }

    #[test]
    fn handle_clones_share_one_store_and_its_stats() {
        let handle = CacheHandle::with_warm_depth(4, 2);
        let clone = handle.clone();
        let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 3);
        let key = spec.fingerprint();
        let topo = spec.topology_fingerprint();
        assert!(handle.get(key).is_none());
        clone.insert(key, topo, solve());
        let hit = handle.get(key).expect("hit through the other clone");
        assert_eq!(
            hit.result.reward.to_bits(),
            clone.peek(key).unwrap().result.reward.to_bits()
        );
        let stats = handle.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(clone.stats(), stats);
        assert_eq!(handle.len(), 1);
        assert!(!handle.is_empty());
        assert_eq!(handle.capacity(), 4);
        assert_eq!(handle.warm_depth(), 2);
        assert!(handle.warm_hint(topo).is_some());
    }
}

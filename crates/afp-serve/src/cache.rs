//! Content-addressed result cache.
//!
//! Maps [`Fingerprint`]s to solved [`BaselineResult`]s. Because equal
//! fingerprints imply bit-identical solves (the canonicalization contract of
//! [`crate::fingerprint`]), a hit can be returned verbatim in place of a
//! re-solve. Alongside each result the cache stores the winning sequence-pair
//! [`Candidate`] (when the solver exposes one) keyed by the spec's topology
//! fingerprint, so a *near*-identical request — same circuit graph, perturbed
//! sizings or solver knobs — can be seeded from the cached winner's layout
//! instead of a random start ([`ResultCache::warm_hint`]).
//!
//! The cache is bounded: inserting into a full cache evicts the
//! least-recently-used entry (recency is a logical tick bumped on every get
//! and insert, so the policy is deterministic — no wall clock involved).

use std::collections::HashMap;

use afp_metaheuristics::common::Candidate;
use afp_metaheuristics::BaselineResult;

use crate::fingerprint::Fingerprint;

/// A memoized solve: the result plus the winning candidate (if the solver
/// exposes one) for warm-starting same-topology requests.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// The solve result, returned verbatim on an exact fingerprint hit.
    pub result: BaselineResult,
    /// The winning candidate, used to warm-start same-topology requests.
    pub best: Option<Candidate>,
}

/// Hit/miss/eviction counters, monotone over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Exact-fingerprint lookups that found a memoized result.
    pub hits: u64,
    /// Exact-fingerprint lookups that found nothing.
    pub misses: u64,
    /// Warm-start hints served to near-identical (same-topology) requests.
    pub warm_seeds: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry {
    solve: CachedSolve,
    topology: Fingerprint,
    last_used: u64,
}

/// Bounded, LRU-evicting, content-addressed store of solve results.
#[derive(Debug)]
pub struct ResultCache {
    entries: HashMap<Fingerprint, Entry>,
    /// Most recently inserted exact fingerprint per topology fingerprint —
    /// the warm-start index.
    by_topology: HashMap<Fingerprint, Fingerprint>,
    capacity: usize,
    tick: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            by_topology: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up an exact fingerprint, counting a hit or miss and refreshing
    /// the entry's recency.
    pub fn get(&mut self, fingerprint: Fingerprint) -> Option<&CachedSolve> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(&entry.solve)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Exact lookup without touching recency or counters (for inspection).
    pub fn peek(&self, fingerprint: Fingerprint) -> Option<&CachedSolve> {
        self.entries.get(&fingerprint).map(|e| &e.solve)
    }

    /// The cached winner for the most recent entry with this topology
    /// fingerprint, if any — a warm-start seed for a near-identical request.
    /// Counts a `warm_seeds` stat when it returns a candidate.
    pub fn warm_hint(&mut self, topology: Fingerprint) -> Option<Candidate> {
        let exact = *self.by_topology.get(&topology)?;
        let best = self
            .entries
            .get(&exact)
            .and_then(|entry| entry.solve.best.clone());
        if best.is_some() {
            self.stats.warm_seeds += 1;
        }
        best
    }

    /// Inserts (or replaces) the solve for a fingerprint, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(
        &mut self,
        fingerprint: Fingerprint,
        topology: Fingerprint,
        solve: CachedSolve,
    ) {
        self.tick += 1;
        if !self.entries.contains_key(&fingerprint) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            fingerprint,
            Entry {
                solve,
                topology,
                last_used: self.tick,
            },
        );
        self.by_topology.insert(topology, fingerprint);
        self.stats.insertions += 1;
    }

    fn evict_lru(&mut self) {
        // O(n) scan: the cache is bounded and small relative to solve cost,
        // so a heap would be complexity without payoff. Ties broken by
        // fingerprint for determinism (ticks are unique in practice).
        let victim = self
            .entries
            .iter()
            .min_by_key(|(fp, entry)| (entry.last_used, **fp))
            .map(|(fp, _)| *fp);
        if let Some(fp) = victim {
            if let Some(entry) = self.entries.remove(&fp) {
                // Drop the warm-start index only if it still points at the
                // evicted entry; a newer same-topology entry keeps it alive.
                if self.by_topology.get(&entry.topology) == Some(&fp) {
                    self.by_topology.remove(&entry.topology);
                }
                self.stats.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, RunControl, SaConfig};

    use crate::fingerprint::JobSpec;

    fn fp(words: [u64; 2]) -> Fingerprint {
        Fingerprint(words)
    }

    fn solve() -> CachedSolve {
        let circuit = generators::ota3();
        let (result, best) = Baseline::Sa(SaConfig::small()).run_controlled_seeded(
            &circuit,
            3,
            &RunControl::unbounded(),
            None,
        );
        CachedSolve { result, best }
    }

    #[test]
    fn hit_returns_the_inserted_result_and_counts() {
        let mut cache = ResultCache::new(4);
        let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 3);
        let key = spec.fingerprint();
        let topo = spec.topology_fingerprint();
        assert!(cache.get(key).is_none());
        let solve = solve();
        cache.insert(key, topo, solve.clone());
        let hit = cache.get(key).expect("hit");
        assert_eq!(hit.result.reward.to_bits(), solve.result.reward.to_bits());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = ResultCache::new(2);
        let s = solve();
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        cache.insert(fp([2, 2]), fp([20, 20]), s.clone());
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(cache.get(fp([1, 1])).is_some());
        cache.insert(fp([3, 3]), fp([30, 30]), s);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(fp([1, 1])).is_some());
        assert!(cache.peek(fp([2, 2])).is_none());
        assert!(cache.peek(fp([3, 3])).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // Entry 2's warm-start index went with it.
        assert!(cache.warm_hint(fp([20, 20])).is_none());
        assert!(cache.warm_hint(fp([30, 30])).is_some());
    }

    #[test]
    fn warm_hint_follows_the_most_recent_same_topology_entry() {
        let mut cache = ResultCache::new(4);
        let topo = fp([10, 10]);
        let older = solve();
        let mut newer = older.clone();
        if let Some(best) = &mut newer.best {
            best.positive.swap(0, 1);
        }
        cache.insert(fp([1, 1]), topo, older);
        cache.insert(fp([2, 2]), topo, newer.clone());
        let hint = cache.warm_hint(topo).expect("hint");
        assert_eq!(hint.positive, newer.best.unwrap().positive);
        assert_eq!(cache.stats().warm_seeds, 1);
        assert!(cache.warm_hint(fp([99, 99])).is_none());
    }

    #[test]
    fn replacing_an_entry_does_not_evict() {
        let mut cache = ResultCache::new(1);
        let s = solve();
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        cache.insert(fp([1, 1]), fp([10, 10]), s.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        cache.insert(fp([2, 2]), fp([20, 20]), s);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_floor_is_one() {
        let cache = ResultCache::new(0);
        assert_eq!(cache.capacity(), 1);
    }
}

//! The serve daemon: a continuously draining [`JobEngine`] on its own thread.
//!
//! [`ServeDaemon`] owns a drain thread that sleeps until work arrives, then
//! runs [`JobEngine::run_pending`] rounds until the queue is empty again.
//! Because the engine's admission lock is never held across solver work,
//! [`ServeDaemon::submit`] admits jobs *while a batch is in flight* — a
//! submit never blocks on a running solve, it just queues the job and nudges
//! the drain thread. Admission is bounded by the engine's
//! [`ServeConfig::queue_depth`] ([`RejectReason::QueueFull`]) and closed by
//! shutdown ([`RejectReason::ShuttingDown`]).
//!
//! ## Lifecycle
//!
//! ```text
//! spawn ──────► idle ◄───────► draining ─────► stopped
//!   │            ▲   submit /     │  queue       ▲
//!   │ restore    │   wake         │  empty       │ shutdown / shutdown_now /
//!   └─ or cold   └────────────────┘              └─ Drop (implicit shutdown_now)
//! ```
//!
//! - **spawn**: if the engine has a [`ServeConfig::persist_path`], the cache
//!   is restored from it (cold on any failure) before the first job runs.
//! - **shutdown** (graceful): stops admission, cancels every queued job,
//!   lets the in-flight batch finish under its own per-job deadlines, joins
//!   the drain thread, autosaves the cache if configured, and reports what
//!   happened to every job ([`ShutdownReport`]).
//! - **shutdown_now**: like `shutdown`, but also raises every running job's
//!   cancel token, so in-flight solves stop at their next control poll with
//!   [`StopReason::Cancelled`] and land as interrupted best-so-far results.
//! - **Drop**: `shutdown_now` semantics, report discarded.
//!
//! The drain thread never dies with a job: solver panics are contained by
//! the engine's per-job `catch_unwind`, so a poisoned spec fails alone while
//! the loop, the pool, and the shared cache keep serving.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use afp_metaheuristics::StopReason;

use crate::engine::{JobEngine, JobId, JobOutcome, JobRequest, JobState, RejectReason, ServeConfig};

/// What happened to every job, reported once by shutdown.
#[derive(Debug, Clone, Default)]
pub struct ShutdownReport {
    /// Drain rounds ([`JobEngine::run_pending`] calls) the daemon ran.
    pub rounds: u64,
    /// Jobs that reached a terminal state over the daemon's lifetime.
    pub resolved: usize,
    /// Jobs that finished with [`StopReason::Completed`] or were served from
    /// the cache.
    pub completed: usize,
    /// Jobs that produced an interrupted best-so-far result, with the
    /// per-job reason the run stopped short (deadline, budget, cancel).
    pub interrupted: Vec<(JobId, StopReason)>,
    /// Jobs cancelled before producing any result (queued at shutdown, or
    /// explicitly cancelled before running).
    pub cancelled: usize,
    /// Jobs whose solver panicked.
    pub failed: usize,
}

#[derive(Debug, Default)]
struct DaemonState {
    /// Monotone submission counter; the drain thread sleeps until it moves.
    /// A counter (not a flag) cannot miss a wakeup: a submit that lands
    /// while the drain thread is mid-round leaves `signals` ahead of the
    /// thread's `seen` marker, so the next loop iteration drains again
    /// instead of sleeping.
    signals: u64,
    /// No further admissions; the drain thread exits once the queue is flushed.
    shutting_down: bool,
    /// The drain thread is inside a `run_pending` round.
    draining: bool,
    /// The drain thread has exited.
    stopped: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<DaemonState>,
    /// Wakes the drain thread (submits, shutdown).
    wake: Condvar,
    /// Wakes waiters in [`ServeDaemon::wait_idle`] (round finished, daemon
    /// stopped).
    idle: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, DaemonState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A continuously draining serve loop around a shared [`JobEngine`].
#[derive(Debug)]
pub struct ServeDaemon {
    engine: JobEngine,
    shared: Arc<Shared>,
    drain: Mutex<Option<JoinHandle<u64>>>,
}

impl ServeDaemon {
    /// Builds an engine per `config` and starts draining it. Restores the
    /// cache from [`ServeConfig::persist_path`] first when one is set
    /// (falling back to cold on any snapshot problem).
    pub fn spawn(config: &ServeConfig) -> Self {
        ServeDaemon::spawn_with_engine(JobEngine::new(config))
    }

    /// Starts a drain loop over an existing engine — the way to serve a
    /// shared pool/cache ([`JobEngine::with_cache`]): the daemon drains,
    /// while other clones of the engine keep full access to states, stats,
    /// and the cache.
    pub fn spawn_with_engine(engine: JobEngine) -> Self {
        engine.restore_or_cold();
        let shared = Arc::new(Shared {
            state: Mutex::new(DaemonState::default()),
            wake: Condvar::new(),
            idle: Condvar::new(),
        });
        let drain = {
            let engine = engine.clone();
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("afp-serve-drain".into())
                .spawn(move || drain_loop(&engine, &shared))
                .expect("spawn drain thread")
        };
        ServeDaemon {
            engine,
            shared,
            drain: Mutex::new(Some(drain)),
        }
    }

    /// The underlying engine (for states, outcomes, cache and pool handles).
    pub fn engine(&self) -> &JobEngine {
        &self.engine
    }

    /// Admits a job into the live drain loop. Never blocks on a running
    /// batch; fails with a typed [`RejectReason`] when the queue is at its
    /// bound or the daemon is shutting down.
    pub fn submit(&self, request: JobRequest) -> Result<JobId, RejectReason> {
        if self.shared.lock().shutting_down {
            return Err(RejectReason::ShuttingDown);
        }
        let id = self.engine.try_submit(request)?;
        let mut state = self.shared.lock();
        state.signals += 1;
        drop(state);
        self.shared.wake.notify_one();
        Ok(id)
    }

    /// Convenience: the job's outcome if it reached [`JobState::Done`].
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        self.engine.outcome(id)
    }

    /// Blocks until the daemon is idle: no round in flight and nothing
    /// queued (or the daemon has stopped). On return, every job submitted
    /// *before* this call is in a terminal state.
    pub fn wait_idle(&self) {
        let mut state = self.shared.lock();
        loop {
            if state.stopped || (!state.draining && self.engine.pending() == 0) {
                return;
            }
            state = self
                .shared
                .idle
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Graceful shutdown: stops admission, cancels the queued backlog, lets
    /// the in-flight batch finish (under its own per-job deadlines), joins
    /// the drain thread, autosaves the cache when a persist path is
    /// configured, and reports per-job outcomes. Idempotent — a second call
    /// rebuilds the report from the engine's job table.
    pub fn shutdown(&self) -> ShutdownReport {
        self.shutdown_inner(false)
    }

    /// [`ServeDaemon::shutdown`], but running jobs are cancelled too: their
    /// tokens are raised so they stop at the next control poll with
    /// [`StopReason::Cancelled`] instead of running to completion.
    pub fn shutdown_now(&self) -> ShutdownReport {
        self.shutdown_inner(true)
    }

    fn shutdown_inner(&self, cancel_running: bool) -> ShutdownReport {
        {
            let mut state = self.shared.lock();
            state.shutting_down = true;
        }
        // Flush the backlog before waking the drain thread so the final
        // round only finishes what is already running.
        self.engine.cancel_queued();
        if cancel_running {
            self.engine.cancel_all();
        }
        self.shared.wake.notify_all();
        let handle = self.drain.lock().unwrap_or_else(|p| p.into_inner()).take();
        let rounds = match handle {
            Some(handle) => handle.join().unwrap_or(0),
            None => 0,
        };
        // Close the straggler race: a submit that passed the shutting_down
        // check before the flag landed may have queued a job the drain
        // thread never saw. It is cancelled, not solved — admission was
        // already closed from the caller's point of view.
        self.engine.cancel_queued();
        if rounds > 0 {
            let _ = self.engine.persist();
        }
        self.report(rounds)
    }

    fn report(&self, rounds: u64) -> ShutdownReport {
        let mut report = ShutdownReport {
            rounds,
            ..ShutdownReport::default()
        };
        for (id, state) in self.engine.states() {
            match state {
                JobState::Done(outcome) => {
                    report.resolved += 1;
                    if outcome.result.stop == StopReason::Completed {
                        report.completed += 1;
                    } else {
                        report.interrupted.push((id, outcome.result.stop));
                    }
                }
                JobState::Cancelled => {
                    report.resolved += 1;
                    report.cancelled += 1;
                }
                JobState::Failed(_) => {
                    report.resolved += 1;
                    report.failed += 1;
                }
                JobState::Queued | JobState::Running => {}
            }
        }
        report
    }
}

impl Drop for ServeDaemon {
    fn drop(&mut self) {
        if self.drain.lock().unwrap_or_else(|p| p.into_inner()).is_some() {
            self.shutdown_now();
        }
    }
}

/// The drain thread: sleep until signalled, drain, repeat; exit once
/// shutdown has flushed the queue. Returns the number of rounds run.
fn drain_loop(engine: &JobEngine, shared: &Arc<Shared>) -> u64 {
    let mut rounds = 0u64;
    let mut seen = 0u64;
    loop {
        {
            let mut state = shared.lock();
            while state.signals == seen && !state.shutting_down {
                state = shared
                    .wake
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
            seen = state.signals;
            state.draining = true;
        }
        rounds += 1;
        engine.run_pending();
        let mut state = shared.lock();
        state.draining = false;
        if state.shutting_down {
            // Admission is closed; anything still queued slipped in during
            // this round and shutdown wants it cancelled, not solved.
            drop(state);
            engine.cancel_queued();
            let mut state = shared.lock();
            state.stopped = true;
            drop(state);
            shared.idle.notify_all();
            return rounds;
        }
        if engine.pending() == 0 {
            drop(state);
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, SaConfig};
    use afp_par::PoolHandle;

    use crate::cache::CacheHandle;
    use crate::fingerprint::JobSpec;

    fn sa_spec(seed: u64) -> JobSpec {
        JobSpec::new(generators::ota5(), Baseline::Sa(SaConfig::small()), seed)
    }

    /// A spec that runs effectively forever unless cancelled.
    fn endless_spec(seed: u64) -> JobSpec {
        JobSpec::new(
            generators::ota5(),
            Baseline::Sa(SaConfig {
                iterations: 50_000_000,
                ..SaConfig::small()
            }),
            seed,
        )
    }

    fn daemon(workers: usize) -> ServeDaemon {
        ServeDaemon::spawn(&ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn daemon_drains_submissions_and_reports_completions() {
        let daemon = daemon(2);
        let ids: Vec<JobId> = (1..=4)
            .map(|seed| daemon.submit(JobRequest::new(sa_spec(seed))).expect("admit"))
            .collect();
        daemon.wait_idle();
        for id in &ids {
            assert!(daemon.outcome(*id).is_some(), "job {id:?} not done");
        }
        let report = daemon.shutdown();
        assert!(report.rounds >= 1);
        assert_eq!(report.resolved, 4);
        assert_eq!(report.completed, 4);
        assert_eq!(report.cancelled, 0);
        assert!(report.interrupted.is_empty());
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn submissions_are_admitted_while_a_batch_is_in_flight() {
        let daemon = daemon(1);
        // Occupy the single worker, then submit more while it runs. The
        // admissions must return immediately (they hold no solve lock) and
        // the follow-up jobs drain in later rounds of the same loop.
        let slow = daemon
            .submit(JobRequest {
                spec: endless_spec(1),
                deadline: Some(Duration::from_millis(150)),
                budget: None,
            })
            .expect("admit slow");
        std::thread::sleep(Duration::from_millis(30));
        let live: Vec<JobId> = (2..=3)
            .map(|seed| daemon.submit(JobRequest::new(sa_spec(seed))).expect("admit live"))
            .collect();
        daemon.wait_idle();
        assert_eq!(
            daemon.outcome(slow).expect("slow done").result.stop,
            StopReason::Deadline
        );
        for id in live {
            let outcome = daemon.outcome(id).expect("live job done");
            assert_eq!(outcome.result.stop, StopReason::Completed);
        }
    }

    #[test]
    fn graceful_shutdown_cancels_queued_and_reports_per_job_reasons() {
        let daemon = daemon(1);
        let running = daemon
            .submit(JobRequest::new(endless_spec(1)))
            .expect("admit");
        std::thread::sleep(Duration::from_millis(30));
        // These queue behind the endless job on the single worker.
        let queued: Vec<JobId> = (2..=3)
            .map(|seed| {
                daemon
                    .submit(JobRequest::new(endless_spec(seed)))
                    .expect("admit")
            })
            .collect();
        let report = daemon.shutdown_now();
        // The running job stopped at its next cancel poll with a best-so-far
        // result; the queued ones never ran. (If the scheduler let a queued
        // job start before shutdown landed, it reports as interrupted too —
        // either way nothing completed and everything is accounted for.)
        assert_eq!(report.completed, 0);
        assert_eq!(report.resolved, 3);
        assert_eq!(report.cancelled + report.interrupted.len(), 3);
        assert!(report
            .interrupted
            .iter()
            .any(|(id, _)| *id == running) || matches!(daemon.engine().state(running), JobState::Cancelled));
        for (_, stop) in &report.interrupted {
            assert_eq!(*stop, StopReason::Cancelled);
        }
        let _ = queued;
    }

    #[test]
    fn shutdown_closes_admission_with_a_typed_rejection() {
        let daemon = daemon(1);
        daemon.shutdown();
        assert_eq!(
            daemon.submit(JobRequest::new(sa_spec(1))).unwrap_err(),
            RejectReason::ShuttingDown
        );
        // Idempotent: a second shutdown just rebuilds the report.
        let report = daemon.shutdown();
        assert_eq!(report.resolved, 0);
    }

    #[test]
    fn a_panicking_job_poisons_neither_the_shared_cache_nor_the_drain_loop() {
        let pool = PoolHandle::new(2);
        let cache = CacheHandle::new(16);
        let engine = JobEngine::with_cache(&ServeConfig::default(), pool, cache.clone());
        let daemon = ServeDaemon::spawn_with_engine(engine);

        // `moves_per_temperature: 0` divides by zero inside SA.
        let bad = daemon
            .submit(JobRequest::new(JobSpec::new(
                generators::ota3(),
                Baseline::Sa(SaConfig {
                    moves_per_temperature: 0,
                    ..SaConfig::small()
                }),
                1,
            )))
            .expect("admit bad");
        let good = daemon.submit(JobRequest::new(sa_spec(1))).expect("admit good");
        daemon.wait_idle();
        assert!(matches!(daemon.engine().state(bad), JobState::Failed(_)));
        assert!(daemon.outcome(good).is_some());

        // The drain loop survived: a repeat of the good job is served as a
        // cache hit through the same daemon, from the same shared cache.
        let repeat = daemon.submit(JobRequest::new(sa_spec(1))).expect("admit repeat");
        daemon.wait_idle();
        let repeat = daemon.outcome(repeat).expect("repeat done");
        assert!(repeat.cache_hit);
        assert_eq!(cache.stats().insertions, 1);
        let report = daemon.shutdown();
        assert_eq!(report.failed, 1);
        assert_eq!(report.completed, 2);
    }

    #[test]
    fn dropping_a_daemon_stops_it_without_hanging() {
        let daemon = daemon(1);
        daemon
            .submit(JobRequest::new(endless_spec(1)))
            .expect("admit");
        drop(daemon); // must cancel and join, not hang
    }
}

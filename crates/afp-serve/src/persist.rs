//! Versioned binary snapshots of the result cache.
//!
//! The vendored `serde` is a compile-time marker-trait stub (see
//! `vendor/README.md`), so the snapshot format is hand-rolled: a fixed
//! header, length-prefixed entry records, and a trailing checksum. Every
//! multi-byte integer is little-endian; every `f64` travels as its exact IEEE
//! bit pattern (`to_bits`/`from_bits`), because the whole point of restoring
//! a cache is serving hits *bit-identical* to the original solves — a
//! decimal round-trip would quietly break that contract.
//!
//! ## Layout
//!
//! ```text
//! header   magic            4 bytes  b"AFPC"
//!          format_version   u32      layout of this file (FORMAT_VERSION)
//!          tag_layout       u32      fingerprint::TAG_LAYOUT_VERSION at save
//!          capacity         u64      cache capacity at save (informational)
//!          warm_depth       u64      warm index depth at save (informational)
//!          entry_count      u64
//! entries  entry_count records, oldest-first by recency, each:
//!          record_len       u32      bytes in the record body that follows
//!          body             exact fingerprint (2×u64), topology (2×u64),
//!                           algorithm string, result scalars, stop code,
//!                           metrics, floorplan (canvas + grid side + placed
//!                           blocks), optional winning candidate
//! trailer  checksum         u64      FNV-1a 64 over all preceding bytes
//! ```
//!
//! ## Version-reject rules
//!
//! The header is validated **before** the checksum, so a version bump is
//! reported as the typed mismatch it is ([`PersistError::UnsupportedFormatVersion`],
//! [`PersistError::TagLayoutMismatch`]) rather than a generic checksum
//! failure. `format_version` guards this file layout; `tag_layout` guards
//! the *meaning of the keys*: if the fingerprint's section-tag layout
//! changed since the snapshot was written, equal-looking fingerprints may
//! denote different jobs, so the loader refuses the whole file. Either way
//! the caller falls back to a cold cache — decoding is all-or-nothing and
//! never panics on foreign bytes ([`PersistError::Truncated`] /
//! [`PersistError::Corrupt`] carry the offending byte offset).

use std::fmt;
use std::path::Path;

use afp_circuit::{BlockId, Shape};
use afp_layout::{Canvas, Cell, Floorplan, FloorplanMetrics};
use afp_metaheuristics::{BaselineResult, Candidate, StopReason};

use crate::cache::{CachedSolve, ResultCache};
use crate::fingerprint::{Fingerprint, TAG_LAYOUT_VERSION};

/// Version of the snapshot byte layout documented in the module docs. Bump
/// on any change to the header or record encoding.
pub const FORMAT_VERSION: u32 = 1;

/// Leading magic of every snapshot.
pub const MAGIC: [u8; 4] = *b"AFPC";

// Decode-time sanity caps: a corrupt length field must fail fast as
// `Corrupt`, not drive a multi-gigabyte allocation.
const MAX_ENTRIES: u64 = 1 << 20;
const MAX_STRING: u32 = 1 << 12;
const MAX_PLACED: u64 = 1 << 16;
const MAX_SEQ: u64 = 1 << 20;
const MAX_RECORD: u32 = 1 << 26;

/// Why a snapshot failed to save or load. Every load failure is recoverable
/// by falling back to a cold cache ([`crate::cache::CacheHandle::restore_or_cold`]).
#[derive(Debug)]
pub enum PersistError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file uses a snapshot layout this build cannot read.
    UnsupportedFormatVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The snapshot's fingerprints were produced by a different section-tag
    /// layout, so its keys are incomparable to this build's.
    TagLayoutMismatch {
        /// Tag-layout version found in the header.
        found: u32,
        /// This build's [`TAG_LAYOUT_VERSION`].
        current: u32,
    },
    /// The file ends before the structure it declares (byte offset of the
    /// first missing byte).
    Truncated {
        /// Offset at which more bytes were expected.
        offset: usize,
    },
    /// A decoded field is structurally impossible.
    Corrupt {
        /// Offset of the offending field.
        offset: usize,
        /// What was wrong with it.
        what: &'static str,
    },
    /// The trailing FNV-1a checksum does not match the bytes.
    ChecksumMismatch,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::BadMagic => write!(f, "not a cache snapshot (bad magic)"),
            PersistError::UnsupportedFormatVersion { found, supported } => write!(
                f,
                "snapshot format version {found} unsupported (this build reads {supported})"
            ),
            PersistError::TagLayoutMismatch { found, current } => write!(
                f,
                "snapshot fingerprint tag layout {found} incomparable to current {current}"
            ),
            PersistError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte {offset}")
            }
            PersistError::Corrupt { offset, what } => {
                write!(f, "snapshot corrupt at byte {offset}: {what}")
            }
            PersistError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A decoded snapshot: the saved cache shape plus its entries oldest-first
/// (insertion in that order reproduces recency and the warm-start index).
#[derive(Debug)]
pub struct Snapshot {
    /// Cache capacity at save time. Informational — a restore targets the
    /// receiving cache's own capacity.
    pub capacity: usize,
    /// Warm-index depth at save time. Informational, like `capacity`.
    pub warm_depth: usize,
    /// `(exact fingerprint, topology fingerprint, solve)` rows, oldest first.
    pub entries: Vec<(Fingerprint, Fingerprint, CachedSolve)>,
}

/// FNV-1a 64 over `bytes` — cheap, dependency-free corruption detection
/// (the threat model is torn writes and bit rot, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn fingerprint(&mut self, fp: Fingerprint) {
        self.u64(fp.0[0]);
        self.u64(fp.0[1]);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn usize_seq(&mut self, seq: &[usize]) {
        self.u64(seq.len() as u64);
        for &v in seq {
            self.u64(v as u64);
        }
    }
}

fn stop_code(stop: StopReason) -> u8 {
    match stop {
        StopReason::Completed => 0,
        StopReason::Deadline => 1,
        StopReason::Cancelled => 2,
        StopReason::Budget => 3,
        StopReason::FirstFeasible => 4,
    }
}

fn decode_stop(code: u8) -> Option<StopReason> {
    Some(match code {
        0 => StopReason::Completed,
        1 => StopReason::Deadline,
        2 => StopReason::Cancelled,
        3 => StopReason::Budget,
        4 => StopReason::FirstFeasible,
        _ => return None,
    })
}

fn encode_entry(w: &mut Writer, fp: Fingerprint, topology: Fingerprint, solve: &CachedSolve) {
    w.fingerprint(fp);
    w.fingerprint(topology);
    let result = &solve.result;
    w.str(&result.algorithm);
    w.f64_bits(result.reward);
    w.f64_bits(result.runtime_s);
    w.u64(result.evaluations as u64);
    w.u8(stop_code(result.stop));
    w.f64_bits(result.metrics.hpwl_um);
    w.f64_bits(result.metrics.dead_space);
    w.f64_bits(result.metrics.area_um2);
    w.f64_bits(result.metrics.aspect_ratio);
    let plan = &result.floorplan;
    w.f64_bits(plan.canvas().width_um);
    w.f64_bits(plan.canvas().height_um);
    w.u64(plan.grid_side() as u64);
    w.u64(plan.placed().len() as u64);
    for placed in plan.placed() {
        w.u64(placed.block.index() as u64);
        w.u64(placed.shape_index as u64);
        w.f64_bits(placed.shape.width_um);
        w.f64_bits(placed.shape.height_um);
        w.u64(placed.cell.x as u64);
        w.u64(placed.cell.y as u64);
    }
    match &solve.best {
        None => w.u8(0),
        Some(best) => {
            w.u8(1);
            w.usize_seq(&best.positive);
            w.usize_seq(&best.negative);
            w.usize_seq(&best.shape_choice);
        }
    }
}

/// Serializes a cache into the snapshot byte format.
pub(crate) fn snapshot_bytes(cache: &ResultCache) -> Vec<u8> {
    let entries = cache.entries_by_recency();
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u32(TAG_LAYOUT_VERSION);
    w.u64(cache.capacity() as u64);
    w.u64(cache.warm_depth() as u64);
    w.u64(entries.len() as u64);
    for (fp, topology, solve) in entries {
        let mut body = Writer { buf: Vec::new() };
        encode_entry(&mut body, fp, topology, solve);
        w.u32(body.buf.len() as u32);
        w.buf.extend_from_slice(&body.buf);
    }
    let checksum = fnv1a(&w.buf);
    w.u64(checksum);
    w.buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .offset
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(PersistError::Truncated {
                offset: self.bytes.len(),
            })?;
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64_bits(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn fingerprint(&mut self) -> Result<Fingerprint, PersistError> {
        Ok(Fingerprint([self.u64()?, self.u64()?]))
    }
    fn corrupt(&self, what: &'static str) -> PersistError {
        PersistError::Corrupt {
            offset: self.offset,
            what,
        }
    }
    fn str(&mut self) -> Result<String, PersistError> {
        let len = self.u32()?;
        if len > MAX_STRING {
            return Err(self.corrupt("string length over cap"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupt {
            offset: self.offset,
            what: "string not utf-8",
        })
    }
    fn usize_seq(&mut self) -> Result<Vec<usize>, PersistError> {
        let len = self.u64()?;
        if len > MAX_SEQ {
            return Err(self.corrupt("sequence length over cap"));
        }
        (0..len).map(|_| Ok(self.u64()? as usize)).collect()
    }
}

fn decode_entry(r: &mut Reader<'_>) -> Result<(Fingerprint, Fingerprint, CachedSolve), PersistError> {
    let fp = r.fingerprint()?;
    let topology = r.fingerprint()?;
    let algorithm = r.str()?;
    let reward = r.f64_bits()?;
    let runtime_s = r.f64_bits()?;
    let evaluations = r.u64()? as usize;
    let stop_byte = r.u8()?;
    let stop = decode_stop(stop_byte).ok_or_else(|| r.corrupt("unknown stop reason code"))?;
    let metrics = FloorplanMetrics {
        hpwl_um: r.f64_bits()?,
        dead_space: r.f64_bits()?,
        area_um2: r.f64_bits()?,
        aspect_ratio: r.f64_bits()?,
    };
    let width_um = r.f64_bits()?;
    let height_um = r.f64_bits()?;
    if !(width_um.is_finite() && height_um.is_finite() && width_um > 0.0 && height_um > 0.0) {
        return Err(r.corrupt("non-positive canvas"));
    }
    let grid_side = r.u64()?;
    if grid_side == 0 || grid_side > 1 << 16 {
        return Err(r.corrupt("grid side out of range"));
    }
    let placed_count = r.u64()?;
    if placed_count > MAX_PLACED {
        return Err(r.corrupt("placed count over cap"));
    }
    // Replaying `place` on an empty floorplan recomputes grid footprints and
    // µm rects through the same deterministic arithmetic that produced the
    // originals, so the rebuilt floorplan is bit-identical to the saved one.
    let mut plan = Floorplan::with_grid_side(
        Canvas {
            width_um,
            height_um,
        },
        grid_side as usize,
    );
    for _ in 0..placed_count {
        let block = BlockId(r.u64()? as usize);
        let shape_index = r.u64()? as usize;
        let shape = Shape::new(r.f64_bits()?, r.f64_bits()?);
        if !(shape.width_um.is_finite() && shape.height_um.is_finite()) {
            return Err(r.corrupt("non-finite shape"));
        }
        let cell = Cell::new(r.u64()? as usize, r.u64()? as usize);
        plan.place(block, shape_index, shape, cell)
            .map_err(|_| r.corrupt("unplaceable block record"))?;
    }
    let best = match r.u8()? {
        0 => None,
        1 => Some(Candidate {
            positive: r.usize_seq()?,
            negative: r.usize_seq()?,
            shape_choice: r.usize_seq()?,
        }),
        _ => return Err(r.corrupt("bad candidate flag")),
    };
    Ok((
        fp,
        topology,
        CachedSolve {
            result: BaselineResult {
                algorithm,
                floorplan: plan,
                metrics,
                reward,
                runtime_s,
                evaluations,
                stop,
            },
            best,
        },
    ))
}

/// Decodes snapshot bytes, enforcing the version-reject rules in the module
/// docs. All-or-nothing: any error means no partially decoded state escapes.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, PersistError> {
    let mut r = Reader { bytes, offset: 0 };
    // Header before checksum: a version bump must surface as the typed
    // version error, not as a checksum mismatch.
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let format = r.u32()?;
    if format != FORMAT_VERSION {
        return Err(PersistError::UnsupportedFormatVersion {
            found: format,
            supported: FORMAT_VERSION,
        });
    }
    let tag_layout = r.u32()?;
    if tag_layout != TAG_LAYOUT_VERSION {
        return Err(PersistError::TagLayoutMismatch {
            found: tag_layout,
            current: TAG_LAYOUT_VERSION,
        });
    }
    if bytes.len() < r.offset + 8 {
        return Err(PersistError::Truncated {
            offset: bytes.len(),
        });
    }
    let body_end = bytes.len() - 8;
    let declared = u64::from_le_bytes(bytes[body_end..].try_into().unwrap());
    if fnv1a(&bytes[..body_end]) != declared {
        return Err(PersistError::ChecksumMismatch);
    }
    let capacity = r.u64()? as usize;
    let warm_depth = r.u64()? as usize;
    let entry_count = r.u64()?;
    if entry_count > MAX_ENTRIES {
        return Err(r.corrupt("entry count over cap"));
    }
    let mut entries = Vec::with_capacity(entry_count.min(1024) as usize);
    for _ in 0..entry_count {
        let record_len = r.u32()?;
        if record_len > MAX_RECORD {
            return Err(r.corrupt("record length over cap"));
        }
        let record_start = r.offset;
        let entry = decode_entry(&mut r)?;
        if r.offset - record_start != record_len as usize {
            return Err(PersistError::Corrupt {
                offset: record_start,
                what: "record length does not match its body",
            });
        }
        entries.push(entry);
    }
    if r.offset != body_end {
        return Err(PersistError::Corrupt {
            offset: r.offset,
            what: "trailing bytes after last record",
        });
    }
    Ok(Snapshot {
        capacity,
        warm_depth,
        entries,
    })
}

/// Writes snapshot bytes to `path` atomically: a sibling temp file is
/// written and fsynced, then renamed over the target, so a crash mid-write
/// leaves either the old snapshot or none — never a truncated one. The temp
/// name is unique per write (pid + process-wide counter): concurrent
/// persists — an autosave racing an explicit `persist()`, or two engine
/// clones autosaving from concurrent `run_pending` calls — must not share a
/// temp inode, or interleaved writes could publish a corrupt snapshot.
pub(crate) fn write_snapshot_file(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{}.tmp", std::process::id(), seq));
    let tmp = std::path::PathBuf::from(tmp);
    let write = || -> std::io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        PersistError::Io(e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, RunControl, SaConfig};

    use crate::cache::CacheHandle;
    use crate::fingerprint::JobSpec;

    fn populated_handle() -> (CacheHandle, Vec<Fingerprint>) {
        let handle = CacheHandle::with_warm_depth(8, 2);
        let mut keys = Vec::new();
        for seed in [3u64, 5, 9] {
            let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), seed);
            let (result, best) = Baseline::Sa(SaConfig::small()).run_controlled_seeded(
                &spec.circuit,
                seed,
                &RunControl::unbounded(),
                None,
            );
            let key = spec.fingerprint();
            handle.insert(
                key,
                spec.topology_fingerprint(),
                CachedSolve { result, best },
            );
            keys.push(key);
        }
        (handle, keys)
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let (handle, keys) = populated_handle();
        let bytes = handle.snapshot_bytes();
        let fresh = CacheHandle::with_warm_depth(8, 2);
        assert_eq!(fresh.restore_bytes(&bytes).expect("restore"), keys.len());
        for key in &keys {
            let orig = handle.peek(*key).expect("original");
            let restored = fresh.peek(*key).expect("restored");
            assert_eq!(
                restored.result.reward.to_bits(),
                orig.result.reward.to_bits()
            );
            assert_eq!(restored.result.floorplan, orig.result.floorplan);
            assert_eq!(restored.result.evaluations, orig.result.evaluations);
            assert_eq!(restored.result.stop, orig.result.stop);
            assert_eq!(restored.result.algorithm, orig.result.algorithm);
            assert_eq!(
                restored.best.as_ref().map(|b| &b.positive),
                orig.best.as_ref().map(|b| &b.positive)
            );
        }
        // Warm index rebuilt: the same topology serves a hint after restore.
        let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 3);
        assert!(fresh.warm_hint(spec.topology_fingerprint()).is_some());
    }

    #[test]
    fn version_bumps_are_typed_rejections() {
        let (handle, _) = populated_handle();
        let bytes = handle.snapshot_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(&bad_magic),
            Err(PersistError::BadMagic)
        ));

        let mut bad_format = bytes.clone();
        bad_format[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bad_format),
            Err(PersistError::UnsupportedFormatVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ));

        let mut bad_tags = bytes;
        bad_tags[8..12].copy_from_slice(&(TAG_LAYOUT_VERSION + 7).to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bad_tags),
            Err(PersistError::TagLayoutMismatch { found, current })
                if found == TAG_LAYOUT_VERSION + 7 && current == TAG_LAYOUT_VERSION
        ));
    }

    #[test]
    fn truncation_and_corruption_are_typed_not_panics() {
        let (handle, _) = populated_handle();
        let bytes = handle.snapshot_bytes();
        // Every prefix decodes to a typed error, never a panic. (Short
        // prefixes fail the header; longer ones fail the checksum because
        // the trailing 8 bytes are then record bytes misread as a checksum.)
        for len in 0..bytes.len() {
            let fresh = CacheHandle::new(8);
            assert!(fresh.restore_bytes(&bytes[..len]).is_err(), "len {len}");
            assert!(fresh.is_empty(), "no partial state at len {len}");
        }
        // A flipped body byte is caught by the checksum.
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            decode_snapshot(&flipped),
            Err(PersistError::ChecksumMismatch)
        ));
        // Errors render through Display without panicking.
        let msg = format!("{}", decode_snapshot(&flipped).unwrap_err());
        assert!(msg.contains("checksum"));
    }

    #[test]
    fn file_round_trip_and_cold_fallbacks() {
        let (handle, keys) = populated_handle();
        let dir = std::env::temp_dir().join(format!("afp-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.afpc");
        handle.persist(&path).expect("persist");

        let fresh = CacheHandle::new(8);
        assert_eq!(fresh.restore_or_cold(&path), keys.len());
        assert!(fresh.peek(keys[0]).is_some());

        // A missing file is a cold start, not an error.
        let cold = CacheHandle::new(8);
        assert_eq!(cold.restore_or_cold(&dir.join("nope.afpc")), 0);
        assert!(cold.is_empty());
        // The typed path reports the io error.
        assert!(matches!(
            cold.restore(&dir.join("nope.afpc")),
            Err(PersistError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writes_publish_one_complete_snapshot() {
        // Two engine clones autosaving, or an autosave racing an explicit
        // persist(), write the same target concurrently. Unique temp names
        // keep each write's bytes intact: the published file is always one
        // writer's complete payload, never an interleaving.
        let dir = std::env::temp_dir().join(format!("afp-persist-race-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("race.afpc");
        let payloads: Vec<Vec<u8>> = (0u8..8).map(|i| vec![i; 4096]).collect();
        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| write_snapshot_file(&path, payload).expect("write"));
            }
        });
        let published = std::fs::read(&path).expect("read");
        assert!(
            payloads.contains(&published),
            "published snapshot must be one writer's bytes"
        );
        let leftover_tmp = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".tmp"));
        assert!(!leftover_tmp, "temp files must not outlive their write");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The job engine: sharded, cancellable, cache-backed solve execution.
//!
//! [`JobEngine`] accepts [`JobRequest`]s, keys each by its canonical
//! [`Fingerprint`], and drains the queue in batches with
//! [`JobEngine::run_pending`]: exact fingerprint hits are answered from the
//! [`ResultCache`] without touching a worker, and the remaining misses are
//! sharded across the engine's [`PoolHandle`] — one persistent process-wide
//! `WorkerPool` shared by every engine that clones the handle. Each miss runs
//! its baseline under its own [`RunControl`] (per-job deadline, evaluation
//! budget, and [`CancelToken`]) inside a `catch_unwind`, so a panicking solve
//! becomes [`JobState::Failed`] for that job alone — the pool, the cache, and
//! the other jobs in the batch are unaffected (the same [`ChainOutcome`]
//! machinery the multi-start races use).
//!
//! Only runs that stopped with [`StopReason::Completed`] are memoized: the
//! fingerprint does not encode deadlines or budgets, so an interrupted
//! best-so-far result is *not* the canonical solve for its key and caching it
//! would break the hit ≡ cold-solve bit-identity contract.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use afp_metaheuristics::common::Candidate;
use afp_metaheuristics::{
    panic_payload_message, BaselineResult, CancelToken, ChainOutcome, RunControl, StopReason,
};
use afp_par::PoolHandle;

use crate::cache::{CacheStats, CachedSolve, ResultCache};
use crate::fingerprint::{Fingerprint, JobSpec};

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the engine's pool (`0` = one per available hardware
    /// thread). Ignored by [`JobEngine::with_pool`], where the shared handle
    /// decides.
    pub workers: usize,
    /// Result-cache capacity in entries (minimum 1).
    pub cache_capacity: usize,
    /// Whether cache misses with a same-topology cached winner are seeded
    /// from that winner's layout instead of a random start. Warm starts make
    /// results depend on the engine's solve history (the hint is whatever
    /// same-topology entry was cached most recently), so disable this when
    /// reproducibility across engine instances matters more than solution
    /// quality.
    pub warm_start: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_capacity: 64,
            warm_start: true,
        }
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(usize);

impl JobId {
    /// The raw submission index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A solve request: the spec plus optional per-job run limits.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to solve.
    pub spec: JobSpec,
    /// Wall-clock deadline for this job, measured from when it starts running.
    pub deadline: Option<Duration>,
    /// Evaluation budget for this job.
    pub budget: Option<u64>,
}

impl JobRequest {
    /// An unlimited request for the given spec.
    pub fn new(spec: JobSpec) -> Self {
        JobRequest {
            spec,
            deadline: None,
            budget: None,
        }
    }
}

/// A finished job's payload.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The solve result.
    pub result: BaselineResult,
    /// Whether the result was served from the cache (no solver ran).
    pub cache_hit: bool,
    /// Whether the solver was warm-started from a cached same-topology winner.
    pub warm_started: bool,
    /// The job's canonical fingerprint (its cache key).
    pub fingerprint: Fingerprint,
}

/// Typed job lifecycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Submitted, not yet picked up by [`JobEngine::run_pending`].
    Queued,
    /// Claimed by the current `run_pending` batch.
    Running,
    /// Produced a result — from the cache or from a solver run (a run whose
    /// control tripped mid-flight still lands here, with
    /// [`BaselineResult::stop`] recording why it stopped early).
    Done(JobOutcome),
    /// Cancelled before producing any result.
    Cancelled,
    /// The solver panicked; the payload message is retained.
    Failed(String),
}

impl JobState {
    /// Whether the job has left the queue for good.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

#[derive(Debug)]
struct Job {
    request: JobRequest,
    state: JobState,
    token: CancelToken,
}

/// Sharded, cancellable, cache-backed solve engine.
///
/// Single-threaded in its own right: submission and `run_pending` happen on
/// the caller's thread, and only the solver work inside a batch is sharded
/// across the pool. Clone the [`PoolHandle`] into several engines to share
/// one process-wide worker pool between them.
#[derive(Debug)]
pub struct JobEngine {
    pool: PoolHandle,
    cache: ResultCache,
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    warm_start: bool,
}

impl JobEngine {
    /// Creates an engine with its own pool per `config`.
    pub fn new(config: &ServeConfig) -> Self {
        JobEngine::with_pool(config, PoolHandle::new(config.workers))
    }

    /// Creates an engine on a shared pool handle (`config.workers` ignored).
    pub fn with_pool(config: &ServeConfig, pool: PoolHandle) -> Self {
        JobEngine {
            pool,
            cache: ResultCache::new(config.cache_capacity),
            jobs: Vec::new(),
            queue: VecDeque::new(),
            warm_start: config.warm_start,
        }
    }

    /// The engine's pool handle (clone it to share the pool).
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of jobs waiting for [`JobEngine::run_pending`].
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a job and returns its id.
    pub fn submit(&mut self, request: JobRequest) -> JobId {
        let id = self.jobs.len();
        self.jobs.push(Job {
            request,
            state: JobState::Queued,
            token: CancelToken::new(),
        });
        self.queue.push_back(id);
        JobId(id)
    }

    /// The job's current state.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    pub fn state(&self, id: JobId) -> &JobState {
        &self.jobs[id.0].state
    }

    /// The job's outcome, if it reached [`JobState::Done`].
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        match &self.jobs[id.0].state {
            JobState::Done(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// Raises the job's cancel token. A queued job resolves to
    /// [`JobState::Cancelled`] when the queue next drains; a job already
    /// running observes the token at its control's next poll and stops with
    /// [`StopReason::Cancelled`] (landing in [`JobState::Done`] with its
    /// best-so-far result).
    pub fn cancel(&mut self, id: JobId) {
        self.jobs[id.0].token.cancel();
    }

    /// Raises every unfinished job's cancel token.
    pub fn cancel_all(&mut self) {
        for job in &mut self.jobs {
            if !job.state.is_terminal() {
                job.token.cancel();
            }
        }
    }

    /// Drains the queue: answers exact-fingerprint hits from the cache,
    /// shards the misses across the pool, and memoizes completed solves.
    /// Returns the number of jobs that reached a terminal state.
    ///
    /// Duplicates *within* a batch are deduplicated too: only the first job
    /// with a given fingerprint runs; the rest are held back and resolved
    /// from the cache once it finishes (or run in a follow-up round if the
    /// first run was interrupted and therefore not memoized).
    pub fn run_pending(&mut self) -> usize {
        let mut resolved = 0;
        loop {
            let batch: Vec<usize> = self.queue.drain(..).collect();
            if batch.is_empty() {
                return resolved;
            }

            // Phase 1 (serial, cheap): resolve cancellations and cache hits;
            // collect the misses with their keys and warm-start hints. A
            // repeat of a fingerprint already scheduled this round is pushed
            // back onto the queue — the next round answers it from the cache.
            let mut to_run: Vec<(usize, Fingerprint, Fingerprint, Option<Candidate>)> = Vec::new();
            for id in batch {
                if self.jobs[id].token.is_cancelled() {
                    self.jobs[id].state = JobState::Cancelled;
                    resolved += 1;
                    continue;
                }
                let fingerprint = self.jobs[id].request.spec.fingerprint();
                let topology = self.jobs[id].request.spec.topology_fingerprint();
                if let Some(cached) = self.cache.get(fingerprint) {
                    self.jobs[id].state = JobState::Done(JobOutcome {
                        result: cached.result.clone(),
                        cache_hit: true,
                        warm_started: false,
                        fingerprint,
                    });
                    resolved += 1;
                    continue;
                }
                if to_run.iter().any(|(_, fp, _, _)| *fp == fingerprint) {
                    self.queue.push_back(id);
                    continue;
                }
                let warm = if self.warm_start {
                    self.cache.warm_hint(topology)
                } else {
                    None
                };
                self.jobs[id].state = JobState::Running;
                to_run.push((id, fingerprint, topology, warm));
            }

            self.run_batch(&mut resolved, to_run);
        }
    }

    /// Phases 2 and 3 of one [`JobEngine::run_pending`] round: shard the
    /// misses across the pool, then fold outcomes into job states and the
    /// cache.
    fn run_batch(
        &mut self,
        resolved: &mut usize,
        to_run: Vec<(usize, Fingerprint, Fingerprint, Option<Candidate>)>,
    ) {
        if !to_run.is_empty() {
            // Phase 2 (sharded): one work item per miss. Jobs carry
            // heterogeneous circuits, so there is no shareable evaluator
            // state — each solve builds its own Problem/CostCache internally
            // and the per-worker state is unit.
            let work: Vec<_> = to_run
                .iter()
                .map(|(id, _, _, warm)| {
                    (
                        self.jobs[*id].request.spec.clone(),
                        self.jobs[*id].request.deadline,
                        self.jobs[*id].request.budget,
                        self.jobs[*id].token.clone(),
                        warm.clone(),
                    )
                })
                .collect();
            let workers = self.pool.workers().min(work.len()).max(1);
            let mut states = vec![(); workers];
            let never = CancelToken::new();
            let outcomes = self.pool.map_scoped_cancellable(
                &work,
                &mut states,
                &never,
                |_state, (spec, deadline, budget, token, warm)| {
                    if token.is_cancelled() {
                        return (ChainOutcome::Skipped, None, false);
                    }
                    let mut control = RunControl::unbounded().with_cancel_token(token.clone());
                    if let Some(after) = *deadline {
                        control = control.with_deadline(after);
                    }
                    if let Some(evals) = *budget {
                        control = control.with_budget(evals);
                    }
                    let warm_started = warm.is_some();
                    match catch_unwind(AssertUnwindSafe(|| {
                        spec.solver
                            .run_controlled_seeded(&spec.circuit, spec.seed, &control, warm.as_ref())
                    })) {
                        Ok((result, best)) => (ChainOutcome::Finished(result), best, warm_started),
                        Err(payload) => (
                            ChainOutcome::Panicked(panic_payload_message(payload)),
                            None,
                            false,
                        ),
                    }
                },
            );

            // Phase 3 (serial): fold outcomes back into job states and the
            // cache.
            for ((id, fingerprint, topology, _), slot) in to_run.into_iter().zip(outcomes) {
                let state = match slot {
                    Some((ChainOutcome::Finished(result), best, warm_started)) => {
                        if result.stop == StopReason::Completed {
                            self.cache
                                .insert(fingerprint, topology, CachedSolve {
                                    result: result.clone(),
                                    best,
                                });
                        }
                        JobState::Done(JobOutcome {
                            result,
                            cache_hit: false,
                            warm_started,
                            fingerprint,
                        })
                    }
                    Some((ChainOutcome::Panicked(message), _, _)) => JobState::Failed(message),
                    Some((ChainOutcome::Skipped, _, _)) | None => JobState::Cancelled,
                };
                self.jobs[id].state = state;
                *resolved += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, GaConfig, SaConfig};

    fn sa_spec(seed: u64) -> JobSpec {
        JobSpec::new(generators::ota5(), Baseline::Sa(SaConfig::small()), seed)
    }

    fn engine(workers: usize) -> JobEngine {
        JobEngine::new(&ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn exact_repeat_is_a_bit_identical_cache_hit() {
        let mut engine = engine(2);
        let cold = engine.submit(JobRequest::new(sa_spec(7)));
        let hot = engine.submit(JobRequest::new(sa_spec(7)));
        engine.run_pending();

        let cold = engine.outcome(cold).expect("cold done").clone();
        let hot = engine.outcome(hot).expect("hot done").clone();
        assert!(!cold.cache_hit);
        assert!(hot.cache_hit);
        assert_eq!(cold.fingerprint, hot.fingerprint);
        assert_eq!(cold.result.reward.to_bits(), hot.result.reward.to_bits());
        assert_eq!(cold.result.floorplan, hot.result.floorplan);
        assert_eq!(cold.result.evaluations, hot.result.evaluations);
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.cache_stats().insertions, 1);
    }

    #[test]
    fn cache_hits_survive_across_batches() {
        let mut engine = engine(1);
        let first = engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let second = engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let first = engine.outcome(first).unwrap().clone();
        let second = engine.outcome(second).unwrap();
        assert!(second.cache_hit);
        assert_eq!(
            first.result.reward.to_bits(),
            second.result.reward.to_bits()
        );
    }

    #[test]
    fn near_identical_requests_are_warm_started() {
        let mut engine = engine(1);
        engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();

        // Same topology, perturbed sizing: a miss, but warm-started.
        let mut resized = sa_spec(3);
        resized.circuit.blocks[0].area_um2 *= 1.05;
        let warm = engine.submit(JobRequest::new(resized));
        engine.run_pending();
        let outcome = engine.outcome(warm).expect("done");
        assert!(!outcome.cache_hit);
        assert!(outcome.warm_started);
        assert_eq!(engine.cache_stats().warm_seeds, 1);
        assert_eq!(
            outcome.result.floorplan.num_placed(),
            generators::ota5().num_blocks()
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let mut engine = JobEngine::new(&ServeConfig {
            workers: 1,
            warm_start: false,
            ..ServeConfig::default()
        });
        engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let mut resized = sa_spec(3);
        resized.circuit.blocks[0].area_um2 *= 1.05;
        let cold = engine.submit(JobRequest::new(resized));
        engine.run_pending();
        assert!(!engine.outcome(cold).unwrap().warm_started);
        assert_eq!(engine.cache_stats().warm_seeds, 0);
    }

    #[test]
    fn queued_jobs_cancel_before_running() {
        let mut engine = engine(1);
        let keep = engine.submit(JobRequest::new(sa_spec(1)));
        let drop = engine.submit(JobRequest::new(sa_spec(2)));
        engine.cancel(drop);
        assert!(matches!(engine.state(drop), JobState::Queued));
        engine.run_pending();
        assert!(matches!(engine.state(drop), JobState::Cancelled));
        assert!(matches!(engine.state(keep), JobState::Done(_)));
        // A cancelled job must not poison the cache.
        assert_eq!(engine.cache_stats().insertions, 1);
    }

    #[test]
    fn deadline_limited_jobs_finish_but_are_not_memoized() {
        let mut engine = engine(1);
        let spec = JobSpec::new(
            generators::ota5(),
            Baseline::Sa(SaConfig {
                iterations: 2_000_000,
                ..SaConfig::small()
            }),
            1,
        );
        let id = engine.submit(JobRequest {
            spec: spec.clone(),
            deadline: Some(Duration::from_millis(5)),
            budget: None,
        });
        engine.run_pending();
        let outcome = engine.outcome(id).expect("done");
        assert_eq!(outcome.result.stop, StopReason::Deadline);
        assert_eq!(engine.cache_stats().insertions, 0);
        // A repeat of the same spec is therefore a miss, not a hit serving
        // the truncated result.
        let again = engine.submit(JobRequest {
            spec,
            deadline: Some(Duration::from_millis(5)),
            budget: None,
        });
        engine.run_pending();
        assert!(!engine.outcome(again).unwrap().cache_hit);
    }

    #[test]
    fn budget_limited_jobs_report_budget_stop() {
        let mut engine = engine(1);
        let id = engine.submit(JobRequest {
            spec: sa_spec(1),
            deadline: None,
            budget: Some(10),
        });
        engine.run_pending();
        let outcome = engine.outcome(id).expect("done");
        assert_eq!(outcome.result.stop, StopReason::Budget);
    }

    #[test]
    fn heterogeneous_batch_matches_individual_runs() {
        // Jobs sharded across workers must equal the same solves run alone.
        let mut engine = engine(4);
        let specs = vec![
            sa_spec(1),
            JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 2),
            JobSpec::new(generators::ota5(), Baseline::Ga(GaConfig::small()), 3),
            sa_spec(4),
        ];
        let ids: Vec<JobId> = specs
            .iter()
            .map(|s| engine.submit(JobRequest::new(s.clone())))
            .collect();
        engine.run_pending();
        for (spec, id) in specs.iter().zip(ids) {
            let alone = spec
                .solver
                .run_controlled_seeded(&spec.circuit, spec.seed, &RunControl::unbounded(), None)
                .0;
            let sharded = &engine.outcome(id).expect("done").result;
            assert_eq!(alone.reward.to_bits(), sharded.reward.to_bits());
            assert_eq!(alone.floorplan, sharded.floorplan);
        }
    }

    #[test]
    fn engines_share_a_pool_through_the_handle() {
        let pool = PoolHandle::new(2);
        let config = ServeConfig::default();
        let mut a = JobEngine::with_pool(&config, pool.clone());
        let mut b = JobEngine::with_pool(&config, pool.clone());
        a.submit(JobRequest::new(sa_spec(1)));
        b.submit(JobRequest::new(sa_spec(2)));
        a.run_pending();
        b.run_pending();
        assert!(pool.stats().batches >= 2);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        // `moves_per_temperature: 0` makes SA's cooling schedule divide by
        // zero; the healthy job beside it must still finish and be cached.
        let mut engine = engine(2);
        let bad = engine.submit(JobRequest::new(JobSpec::new(
            generators::ota3(),
            Baseline::Sa(SaConfig {
                moves_per_temperature: 0,
                ..SaConfig::small()
            }),
            1,
        )));
        let good = engine.submit(JobRequest::new(sa_spec(1)));
        engine.run_pending();
        assert!(matches!(engine.state(bad), JobState::Failed(_)));
        assert!(matches!(engine.state(good), JobState::Done(_)));
        assert_eq!(engine.cache_stats().insertions, 1);
    }
}

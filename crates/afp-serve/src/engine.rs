//! The job engine: sharded, cancellable, cache-backed solve execution.
//!
//! [`JobEngine`] accepts [`JobRequest`]s, keys each by its canonical
//! [`Fingerprint`], and drains the queue in batches with
//! [`JobEngine::run_pending`]: exact fingerprint hits are answered from the
//! shared [`CacheHandle`] without touching a worker, and the remaining misses
//! are sharded across the engine's [`PoolHandle`] — one persistent
//! process-wide `WorkerPool` shared by every engine that clones the handle.
//! Each miss runs its baseline under its own [`RunControl`] (per-job
//! deadline, evaluation budget, and [`CancelToken`]) inside a
//! `catch_unwind`, so a panicking solve becomes [`JobState::Failed`] for
//! that job alone — the pool, the cache, and the other jobs in the batch are
//! unaffected (the same [`ChainOutcome`] machinery the multi-start races
//! use).
//!
//! Only runs that stopped with [`StopReason::Completed`] are memoized: the
//! fingerprint does not encode deadlines or budgets, so an interrupted
//! best-so-far result is *not* the canonical solve for its key and caching it
//! would break the hit ≡ cold-solve bit-identity contract.
//!
//! ## Sharing and live admission
//!
//! The engine is a cheap [`Clone`]: clones share one job table, queue,
//! cache, and pool. Internally the job table sits behind a mutex that is
//! held only for the serial bookkeeping phases of a round — never across
//! solver work — so [`JobEngine::try_submit`] from another thread admits a
//! job *while a batch is in flight* instead of blocking until the batch
//! ends. [`crate::daemon::ServeDaemon`] builds its drain loop on exactly
//! this property. Admission is bounded by [`ServeConfig::queue_depth`]; a
//! full queue is a typed [`RejectReason::QueueFull`], not a panic or a
//! silent drop.
//!
//! Two clones may call `run_pending` concurrently; rounds then claim
//! disjoint batches and every outcome is still bit-identical and correctly
//! counted, but the same fingerprint can cost two (identical) solves if it
//! is queued while another clone is already running it. The daemon avoids
//! this by draining from a single thread.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use afp_metaheuristics::common::Candidate;
use afp_metaheuristics::{
    panic_payload_message, BaselineResult, CancelToken, ChainOutcome, RunControl, StopReason,
};
use afp_par::PoolHandle;

use crate::cache::{CacheHandle, CacheStats, CachedSolve, DEFAULT_WARM_DEPTH};
use crate::fingerprint::{Fingerprint, JobSpec};
use crate::persist::PersistError;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the engine's pool (`0` = one per available hardware
    /// thread). Ignored by [`JobEngine::with_pool`], where the shared handle
    /// decides.
    pub workers: usize,
    /// Result-cache capacity in entries (minimum 1).
    pub cache_capacity: usize,
    /// Whether cache misses with a same-topology cached winner are seeded
    /// from that winner's layout instead of a random start. Warm starts make
    /// results depend on the engine's solve history (the hint is whatever
    /// same-topology entry was cached most recently), so disable this when
    /// reproducibility across engine instances matters more than solution
    /// quality.
    pub warm_start: bool,
    /// Entries the warm-start index retains per topology key (minimum 1).
    /// Deeper indexes survive eviction pressure: evicting the most recent
    /// same-topology entry falls back to the next instead of going cold.
    pub warm_depth: usize,
    /// Maximum queued (not yet running) jobs; `0` = unbounded. When the
    /// bound is reached, [`JobEngine::try_submit`] returns
    /// [`RejectReason::QueueFull`] instead of admitting.
    pub queue_depth: usize,
    /// Where to persist cache snapshots. `None` disables persistence; the
    /// explicit [`JobEngine::persist`]/[`JobEngine::restore_or_cold`] hooks
    /// and the eviction-threshold autosave all use this path.
    pub persist_path: Option<PathBuf>,
    /// Autosave the cache after this many evictions since the last save
    /// (`0` disables the autosave; explicit hooks still work). Eviction
    /// count is the natural trigger: entries only become unreachable-after-
    /// restart when they are about to be pushed out.
    pub persist_every_evictions: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_capacity: 64,
            warm_start: true,
            warm_depth: DEFAULT_WARM_DEPTH,
            queue_depth: 0,
            persist_path: None,
            persist_every_evictions: 64,
        }
    }
}

/// Handle to a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(usize);

impl JobId {
    /// The raw submission index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The queue is at its configured depth bound.
    QueueFull {
        /// Jobs currently queued.
        pending: usize,
        /// The configured [`ServeConfig::queue_depth`].
        bound: usize,
    },
    /// The daemon is shutting down and no longer admits work.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull { pending, bound } => {
                write!(f, "queue full ({pending} pending, bound {bound})")
            }
            RejectReason::ShuttingDown => write!(f, "daemon is shutting down"),
        }
    }
}

impl std::error::Error for RejectReason {}

/// A solve request: the spec plus optional per-job run limits.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// What to solve.
    pub spec: JobSpec,
    /// Wall-clock deadline for this job, measured from when it starts running.
    pub deadline: Option<Duration>,
    /// Evaluation budget for this job.
    pub budget: Option<u64>,
}

impl JobRequest {
    /// An unlimited request for the given spec.
    pub fn new(spec: JobSpec) -> Self {
        JobRequest {
            spec,
            deadline: None,
            budget: None,
        }
    }
}

/// A finished job's payload.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The solve result.
    pub result: BaselineResult,
    /// Whether the result was served from the cache (no solver ran).
    pub cache_hit: bool,
    /// Whether the solver was warm-started from a cached same-topology winner.
    pub warm_started: bool,
    /// The job's canonical fingerprint (its cache key).
    pub fingerprint: Fingerprint,
}

/// Typed job lifecycle.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Submitted, not yet picked up by [`JobEngine::run_pending`].
    Queued,
    /// Claimed by the current `run_pending` batch.
    Running,
    /// Produced a result — from the cache or from a solver run (a run whose
    /// control tripped mid-flight still lands here, with
    /// [`BaselineResult::stop`] recording why it stopped early).
    Done(JobOutcome),
    /// Cancelled before producing any result.
    Cancelled,
    /// The solver panicked; the payload message is retained.
    Failed(String),
}

impl JobState {
    /// Whether the job has left the queue for good.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done(_) | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

#[derive(Debug)]
struct Job {
    request: JobRequest,
    fingerprint: Fingerprint,
    topology: Fingerprint,
    state: JobState,
    token: CancelToken,
}

#[derive(Debug, Default)]
struct EngineState {
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    evictions_at_last_persist: u64,
}

/// Sharded, cancellable, cache-backed solve engine.
///
/// Cloning is cheap and clones share everything: job table, queue, cache,
/// pool. Solver work inside a batch is sharded across the pool; all
/// bookkeeping happens on whichever thread calls into the engine, under a
/// short-held internal lock (see the module docs for the admission
/// guarantees this buys).
#[derive(Debug, Clone)]
pub struct JobEngine {
    pool: PoolHandle,
    cache: CacheHandle,
    state: Arc<Mutex<EngineState>>,
    warm_start: bool,
    queue_depth: usize,
    persist_path: Option<PathBuf>,
    persist_every_evictions: u64,
}

/// A batch-round entry scheduled to actually run a solver.
struct Scheduled {
    job: usize,
    fingerprint: Fingerprint,
    topology: Fingerprint,
    warm: Option<Candidate>,
    spec: JobSpec,
    deadline: Option<Duration>,
    budget: Option<u64>,
    token: CancelToken,
}

impl JobEngine {
    /// Creates an engine with its own pool and cache per `config`.
    pub fn new(config: &ServeConfig) -> Self {
        JobEngine::with_pool(config, PoolHandle::new(config.workers))
    }

    /// Creates an engine on a shared pool handle (`config.workers` ignored).
    pub fn with_pool(config: &ServeConfig, pool: PoolHandle) -> Self {
        let cache = CacheHandle::with_warm_depth(config.cache_capacity, config.warm_depth);
        JobEngine::with_cache(config, pool, cache)
    }

    /// Creates an engine on a shared pool *and* a shared cache
    /// (`config.workers`, `config.cache_capacity` and `config.warm_depth`
    /// ignored — the handles decide). N engines built this way memoize into
    /// one store: a solve completed by any of them is a hit for all.
    pub fn with_cache(config: &ServeConfig, pool: PoolHandle, cache: CacheHandle) -> Self {
        JobEngine {
            pool,
            cache,
            state: Arc::new(Mutex::new(EngineState::default())),
            warm_start: config.warm_start,
            queue_depth: config.queue_depth,
            persist_path: config.persist_path.clone(),
            persist_every_evictions: config.persist_every_evictions,
        }
    }

    /// The engine's pool handle (clone it to share the pool).
    pub fn pool(&self) -> &PoolHandle {
        &self.pool
    }

    /// The engine's cache handle (clone it to share the cache).
    pub fn cache(&self) -> &CacheHandle {
        &self.cache
    }

    /// Result-cache counters (shared across every engine on this cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of jobs waiting for [`JobEngine::run_pending`].
    pub fn pending(&self) -> usize {
        self.lock().queue.len()
    }

    /// Total jobs ever submitted to this engine (valid `JobId` range).
    pub fn job_count(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Enqueues a job, honoring the queue-depth bound.
    pub fn try_submit(&self, request: JobRequest) -> Result<JobId, RejectReason> {
        let fingerprint = request.spec.fingerprint();
        let topology = request.spec.topology_fingerprint();
        let mut state = self.lock();
        if self.queue_depth != 0 && state.queue.len() >= self.queue_depth {
            return Err(RejectReason::QueueFull {
                pending: state.queue.len(),
                bound: self.queue_depth,
            });
        }
        let id = state.jobs.len();
        state.jobs.push(Job {
            request,
            fingerprint,
            topology,
            state: JobState::Queued,
            token: CancelToken::new(),
        });
        state.queue.push_back(id);
        Ok(JobId(id))
    }

    /// Enqueues a job and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if admission is rejected (only possible with a nonzero
    /// [`ServeConfig::queue_depth`]) — use [`JobEngine::try_submit`] when a
    /// bound is configured.
    pub fn submit(&self, request: JobRequest) -> JobId {
        self.try_submit(request).expect("job admission rejected")
    }

    /// The job's current state (a snapshot — the engine may move on).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this engine.
    pub fn state(&self, id: JobId) -> JobState {
        self.lock().jobs[id.0].state.clone()
    }

    /// The job's outcome, if it reached [`JobState::Done`].
    pub fn outcome(&self, id: JobId) -> Option<JobOutcome> {
        match &self.lock().jobs[id.0].state {
            JobState::Done(outcome) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Snapshot of every job's `(id, state)`, in submission order.
    pub fn states(&self) -> Vec<(JobId, JobState)> {
        self.lock()
            .jobs
            .iter()
            .enumerate()
            .map(|(i, job)| (JobId(i), job.state.clone()))
            .collect()
    }

    /// Raises the job's cancel token. A queued job resolves to
    /// [`JobState::Cancelled`] when the queue next drains; a job already
    /// running observes the token at its control's next poll and stops with
    /// [`StopReason::Cancelled`] (landing in [`JobState::Done`] with its
    /// best-so-far result).
    pub fn cancel(&self, id: JobId) {
        self.lock().jobs[id.0].token.cancel();
    }

    /// Raises every unfinished job's cancel token.
    pub fn cancel_all(&self) {
        for job in &mut self.lock().jobs {
            if !job.state.is_terminal() {
                job.token.cancel();
            }
        }
    }

    /// Immediately resolves every still-queued job to
    /// [`JobState::Cancelled`] and empties the queue, without touching
    /// running jobs. Returns the cancelled ids — the daemon's graceful
    /// shutdown uses this to flush the backlog before finishing the
    /// in-flight batch.
    pub fn cancel_queued(&self) -> Vec<JobId> {
        let mut state = self.lock();
        let queued: Vec<usize> = state.queue.drain(..).collect();
        let mut cancelled = Vec::with_capacity(queued.len());
        for id in queued {
            state.jobs[id].state = JobState::Cancelled;
            cancelled.push(JobId(id));
        }
        cancelled
    }

    /// Drains the queue: answers exact-fingerprint hits from the cache,
    /// shards the misses across the pool, and memoizes completed solves.
    /// Returns the number of jobs that reached a terminal state. Runs
    /// rounds until the queue is observed empty, so jobs admitted while a
    /// batch is in flight are drained by the same call.
    ///
    /// Duplicates *within* a batch are deduplicated: only the first job with
    /// a given fingerprint runs, and when it completes the duplicates are
    /// served from its memoized result in the same round — one solve, one
    /// miss, and a counted hit per duplicate. Only if the first run is
    /// interrupted (and therefore not memoized) are the duplicates
    /// re-enqueued to run for real in a later round.
    pub fn run_pending(&self) -> usize {
        let mut resolved = 0;
        while self.run_round(&mut resolved) {}
        resolved
    }

    /// Runs one batch round. Returns `false` when the queue was empty.
    fn run_round(&self, resolved: &mut usize) -> bool {
        // Phase 1 (serial, short-locked): claim the current queue, resolve
        // cancellations and cache hits, pick one lead per fingerprint and
        // group the round's duplicates behind it. Everything a solve needs
        // is cloned out of the job table here so phase 2 runs lock-free.
        let mut to_run: Vec<Scheduled> = Vec::new();
        let mut followers: Vec<(usize, usize)> = Vec::new(); // (job, lead index)
        {
            let mut state = self.lock();
            let batch: Vec<usize> = state.queue.drain(..).collect();
            if batch.is_empty() {
                return false;
            }
            for id in batch {
                if state.jobs[id].token.is_cancelled() {
                    state.jobs[id].state = JobState::Cancelled;
                    *resolved += 1;
                    continue;
                }
                let fingerprint = state.jobs[id].fingerprint;
                let topology = state.jobs[id].topology;
                if let Some(lead) = to_run.iter().position(|s| s.fingerprint == fingerprint) {
                    // In-flight duplicate: resolved in phase 3 from the
                    // lead's result. No cache lookup is counted for it yet —
                    // its one counted lookup is the hit it becomes.
                    state.jobs[id].state = JobState::Running;
                    followers.push((id, lead));
                    continue;
                }
                if let Some(cached) = self.cache.get(fingerprint) {
                    state.jobs[id].state = JobState::Done(JobOutcome {
                        result: cached.result,
                        cache_hit: true,
                        warm_started: false,
                        fingerprint,
                    });
                    *resolved += 1;
                    continue;
                }
                let warm = if self.warm_start {
                    self.cache.warm_hint(topology)
                } else {
                    None
                };
                state.jobs[id].state = JobState::Running;
                to_run.push(Scheduled {
                    job: id,
                    fingerprint,
                    topology,
                    warm,
                    spec: state.jobs[id].request.spec.clone(),
                    deadline: state.jobs[id].request.deadline,
                    budget: state.jobs[id].request.budget,
                    token: state.jobs[id].token.clone(),
                });
            }
        }

        self.run_batch(resolved, to_run, followers);
        self.maybe_autopersist();
        true
    }

    /// Phases 2 and 3 of one round: shard the misses across the pool
    /// (holding no engine lock, so submissions stay admissible), then fold
    /// outcomes into job states, the cache, and the round's duplicates.
    fn run_batch(&self, resolved: &mut usize, to_run: Vec<Scheduled>, followers: Vec<(usize, usize)>) {
        // Each lead's memoized solve is also held here for the round's
        // followers: the cache copy can be LRU-evicted by later inserts in
        // the same round (a round can complete more distinct fingerprints
        // than the cache holds), so followers must never depend on it.
        let mut memoized: Vec<Option<CachedSolve>> = vec![None; to_run.len()];
        if !to_run.is_empty() {
            // Phase 2 (sharded, lock-free): one work item per miss. Jobs
            // carry heterogeneous circuits, so there is no shareable
            // evaluator state — each solve builds its own Problem/CostCache
            // internally and the per-worker state is unit.
            let workers = self.pool.workers().min(to_run.len()).max(1);
            let mut states = vec![(); workers];
            let never = CancelToken::new();
            let outcomes = self.pool.map_scoped_cancellable(
                &to_run,
                &mut states,
                &never,
                |_state, scheduled| {
                    if scheduled.token.is_cancelled() {
                        return (ChainOutcome::Skipped, None, false);
                    }
                    let mut control =
                        RunControl::unbounded().with_cancel_token(scheduled.token.clone());
                    if let Some(after) = scheduled.deadline {
                        control = control.with_deadline(after);
                    }
                    if let Some(evals) = scheduled.budget {
                        control = control.with_budget(evals);
                    }
                    let warm_started = scheduled.warm.is_some();
                    match catch_unwind(AssertUnwindSafe(|| {
                        scheduled.spec.solver.run_controlled_seeded(
                            &scheduled.spec.circuit,
                            scheduled.spec.seed,
                            &control,
                            scheduled.warm.as_ref(),
                        )
                    })) {
                        Ok((result, best)) => (ChainOutcome::Finished(result), best, warm_started),
                        Err(payload) => (
                            ChainOutcome::Panicked(panic_payload_message(payload)),
                            None,
                            false,
                        ),
                    }
                },
            );

            // Phase 3 (serial): fold outcomes back into job states and the
            // cache. Memoization happens before follower resolution so the
            // duplicates count as hits against a completed solve.
            let mut state = self.lock();
            for (idx, (scheduled, slot)) in to_run.iter().zip(outcomes).enumerate() {
                let job_state = match slot {
                    Some((ChainOutcome::Finished(result), best, warm_started)) => {
                        if result.stop == StopReason::Completed {
                            let solve = CachedSolve {
                                result: result.clone(),
                                best,
                            };
                            self.cache
                                .insert(scheduled.fingerprint, scheduled.topology, solve.clone());
                            memoized[idx] = Some(solve);
                        }
                        JobState::Done(JobOutcome {
                            result,
                            cache_hit: false,
                            warm_started,
                            fingerprint: scheduled.fingerprint,
                        })
                    }
                    Some((ChainOutcome::Panicked(message), _, _)) => JobState::Failed(message),
                    Some((ChainOutcome::Skipped, _, _)) | None => JobState::Cancelled,
                };
                state.jobs[scheduled.job].state = job_state;
                *resolved += 1;
            }

            // The round's duplicates: a memoized lead answers them as
            // counted hits right now; an interrupted or failed lead sends
            // them back to the queue to run for real next round (their one
            // counted lookup happens then).
            for (id, lead) in followers {
                if state.jobs[id].token.is_cancelled() {
                    state.jobs[id].state = JobState::Cancelled;
                    *resolved += 1;
                } else if let Some(solve) = &memoized[lead] {
                    let fingerprint = to_run[lead].fingerprint;
                    // Served from the held clone, not a cache re-fetch: the
                    // entry may already be evicted. The counted hit (and
                    // recency refresh, when resident) still happens so
                    // hits + misses == submissions reconciles exactly.
                    self.cache.count_follower_hit(fingerprint);
                    state.jobs[id].state = JobState::Done(JobOutcome {
                        result: solve.result.clone(),
                        cache_hit: true,
                        warm_started: false,
                        fingerprint,
                    });
                    *resolved += 1;
                } else {
                    state.jobs[id].state = JobState::Queued;
                    state.queue.push_back(id);
                }
            }
        }
    }

    /// Saves the cache to the configured [`ServeConfig::persist_path`].
    /// Returns `Ok(false)` when no path is configured.
    pub fn persist(&self) -> Result<bool, PersistError> {
        match &self.persist_path {
            Some(path) => self.cache.persist(path).map(|()| true),
            None => Ok(false),
        }
    }

    /// Restores the cache from the configured path, treating any failure —
    /// no path, missing file, corruption, version mismatch — as a cold
    /// start. Returns the number of entries restored (resident after the
    /// restore — squeezing a snapshot into a smaller cache drops the
    /// oldest entries).
    pub fn restore_or_cold(&self) -> usize {
        let restored = match &self.persist_path {
            Some(path) => self.cache.restore_or_cold(path),
            None => return 0,
        };
        // Evictions incurred while squeezing the snapshot into a smaller
        // cache are not serving-time churn; rebaseline so they don't trip
        // the eviction-threshold autosave right after startup.
        self.lock().evictions_at_last_persist = self.cache.stats().evictions;
        restored
    }

    /// Autosave trigger: persists when `persist_every_evictions` or more
    /// evictions happened since the last save. A failed autosave is skipped
    /// silently (the next threshold retries); persistence is an
    /// optimization, never worth failing a batch over.
    fn maybe_autopersist(&self) {
        if self.persist_path.is_none() || self.persist_every_evictions == 0 {
            return;
        }
        let evictions = self.cache.stats().evictions;
        let mut state = self.lock();
        if evictions.saturating_sub(state.evictions_at_last_persist)
            >= self.persist_every_evictions
        {
            // Mark first: a failing disk must not retry on every round.
            state.evictions_at_last_persist = evictions;
            drop(state);
            let _ = self.persist();
        }
    }

    fn lock(&self) -> MutexGuard<'_, EngineState> {
        // Poisoning is recovered: job-table updates are single statements
        // and solver panics are caught in phase 2 before they can unwind
        // through an engine lock.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_metaheuristics::{Baseline, GaConfig, SaConfig};

    fn sa_spec(seed: u64) -> JobSpec {
        JobSpec::new(generators::ota5(), Baseline::Sa(SaConfig::small()), seed)
    }

    fn engine(workers: usize) -> JobEngine {
        JobEngine::new(&ServeConfig {
            workers,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn exact_repeat_is_a_bit_identical_cache_hit() {
        let engine = engine(2);
        let cold = engine.submit(JobRequest::new(sa_spec(7)));
        let hot = engine.submit(JobRequest::new(sa_spec(7)));
        engine.run_pending();

        let cold = engine.outcome(cold).expect("cold done");
        let hot = engine.outcome(hot).expect("hot done");
        assert!(!cold.cache_hit);
        assert!(hot.cache_hit);
        assert_eq!(cold.fingerprint, hot.fingerprint);
        assert_eq!(cold.result.reward.to_bits(), hot.result.reward.to_bits());
        assert_eq!(cold.result.floorplan, hot.result.floorplan);
        assert_eq!(cold.result.evaluations, hot.result.evaluations);
        // The in-flight duplicate is served from the completing lead, not
        // deferred into a second counted miss: exactly one solve, one miss,
        // one hit for two submissions.
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn duplicates_survive_lead_eviction_within_their_own_round() {
        // Regression: a round that completes more distinct fingerprints than
        // the cache holds LRU-evicts an early lead's entry before its
        // duplicates resolve. The duplicate must be served from the lead's
        // held result — a cache re-fetch of the evicted entry used to panic
        // and kill the daemon's drain thread.
        let engine = JobEngine::new(&ServeConfig {
            workers: 2,
            cache_capacity: 1,
            ..ServeConfig::default()
        });
        let lead = engine.submit(JobRequest::new(sa_spec(1)));
        let evictor = engine.submit(JobRequest::new(sa_spec(2)));
        let follower = engine.submit(JobRequest::new(sa_spec(1)));
        engine.run_pending();

        let lead = engine.outcome(lead).expect("lead done");
        let evictor = engine.outcome(evictor).expect("evictor done");
        let follower = engine.outcome(follower).expect("follower done");
        assert!(!lead.cache_hit);
        assert!(!evictor.cache_hit);
        assert!(follower.cache_hit);
        assert_eq!(
            lead.result.reward.to_bits(),
            follower.result.reward.to_bits()
        );
        assert_eq!(lead.result.floorplan, follower.result.floorplan);
        // The lead's entry is gone, yet the counts still reconcile:
        // three submissions, two misses, one hit.
        let stats = engine.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.insertions, stats.evictions),
            (1, 2, 2, 1)
        );
        assert_eq!(engine.cache().len(), 1);
    }

    #[test]
    fn in_flight_duplicates_of_an_interrupted_lead_rerun_instead_of_hitting() {
        let engine = engine(2);
        let spec = JobSpec::new(
            generators::ota5(),
            Baseline::Sa(SaConfig {
                iterations: 2_000_000,
                ..SaConfig::small()
            }),
            1,
        );
        let limited = |spec: &JobSpec| JobRequest {
            spec: spec.clone(),
            deadline: Some(Duration::from_millis(5)),
            budget: None,
        };
        let lead = engine.submit(limited(&spec));
        let follower = engine.submit(limited(&spec));
        engine.run_pending();
        // The lead was deadline-stopped, so nothing was memoized and the
        // follower ran for real in a follow-up round.
        let lead = engine.outcome(lead).expect("lead done");
        let follower = engine.outcome(follower).expect("follower done");
        assert_eq!(lead.result.stop, StopReason::Deadline);
        assert_eq!(follower.result.stop, StopReason::Deadline);
        assert!(!follower.cache_hit);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (0, 2, 0));
    }

    #[test]
    fn cache_hits_survive_across_batches() {
        let engine = engine(1);
        let first = engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let second = engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let first = engine.outcome(first).unwrap();
        let second = engine.outcome(second).unwrap();
        assert!(second.cache_hit);
        assert_eq!(
            first.result.reward.to_bits(),
            second.result.reward.to_bits()
        );
    }

    #[test]
    fn near_identical_requests_are_warm_started() {
        let engine = engine(1);
        engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();

        // Same topology, perturbed sizing: a miss, but warm-started.
        let mut resized = sa_spec(3);
        resized.circuit.blocks[0].area_um2 *= 1.05;
        let warm = engine.submit(JobRequest::new(resized));
        engine.run_pending();
        let outcome = engine.outcome(warm).expect("done");
        assert!(!outcome.cache_hit);
        assert!(outcome.warm_started);
        assert_eq!(engine.cache_stats().warm_seeds, 1);
        assert_eq!(
            outcome.result.floorplan.num_placed(),
            generators::ota5().num_blocks()
        );
    }

    #[test]
    fn warm_start_can_be_disabled() {
        let engine = JobEngine::new(&ServeConfig {
            workers: 1,
            warm_start: false,
            ..ServeConfig::default()
        });
        engine.submit(JobRequest::new(sa_spec(3)));
        engine.run_pending();
        let mut resized = sa_spec(3);
        resized.circuit.blocks[0].area_um2 *= 1.05;
        let cold = engine.submit(JobRequest::new(resized));
        engine.run_pending();
        assert!(!engine.outcome(cold).unwrap().warm_started);
        assert_eq!(engine.cache_stats().warm_seeds, 0);
    }

    #[test]
    fn queued_jobs_cancel_before_running() {
        let engine = engine(1);
        let keep = engine.submit(JobRequest::new(sa_spec(1)));
        let drop = engine.submit(JobRequest::new(sa_spec(2)));
        engine.cancel(drop);
        assert!(matches!(engine.state(drop), JobState::Queued));
        engine.run_pending();
        assert!(matches!(engine.state(drop), JobState::Cancelled));
        assert!(matches!(engine.state(keep), JobState::Done(_)));
        // A cancelled job must not poison the cache.
        assert_eq!(engine.cache_stats().insertions, 1);
    }

    #[test]
    fn deadline_limited_jobs_finish_but_are_not_memoized() {
        let engine = engine(1);
        let spec = JobSpec::new(
            generators::ota5(),
            Baseline::Sa(SaConfig {
                iterations: 2_000_000,
                ..SaConfig::small()
            }),
            1,
        );
        let id = engine.submit(JobRequest {
            spec: spec.clone(),
            deadline: Some(Duration::from_millis(5)),
            budget: None,
        });
        engine.run_pending();
        let outcome = engine.outcome(id).expect("done");
        assert_eq!(outcome.result.stop, StopReason::Deadline);
        assert_eq!(engine.cache_stats().insertions, 0);
        // A repeat of the same spec is therefore a miss, not a hit serving
        // the truncated result.
        let again = engine.submit(JobRequest {
            spec,
            deadline: Some(Duration::from_millis(5)),
            budget: None,
        });
        engine.run_pending();
        assert!(!engine.outcome(again).unwrap().cache_hit);
    }

    #[test]
    fn budget_limited_jobs_report_budget_stop() {
        let engine = engine(1);
        let id = engine.submit(JobRequest {
            spec: sa_spec(1),
            deadline: None,
            budget: Some(10),
        });
        engine.run_pending();
        let outcome = engine.outcome(id).expect("done");
        assert_eq!(outcome.result.stop, StopReason::Budget);
    }

    #[test]
    fn heterogeneous_batch_matches_individual_runs() {
        // Jobs sharded across workers must equal the same solves run alone.
        let engine = engine(4);
        let specs = vec![
            sa_spec(1),
            JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 2),
            JobSpec::new(generators::ota5(), Baseline::Ga(GaConfig::small()), 3),
            sa_spec(4),
        ];
        let ids: Vec<JobId> = specs
            .iter()
            .map(|s| engine.submit(JobRequest::new(s.clone())))
            .collect();
        engine.run_pending();
        for (spec, id) in specs.iter().zip(ids) {
            let alone = spec
                .solver
                .run_controlled_seeded(&spec.circuit, spec.seed, &RunControl::unbounded(), None)
                .0;
            let sharded = engine.outcome(id).expect("done").result;
            assert_eq!(alone.reward.to_bits(), sharded.reward.to_bits());
            assert_eq!(alone.floorplan, sharded.floorplan);
        }
    }

    #[test]
    fn engines_share_a_pool_through_the_handle() {
        let pool = PoolHandle::new(2);
        let config = ServeConfig::default();
        let a = JobEngine::with_pool(&config, pool.clone());
        let b = JobEngine::with_pool(&config, pool.clone());
        a.submit(JobRequest::new(sa_spec(1)));
        b.submit(JobRequest::new(sa_spec(2)));
        a.run_pending();
        b.run_pending();
        assert!(pool.stats().batches >= 2);
    }

    #[test]
    fn engines_share_a_cache_through_the_handle() {
        // Cross-engine memoization: a solve completed by engine A is a
        // bit-identical hit for engine B.
        let pool = PoolHandle::new(2);
        let cache = CacheHandle::new(16);
        let config = ServeConfig::default();
        let a = JobEngine::with_cache(&config, pool.clone(), cache.clone());
        let b = JobEngine::with_cache(&config, pool, cache.clone());
        let cold = a.submit(JobRequest::new(sa_spec(9)));
        a.run_pending();
        let hot = b.submit(JobRequest::new(sa_spec(9)));
        b.run_pending();
        let cold = a.outcome(cold).expect("cold done");
        let hot = b.outcome(hot).expect("hot done");
        assert!(!cold.cache_hit);
        assert!(hot.cache_hit);
        assert_eq!(cold.result.reward.to_bits(), hot.result.reward.to_bits());
        assert_eq!(cold.result.floorplan, hot.result.floorplan);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn queue_depth_bound_rejects_with_a_typed_reason() {
        let engine = JobEngine::new(&ServeConfig {
            workers: 1,
            queue_depth: 2,
            ..ServeConfig::default()
        });
        assert!(engine.try_submit(JobRequest::new(sa_spec(1))).is_ok());
        assert!(engine.try_submit(JobRequest::new(sa_spec(2))).is_ok());
        let rejected = engine.try_submit(JobRequest::new(sa_spec(3)));
        assert_eq!(
            rejected.unwrap_err(),
            RejectReason::QueueFull {
                pending: 2,
                bound: 2
            }
        );
        // Draining frees the queue for new admissions.
        engine.run_pending();
        assert!(engine.try_submit(JobRequest::new(sa_spec(3))).is_ok());
        let message = format!("{}", RejectReason::QueueFull { pending: 2, bound: 2 });
        assert!(message.contains("queue full"));
    }

    #[test]
    fn cancel_queued_flushes_the_backlog_without_touching_running_jobs() {
        let engine = engine(1);
        let a = engine.submit(JobRequest::new(sa_spec(1)));
        let b = engine.submit(JobRequest::new(sa_spec(2)));
        let flushed = engine.cancel_queued();
        assert_eq!(flushed, vec![a, b]);
        assert_eq!(engine.pending(), 0);
        assert!(matches!(engine.state(a), JobState::Cancelled));
        assert_eq!(engine.run_pending(), 0);
    }

    #[test]
    fn a_panicking_job_fails_alone() {
        // `moves_per_temperature: 0` makes SA's cooling schedule divide by
        // zero; the healthy job beside it must still finish and be cached.
        let engine = engine(2);
        let bad = engine.submit(JobRequest::new(JobSpec::new(
            generators::ota3(),
            Baseline::Sa(SaConfig {
                moves_per_temperature: 0,
                ..SaConfig::small()
            }),
            1,
        )));
        let good = engine.submit(JobRequest::new(sa_spec(1)));
        engine.run_pending();
        assert!(matches!(engine.state(bad), JobState::Failed(_)));
        assert!(matches!(engine.state(good), JobState::Done(_)));
        assert_eq!(engine.cache_stats().insertions, 1);
    }

    #[test]
    fn persistence_hooks_round_trip_through_the_configured_path() {
        let dir = std::env::temp_dir().join(format!("afp-engine-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("engine.afpc");
        let config = ServeConfig {
            workers: 1,
            persist_path: Some(path.clone()),
            ..ServeConfig::default()
        };
        let engine = JobEngine::new(&config);
        let cold = engine.submit(JobRequest::new(sa_spec(11)));
        engine.run_pending();
        assert!(engine.persist().expect("persist"));

        let fresh = JobEngine::new(&config);
        assert_eq!(fresh.restore_or_cold(), 1);
        let hot = fresh.submit(JobRequest::new(sa_spec(11)));
        fresh.run_pending();
        let cold = engine.outcome(cold).expect("cold done");
        let hot = fresh.outcome(hot).expect("hot done");
        assert!(hot.cache_hit);
        assert_eq!(cold.result.reward.to_bits(), hot.result.reward.to_bits());
        assert_eq!(cold.result.floorplan, hot.result.floorplan);

        // Unconfigured engines report the no-op; damaged files are cold.
        let unconfigured = JobEngine::new(&ServeConfig::default());
        assert!(!unconfigured.persist().expect("no-op"));
        std::fs::write(&path, b"AFPCgarbage").expect("damage");
        let damaged = JobEngine::new(&config);
        assert_eq!(damaged.restore_or_cold(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_evictions_do_not_trip_the_autosave_threshold() {
        let dir = std::env::temp_dir().join(format!("afp-engine-restore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("engine.afpc");
        let big = JobEngine::new(&ServeConfig {
            workers: 1,
            persist_path: Some(path.clone()),
            ..ServeConfig::default()
        });
        for seed in 1..=3 {
            big.submit(JobRequest::new(sa_spec(seed)));
        }
        big.run_pending();
        assert!(big.persist().expect("persist"));

        // Squeezing the three-entry snapshot into a capacity-1 cache evicts
        // twice during restore; those evictions are not serving-time churn
        // and must not count toward persist_every_evictions.
        let small = JobEngine::new(&ServeConfig {
            workers: 1,
            cache_capacity: 1,
            persist_path: Some(path.clone()),
            persist_every_evictions: 1,
            ..ServeConfig::default()
        });
        assert_eq!(small.restore_or_cold(), 1, "only the most recent entry fits");
        assert_eq!(small.cache_stats().evictions, 2);

        // A batch with no new evictions must not autosave.
        std::fs::remove_file(&path).expect("rm snapshot");
        let hot = small.submit(JobRequest::new(sa_spec(3)));
        small.run_pending();
        assert!(small.outcome(hot).expect("done").cache_hit);
        assert!(
            !path.exists(),
            "restore-time evictions tripped the autosave threshold"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Canonical problem fingerprints.
//!
//! A [`Fingerprint`] is a 128-bit structural hash over everything that
//! determines a solve's outcome: the netlist topology (block inventory,
//! connectivity, constraint set), the derived shape tables and canvas, the
//! evaluation configuration (spacing, reward weights), the optimizer
//! configuration, and the seed. Two [`JobSpec`]s with equal fingerprints
//! produce bit-identical [`BaselineResult`]s — that is the contract that
//! makes the result cache safe — so the encoder must be *canonical*:
//! everything semantically irrelevant is normalized away before hashing.
//!
//! Canonicalization rules:
//!
//! * **Free-text names are excluded.** Circuit, block, and net names are
//!   labels for humans; renaming `vout` to `n17` changes nothing about the
//!   floorplanning problem. Pin terminal names *are* hashed — they identify
//!   distinct connection points on a block.
//! * **Field order cannot matter** because the encoder walks struct fields in
//!   one fixed order with a domain tag per section; there is no serialized
//!   text form (and hence no field-order or float-formatting ambiguity) in
//!   the first place. Floats are hashed by canonical bit pattern: `-0.0`
//!   folds onto `0.0` and every NaN folds onto one canonical NaN, so a value
//!   that round-trips through `Display`/`parse` (Rust's shortest round-trip
//!   formatting) fingerprints identically.
//! * **Unordered collections are sorted.** Pins within a net, nets within a
//!   circuit, pairs within a symmetry group, blocks within an alignment
//!   group, and constraints within the set are all order-normalized, because
//!   the evaluation stack treats them as sets.
//! * **Non-semantic knobs are excluded.** Optimizer `workers` counts are not
//!   hashed (results are bit-identical at any worker count), and the
//!   config-embedded `seed` is ignored in favor of [`JobSpec::seed`], which
//!   is what [`Baseline::run_controlled_seeded`] actually uses.
//!
//! [`BaselineResult`]: afp_metaheuristics::BaselineResult
//! [`Baseline::run_controlled_seeded`]: afp_metaheuristics::Baseline::run_controlled_seeded

use std::fmt;

use afp_circuit::{Axis, Circuit, Constraint, InternalPlacement, RoutingDirection, ShapeSet};
use afp_layout::{Canvas, SpacingConfig};
use afp_metaheuristics::{Baseline, GaConfig, Problem, PsoConfig, SaConfig, SpRlConfig};

/// A 128-bit canonical problem fingerprint (the cache key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Streaming two-lane mixer behind [`Fingerprint`].
///
/// Each 64-bit word is folded into both lanes with lane-distinct odd
/// multipliers and a running position counter, so permuted input streams
/// hash differently while the two lanes stay decorrelated. This is a
/// structural-identity hash (like the evaluator's candidate keys), not a
/// cryptographic one: the threat model is accidental collision between
/// near-identical problem instances, not an adversary.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    lanes: [u64; 2],
    count: u64,
}

impl FingerprintHasher {
    const MULT: [u64; 2] = [0x9e37_79b9_7f4a_7c15, 0xc2b2_ae3d_27d4_eb4f];

    /// Creates a hasher with fixed initial lane values.
    pub fn new() -> Self {
        FingerprintHasher {
            lanes: [0x243f_6a88_85a3_08d3, 0x1319_8a2e_0370_7344],
            count: 0,
        }
    }

    /// Folds one 64-bit word into both lanes.
    pub fn write_u64(&mut self, value: u64) {
        self.count = self.count.wrapping_add(1);
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let mut x = *lane ^ value.wrapping_add(self.count.wrapping_mul(0x9e37_79b9)) ;
            x = x.wrapping_mul(Self::MULT[i]);
            x ^= x >> 29;
            x = x.wrapping_mul(Self::MULT[1 - i]);
            x ^= x >> 32;
            *lane = x;
        }
    }

    /// Writes a one-byte domain tag separating encoder sections.
    pub fn write_tag(&mut self, tag: u8) {
        self.write_u64(0x7461_6700_0000_0000 | u64::from(tag));
    }

    /// Writes a `usize` (as `u64`).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Writes a float by canonical bit pattern: `-0.0` hashes as `0.0` and
    /// every NaN hashes as the one canonical NaN, so values that compare
    /// equal (or are equally undefined) fingerprint identically regardless
    /// of how they were produced or formatted.
    pub fn write_f64(&mut self, value: f64) {
        let bits = if value.is_nan() {
            f64::NAN.to_bits()
        } else if value == 0.0 {
            0f64.to_bits()
        } else {
            value.to_bits()
        };
        self.write_u64(bits);
    }

    /// Writes a semantically meaningful string (length-prefixed bytes).
    /// Only used where the text identifies structure — pin terminals —
    /// never for display names.
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        for chunk in value.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Finalizes the two lanes into a [`Fingerprint`].
    pub fn finish(mut self) -> Fingerprint {
        let count = self.count;
        self.write_u64(count ^ 0x5f5f_6669_6e5f_5f21);
        Fingerprint(self.lanes)
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

/// Version of the section-tag layout below. Bump this whenever a tag is
/// renumbered, removed, or a fingerprinted field changes meaning — anything
/// that makes old fingerprints incomparable to new ones. Persisted cache
/// snapshots embed this version in their header ([`crate::persist`]) and a
/// loader rejects a mismatch as a typed error instead of serving results
/// keyed by a stale hash function.
pub const TAG_LAYOUT_VERSION: u32 = 1;

// Section tags. Gaps left between groups so new sections slot in without
// renumbering (renumbering would silently invalidate persisted caches).
const TAG_BLOCKS: u8 = 0x01;
const TAG_NETS: u8 = 0x02;
const TAG_CONSTRAINTS: u8 = 0x03;
const TAG_ASPECT: u8 = 0x04;
const TAG_SHAPES: u8 = 0x10;
const TAG_CANVAS: u8 = 0x11;
const TAG_SPACING: u8 = 0x12;
const TAG_WEIGHTS: u8 = 0x13;
const TAG_SOLVER: u8 = 0x20;
const TAG_SEED: u8 = 0x21;

fn axis_index(axis: Axis) -> u64 {
    match axis {
        Axis::Horizontal => 0,
        Axis::Vertical => 1,
    }
}

fn routing_index(dir: RoutingDirection) -> u64 {
    match dir {
        RoutingDirection::Horizontal => 0,
        RoutingDirection::Vertical => 1,
        RoutingDirection::Any => 2,
    }
}

fn placement_index(placement: InternalPlacement) -> u64 {
    match placement {
        InternalPlacement::CommonCentroid => 0,
        InternalPlacement::Interdigitated => 1,
        InternalPlacement::Row => 2,
        InternalPlacement::Single => 3,
    }
}

/// Hashes a sub-structure into a standalone digest, so unordered collections
/// can be canonicalized by sorting their element digests.
fn digest<F: FnOnce(&mut FingerprintHasher)>(encode: F) -> [u64; 2] {
    let mut hasher = FingerprintHasher::new();
    encode(&mut hasher);
    hasher.finish().0
}

/// Encodes the discrete structure of a circuit: block inventory (kind,
/// geometry parameters, connectivity counts), nets as sorted pin sets, and
/// the order-normalized constraint set. Names are excluded (see module docs).
fn write_structure(hasher: &mut FingerprintHasher, circuit: &Circuit, with_geometry: bool) {
    hasher.write_tag(TAG_BLOCKS);
    hasher.write_usize(circuit.blocks.len());
    for block in &circuit.blocks {
        hasher.write_usize(block.kind.index());
        hasher.write_u64(routing_index(block.routing_direction));
        hasher.write_u64(placement_index(block.internal_placement));
        hasher.write_u64(u64::from(block.pin_count));
        hasher.write_usize(block.devices.len());
        if with_geometry {
            hasher.write_f64(block.area_um2);
            hasher.write_f64(block.stripe_width_um);
        }
    }

    hasher.write_tag(TAG_NETS);
    hasher.write_usize(circuit.nets.len());
    let mut net_digests: Vec<[u64; 2]> = circuit
        .nets
        .iter()
        .map(|net| {
            let mut pins: Vec<(usize, &str)> = net
                .pins
                .iter()
                .map(|pin| (pin.block.index(), pin.terminal.as_str()))
                .collect();
            pins.sort();
            digest(|h| {
                h.write_u64(net.class as u64);
                h.write_usize(pins.len());
                for (block, terminal) in pins {
                    h.write_usize(block);
                    h.write_str(terminal);
                }
            })
        })
        .collect();
    net_digests.sort();
    for d in net_digests {
        hasher.write_u64(d[0]);
        hasher.write_u64(d[1]);
    }

    hasher.write_tag(TAG_CONSTRAINTS);
    let mut constraint_digests: Vec<[u64; 2]> = circuit
        .constraints
        .iter()
        .map(|constraint| match constraint {
            Constraint::Symmetry(group) => {
                let mut pairs: Vec<(usize, usize)> = group
                    .pairs
                    .iter()
                    .map(|&(a, b)| {
                        let (a, b) = (a.index(), b.index());
                        (a.min(b), a.max(b))
                    })
                    .collect();
                pairs.sort();
                let mut selfs: Vec<usize> =
                    group.self_symmetric.iter().map(|b| b.index()).collect();
                selfs.sort_unstable();
                digest(|h| {
                    h.write_tag(1);
                    h.write_u64(axis_index(group.axis));
                    h.write_usize(pairs.len());
                    for (a, b) in pairs {
                        h.write_usize(a);
                        h.write_usize(b);
                    }
                    h.write_usize(selfs.len());
                    for b in selfs {
                        h.write_usize(b);
                    }
                })
            }
            Constraint::Alignment(group) => {
                let mut blocks: Vec<usize> = group.blocks.iter().map(|b| b.index()).collect();
                blocks.sort_unstable();
                digest(|h| {
                    h.write_tag(2);
                    h.write_u64(axis_index(group.axis));
                    h.write_usize(blocks.len());
                    for b in blocks {
                        h.write_usize(b);
                    }
                })
            }
        })
        .collect();
    hasher.write_usize(constraint_digests.len());
    constraint_digests.sort();
    for d in constraint_digests {
        hasher.write_u64(d[0]);
        hasher.write_u64(d[1]);
    }

    hasher.write_tag(TAG_ASPECT);
    match circuit.target_aspect_ratio {
        Some(ratio) => {
            hasher.write_u64(1);
            hasher.write_f64(ratio);
        }
        None => hasher.write_u64(0),
    }
}

/// Encodes the evaluation context the solvers actually see: per-block shape
/// tables, canvas, spacing, and reward weights — all derived exactly as
/// [`Problem::new`] derives them.
fn write_evaluation_context(hasher: &mut FingerprintHasher, circuit: &Circuit) {
    hasher.write_tag(TAG_SHAPES);
    for block in &circuit.blocks {
        for shape in ShapeSet::for_block(block).shapes() {
            hasher.write_f64(shape.width_um);
            hasher.write_f64(shape.height_um);
        }
    }

    hasher.write_tag(TAG_CANVAS);
    let canvas = Canvas::for_circuit(circuit);
    hasher.write_f64(canvas.width_um);
    hasher.write_f64(canvas.height_um);

    hasher.write_tag(TAG_SPACING);
    let spacing = SpacingConfig::default();
    hasher.write_f64(spacing.track_pitch_um);
    hasher.write_f64(spacing.tracks_per_net);
    hasher.write_f64(spacing.max_relative_margin);

    hasher.write_tag(TAG_WEIGHTS);
    let weights = Problem::new(circuit).weights;
    hasher.write_f64(weights.alpha);
    hasher.write_f64(weights.beta);
    hasher.write_f64(weights.gamma);
    hasher.write_f64(weights.violation_penalty);
}

fn write_sa_config(hasher: &mut FingerprintHasher, cfg: &SaConfig) {
    hasher.write_usize(cfg.iterations);
    hasher.write_f64(cfg.initial_temperature);
    hasher.write_f64(cfg.cooling);
    hasher.write_usize(cfg.moves_per_temperature);
    hasher.write_f64(cfg.locality_bias);
    hasher.write_usize(cfg.restarts);
    hasher.write_f64(cfg.reheat_factor);
}

fn write_ga_config(hasher: &mut FingerprintHasher, cfg: &GaConfig) {
    hasher.write_usize(cfg.population);
    hasher.write_usize(cfg.generations);
    hasher.write_f64(cfg.mutation_rate);
    hasher.write_usize(cfg.tournament);
    hasher.write_usize(cfg.elitism);
}

fn write_pso_config(hasher: &mut FingerprintHasher, cfg: &PsoConfig) {
    hasher.write_usize(cfg.particles);
    hasher.write_usize(cfg.iterations);
    hasher.write_f64(cfg.inertia);
    hasher.write_f64(cfg.cognitive);
    hasher.write_f64(cfg.social);
}

fn write_sp_rl_config(hasher: &mut FingerprintHasher, cfg: &SpRlConfig) {
    hasher.write_usize(cfg.episodes);
    hasher.write_usize(cfg.moves_per_episode);
    hasher.write_f64(cfg.learning_rate);
}

/// Encodes the solver choice and its semantic knobs. Worker counts and the
/// config-embedded seed are deliberately excluded (module docs).
fn write_solver(hasher: &mut FingerprintHasher, solver: &Baseline) {
    hasher.write_tag(TAG_SOLVER);
    match solver {
        Baseline::Sa(cfg) => {
            hasher.write_u64(1);
            write_sa_config(hasher, cfg);
        }
        Baseline::Ga(cfg) => {
            hasher.write_u64(2);
            write_ga_config(hasher, cfg);
        }
        Baseline::Pso(cfg) => {
            hasher.write_u64(3);
            write_pso_config(hasher, cfg);
        }
        Baseline::RlSa(cfg) => {
            hasher.write_u64(4);
            write_sp_rl_config(hasher, &cfg.warmup);
            write_sa_config(hasher, &cfg.refinement);
        }
        Baseline::SpRl(cfg) => {
            hasher.write_u64(5);
            write_sp_rl_config(hasher, cfg);
        }
    }
}

/// A complete, self-contained solve request: the circuit, which baseline to
/// run (with its configuration), and the seed.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The circuit to floorplan.
    pub circuit: Circuit,
    /// The baseline optimizer and its configuration.
    pub solver: Baseline,
    /// RNG seed passed to [`Baseline::run_controlled_seeded`]
    /// (overrides any seed embedded in the solver config).
    ///
    /// [`Baseline::run_controlled_seeded`]: afp_metaheuristics::Baseline::run_controlled_seeded
    pub seed: u64,
}

impl JobSpec {
    /// Creates a job spec.
    pub fn new(circuit: Circuit, solver: Baseline, seed: u64) -> Self {
        JobSpec {
            circuit,
            solver,
            seed,
        }
    }

    /// The exact cache key: structure + evaluation context + solver + seed.
    /// Equal fingerprints imply bit-identical solve results.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut hasher = FingerprintHasher::new();
        write_structure(&mut hasher, &self.circuit, true);
        write_evaluation_context(&mut hasher, &self.circuit);
        write_solver(&mut hasher, &self.solver);
        hasher.write_tag(TAG_SEED);
        hasher.write_u64(self.seed);
        hasher.finish()
    }

    /// The topology-only fingerprint: block inventory and connectivity and
    /// constraints, but no block geometry, shape tables, solver config, or
    /// seed. Two specs with equal topology fingerprints describe the same
    /// circuit graph with (possibly) perturbed sizings — exactly the case
    /// where a cached winner's sequence-pair candidate is a valid warm start,
    /// because candidates encode block orderings and shape indices, both of
    /// which transfer across re-sizings of the same block set.
    pub fn topology_fingerprint(&self) -> Fingerprint {
        let mut hasher = FingerprintHasher::new();
        write_structure(&mut hasher, &self.circuit, false);
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::{generators, NetClass, Pin};

    fn spec(circuit: Circuit) -> JobSpec {
        JobSpec::new(circuit, Baseline::Sa(SaConfig::small()), 7)
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let a = spec(generators::ota5()).fingerprint();
        let b = spec(generators::ota5()).fingerprint();
        assert_eq!(a, b);
        assert_eq!(a.to_string().len(), 32);
    }

    #[test]
    fn distinct_inputs_get_distinct_fingerprints() {
        let base = spec(generators::ota5());
        let mut seen = vec![base.fingerprint()];
        let mut check = |s: &JobSpec| {
            let fp = s.fingerprint();
            assert!(!seen.contains(&fp), "collision: {fp}");
            seen.push(fp);
        };

        // Different circuit.
        check(&spec(generators::ota3()));
        // Different seed.
        check(&JobSpec { seed: 8, ..base.clone() });
        // Different solver family.
        check(&JobSpec {
            solver: Baseline::Ga(GaConfig::small()),
            ..base.clone()
        });
        // Different solver knob.
        let mut cfg = SaConfig::small();
        cfg.iterations += 1;
        check(&JobSpec {
            solver: Baseline::Sa(cfg),
            ..base.clone()
        });
        // Perturbed block sizing.
        let mut resized = base.clone();
        resized.circuit.blocks[0].area_um2 *= 1.01;
        check(&resized);
    }

    #[test]
    fn names_do_not_affect_the_fingerprint() {
        let base = spec(generators::ota5());
        let mut renamed = base.clone();
        renamed.circuit.name = "anything-else".into();
        for block in &mut renamed.circuit.blocks {
            block.name = format!("x{}", block.id.index());
        }
        for net in &mut renamed.circuit.nets {
            net.name = format!("n{}", net.id.index());
        }
        assert_eq!(base.fingerprint(), renamed.fingerprint());
        assert_eq!(base.topology_fingerprint(), renamed.topology_fingerprint());
    }

    #[test]
    fn collection_order_does_not_affect_the_fingerprint() {
        let base = spec(generators::ota5());
        let mut shuffled = base.clone();
        // Reverse the net list, each net's pin list, each symmetry group's
        // pair list (and the endpoints within a pair), and the constraint
        // list — all sets as far as evaluation is concerned.
        shuffled.circuit.nets.reverse();
        for net in &mut shuffled.circuit.nets {
            net.pins.reverse();
        }
        let mut constraints: Vec<Constraint> =
            shuffled.circuit.constraints.iter().cloned().collect();
        constraints.reverse();
        for constraint in &mut constraints {
            if let Constraint::Symmetry(group) = constraint {
                group.pairs.reverse();
                for pair in &mut group.pairs {
                    *pair = (pair.1, pair.0);
                }
                group.self_symmetric.reverse();
            }
        }
        shuffled.circuit.constraints = constraints.into_iter().collect();
        assert_eq!(base.fingerprint(), shuffled.fingerprint());
    }

    #[test]
    fn float_formatting_round_trip_is_canonical() {
        // Rust's f64 Display is shortest-round-trip: parsing the printed form
        // recovers the exact bits, so a spec that went through text (config
        // file, RPC payload) fingerprints identically.
        let base = spec(generators::ota5());
        let mut round_tripped = base.clone();
        for block in &mut round_tripped.circuit.blocks {
            block.area_um2 = block.area_um2.to_string().parse().unwrap();
            block.stripe_width_um = block.stripe_width_um.to_string().parse().unwrap();
        }
        assert_eq!(base.fingerprint(), round_tripped.fingerprint());

        // Negative zero and NaN fold onto their canonical forms.
        let mut h1 = FingerprintHasher::new();
        h1.write_f64(0.0);
        h1.write_f64(f64::NAN);
        let mut h2 = FingerprintHasher::new();
        h2.write_f64(-0.0);
        h2.write_f64(-f64::NAN);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn workers_and_embedded_seed_are_not_part_of_the_key() {
        // Worker counts never change results (bit-identical EvalPool), and
        // the embedded seed is overridden by JobSpec::seed.
        let mut a_cfg = GaConfig::small();
        a_cfg.workers = 1;
        a_cfg.seed = 1;
        let mut b_cfg = a_cfg.clone();
        b_cfg.workers = 4;
        b_cfg.seed = 99;
        let a = JobSpec::new(generators::ota5(), Baseline::Ga(a_cfg), 7);
        let b = JobSpec::new(generators::ota5(), Baseline::Ga(b_cfg), 7);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn topology_fingerprint_ignores_sizing_but_not_connectivity() {
        let base = spec(generators::ota5());

        let mut resized = base.clone();
        resized.circuit.blocks[0].area_um2 *= 1.25;
        let mut retuned = resized.clone();
        retuned.solver = Baseline::Ga(GaConfig::small());
        retuned.seed = 99;
        assert_ne!(base.fingerprint(), resized.fingerprint());
        assert_eq!(base.topology_fingerprint(), resized.topology_fingerprint());
        assert_eq!(base.topology_fingerprint(), retuned.topology_fingerprint());

        let mut rewired = base.clone();
        let extra_pin = Pin::new(rewired.circuit.blocks[0].id, "extra");
        rewired.circuit.nets[0].pins.push(extra_pin);
        assert_ne!(base.topology_fingerprint(), rewired.topology_fingerprint());

        let mut reclassed = base.clone();
        reclassed.circuit.nets[0].class = NetClass::Clock;
        assert_ne!(
            base.topology_fingerprint(),
            reclassed.topology_fingerprint()
        );
    }

    #[test]
    fn permuted_streams_hash_differently() {
        let mut h1 = FingerprintHasher::new();
        h1.write_u64(1);
        h1.write_u64(2);
        let mut h2 = FingerprintHasher::new();
        h2.write_u64(2);
        h2.write_u64(1);
        assert_ne!(h1.finish(), h2.finish());

        // Empty-vs-empty prefix boundary: ["ab", ""] vs ["a", "b"].
        let mut h3 = FingerprintHasher::new();
        h3.write_str("ab");
        h3.write_str("");
        let mut h4 = FingerprintHasher::new();
        h4.write_str("a");
        h4.write_str("b");
        assert_ne!(h3.finish(), h4.finish());
    }
}

//! # afp-serve — floorplanning as a service
//!
//! The serve layer turns the repository's optimizer stack into a solve
//! *service*: callers submit jobs, the engine answers repeats from a cache
//! and shards the rest across a persistent worker pool. Five pieces:
//!
//! * [`fingerprint`] — the canonical problem [`Fingerprint`]: a 128-bit
//!   structural hash over netlist topology, shape tables, constraint set,
//!   optimizer configuration, and seed. Canonicalization (names excluded,
//!   unordered collections sorted, floats bit-normalized, non-semantic knobs
//!   dropped) guarantees that two [`JobSpec`]s hash equal exactly when their
//!   solves are bit-identical.
//! * [`cache`] — the content-addressed [`ResultCache`]: bounded,
//!   LRU-evicting, with hit/miss/eviction counters ([`CacheStats`]) and a
//!   K-deep per-topology warm-start index. Exact fingerprint hits return the
//!   memoized [`BaselineResult`] verbatim; near-identical requests (same
//!   topology fingerprint) are seeded from a cached winner's layout. The
//!   cloneable [`CacheHandle`] shares one store across N engines.
//! * [`engine`] — the [`JobEngine`]: typed job lifecycle
//!   ([`JobState`]: Queued → Running → Done/Cancelled/Failed), typed
//!   admission ([`RejectReason`]), per-job
//!   [`RunControl`](afp_metaheuristics::RunControl) (deadline, budget,
//!   cancel token), per-job panic isolation
//!   via the multi-start races' `ChainOutcome` machinery, and batch execution
//!   sharded over a process-wide [`afp_par::PoolHandle`] — with admission
//!   locks scoped so submits never block on a running batch.
//! * [`daemon`] — the [`ServeDaemon`]: a drain thread that keeps
//!   `run_pending` running as jobs stream in, with graceful shutdown and a
//!   per-job [`ShutdownReport`].
//! * [`persist`] — versioned, checksummed binary cache snapshots
//!   ([`PersistError`]), so a warm cache survives a restart; version or
//!   corruption problems degrade to a cold start, never a panic.
//!
//! The whole design leans on one property of the layers below: every solver
//! is deterministic for its inputs, at any worker count. That is what makes
//! a cached result a *correct* answer — not a stale approximation — for any
//! future request with the same fingerprint. The engine protects the
//! contract by memoizing only runs that stopped with
//! [`StopReason::Completed`](afp_metaheuristics::StopReason): a
//! deadline-truncated best-so-far is never served for a repeat. Warm starts
//! trade a little of this purity for quality (results then depend on what
//! the engine solved earlier) and can be disabled per engine
//! ([`ServeConfig::warm_start`]). See `ARCHITECTURE.md` § "The serve layer"
//! for the full determinism argument and `docs/TUNING.md` for the cache and
//! concurrency knobs.
//!
//! # Example
//!
//! ```
//! use afp_circuit::generators;
//! use afp_metaheuristics::{Baseline, SaConfig};
//! use afp_serve::{JobEngine, JobRequest, JobSpec, ServeConfig};
//!
//! let engine = JobEngine::new(&ServeConfig { workers: 2, ..Default::default() });
//! let spec = JobSpec::new(generators::ota3(), Baseline::Sa(SaConfig::small()), 7);
//! let cold = engine.submit(JobRequest::new(spec.clone()));
//! let hot = engine.submit(JobRequest::new(spec));
//! engine.run_pending();
//!
//! let cold = engine.outcome(cold).unwrap();
//! let hot = engine.outcome(hot).unwrap();
//! assert!(hot.cache_hit && !cold.cache_hit);
//! assert_eq!(cold.result.reward.to_bits(), hot.result.reward.to_bits());
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod daemon;
pub mod engine;
pub mod fingerprint;
pub mod persist;

pub use cache::{CacheHandle, CacheStats, CachedSolve, ResultCache};
pub use daemon::{ServeDaemon, ShutdownReport};
pub use engine::{
    JobEngine, JobId, JobOutcome, JobRequest, JobState, RejectReason, ServeConfig,
};
pub use fingerprint::{Fingerprint, FingerprintHasher, JobSpec};
pub use persist::PersistError;

// Re-exported so example code and downstream callers can name the result
// type without depending on afp-metaheuristics directly.
pub use afp_metaheuristics::BaselineResult;

//! Functional blocks: the placeable units of analog floorplanning.
//!
//! The structure-recognition step (paper §IV-B, [21]) groups primitive devices
//! into functional structures — current mirrors, differential pairs, cascodes,
//! and so on. Each block carries the information the R-GCN node features need
//! (paper §IV-C): area, internal stripe width, terminal routing direction, pin
//! count and a 28-way one-hot functional-structure encoding.

use serde::{Deserialize, Serialize};

use crate::device::DeviceId;

/// Identifier of a functional block within a [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The functional structure implemented by a block.
///
/// The paper encodes the structure as a 28-dimensional one-hot vector; the
/// variants below cover the structures named in the paper plus the common
/// analog idioms needed to reach 28 categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Simple current mirror.
    CurrentMirror,
    /// Cascoded current mirror.
    CascodeCurrentMirror,
    /// Wide-swing current mirror.
    WideSwingCurrentMirror,
    /// Differential pair.
    DifferentialPair,
    /// Cross-coupled differential pair.
    CrossCoupledPair,
    /// Cascode stage.
    Cascode,
    /// Folded cascode stage.
    FoldedCascode,
    /// Single common-source amplifier device.
    CommonSource,
    /// Common-gate stage.
    CommonGate,
    /// Common-drain (source follower) stage.
    CommonDrain,
    /// Push-pull / class-AB output stage.
    OutputStage,
    /// Tail / bias current source.
    CurrentSource,
    /// Bias voltage generator (diode-connected stack).
    BiasGenerator,
    /// Bandgap core.
    BandgapCore,
    /// Start-up circuit.
    StartUp,
    /// Level shifter.
    LevelShifter,
    /// Power (low-side / high-side) driver device.
    PowerDriver,
    /// Pre-driver / gate-driver buffer.
    PreDriver,
    /// Digital inverter or buffer.
    Inverter,
    /// NAND / NOR logic gate.
    LogicGate,
    /// Set-reset latch core.
    LatchCore,
    /// Comparator input stage.
    ComparatorInput,
    /// Regenerative / latch comparator stage.
    RegenerativeStage,
    /// Switch (transmission gate or single pass device).
    Switch,
    /// Resistor or resistor string.
    ResistorBank,
    /// Capacitor or capacitor array.
    CapacitorBank,
    /// Decoupling / compensation capacitor.
    CompensationCap,
    /// Anything the recognizer could not classify.
    Unclassified,
}

impl BlockKind {
    /// All block kinds, in the stable order used by the one-hot encoding.
    pub const ALL: [BlockKind; 28] = [
        BlockKind::CurrentMirror,
        BlockKind::CascodeCurrentMirror,
        BlockKind::WideSwingCurrentMirror,
        BlockKind::DifferentialPair,
        BlockKind::CrossCoupledPair,
        BlockKind::Cascode,
        BlockKind::FoldedCascode,
        BlockKind::CommonSource,
        BlockKind::CommonGate,
        BlockKind::CommonDrain,
        BlockKind::OutputStage,
        BlockKind::CurrentSource,
        BlockKind::BiasGenerator,
        BlockKind::BandgapCore,
        BlockKind::StartUp,
        BlockKind::LevelShifter,
        BlockKind::PowerDriver,
        BlockKind::PreDriver,
        BlockKind::Inverter,
        BlockKind::LogicGate,
        BlockKind::LatchCore,
        BlockKind::ComparatorInput,
        BlockKind::RegenerativeStage,
        BlockKind::Switch,
        BlockKind::ResistorBank,
        BlockKind::CapacitorBank,
        BlockKind::CompensationCap,
        BlockKind::Unclassified,
    ];

    /// Number of distinct block kinds (the one-hot width used by the R-GCN).
    pub const COUNT: usize = 28;

    /// Index of this kind within [`BlockKind::ALL`].
    pub fn index(self) -> usize {
        BlockKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind is a member of ALL")
    }

    /// One-hot encoding of the functional structure.
    pub fn one_hot(self) -> Vec<f32> {
        let mut v = vec![0.0; BlockKind::COUNT];
        v[self.index()] = 1.0;
        v
    }

    /// Returns `true` for structures whose matched halves are usually placed
    /// symmetrically (and therefore attract symmetry constraints).
    pub fn is_symmetric_structure(self) -> bool {
        matches!(
            self,
            BlockKind::DifferentialPair
                | BlockKind::CrossCoupledPair
                | BlockKind::ComparatorInput
                | BlockKind::RegenerativeStage
                | BlockKind::LatchCore
        )
    }
}

/// Preferred direction for a block's terminal routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingDirection {
    /// Terminals exit horizontally (left/right edges).
    Horizontal,
    /// Terminals exit vertically (top/bottom edges).
    Vertical,
    /// No preference.
    Any,
}

/// The internal device-placement style of a multi-device block (paper §IV-B:
/// "internal routing and device placement (CC, Interdigitated)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InternalPlacement {
    /// Common-centroid placement of matched devices.
    CommonCentroid,
    /// Interdigitated fingers of matched devices.
    Interdigitated,
    /// A single row of devices.
    Row,
    /// A single device, no internal arrangement.
    Single,
}

/// A placeable functional block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Identifier within the parent circuit.
    pub id: BlockId,
    /// Instance name, e.g. `"DP"` or `"CM_LOAD"`.
    pub name: String,
    /// Recognized functional structure.
    pub kind: BlockKind,
    /// Devices grouped into this block (may be empty for pre-abstracted
    /// circuits where device-level data is unavailable).
    pub devices: Vec<DeviceId>,
    /// Total active area of the block in µm²; the shape generator keeps this
    /// constant across candidate shapes.
    pub area_um2: f64,
    /// Width of a single transistor / resistor stripe inside the block, µm.
    pub stripe_width_um: f64,
    /// Preferred terminal routing direction.
    pub routing_direction: RoutingDirection,
    /// Number of external pins.
    pub pin_count: u32,
    /// Internal placement style.
    pub internal_placement: InternalPlacement,
}

impl Block {
    /// Creates a block with the given geometry summary.
    pub fn new(
        id: BlockId,
        name: impl Into<String>,
        kind: BlockKind,
        area_um2: f64,
        pin_count: u32,
    ) -> Self {
        Block {
            id,
            name: name.into(),
            kind,
            devices: Vec::new(),
            area_um2,
            stripe_width_um: area_um2.sqrt().max(0.1),
            routing_direction: RoutingDirection::Any,
            pin_count,
            internal_placement: if kind.is_symmetric_structure() {
                InternalPlacement::CommonCentroid
            } else {
                InternalPlacement::Row
            },
        }
    }

    /// Sets the stripe width (builder-style).
    pub fn with_stripe_width(mut self, stripe_width_um: f64) -> Self {
        self.stripe_width_um = stripe_width_um;
        self
    }

    /// Sets the routing direction (builder-style).
    pub fn with_routing_direction(mut self, dir: RoutingDirection) -> Self {
        self.routing_direction = dir;
        self
    }

    /// Sets the internal placement style (builder-style).
    pub fn with_internal_placement(mut self, style: InternalPlacement) -> Self {
        self.internal_placement = style;
        self
    }

    /// Attaches the devices grouped into this block (builder-style).
    pub fn with_devices(mut self, devices: Vec<DeviceId>) -> Self {
        self.devices = devices;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_has_single_one() {
        for kind in BlockKind::ALL {
            let v = kind.one_hot();
            assert_eq!(v.len(), BlockKind::COUNT);
            assert_eq!(v.iter().filter(|&&x| x == 1.0).count(), 1);
            assert_eq!(v[kind.index()], 1.0);
        }
    }

    #[test]
    fn all_kinds_are_distinct() {
        for (i, a) in BlockKind::ALL.iter().enumerate() {
            for (j, b) in BlockKind::ALL.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn count_matches_paper_one_hot_width() {
        assert_eq!(BlockKind::COUNT, 28);
        assert_eq!(BlockKind::ALL.len(), 28);
    }

    #[test]
    fn symmetric_structures_default_to_common_centroid() {
        let dp = Block::new(BlockId(0), "DP", BlockKind::DifferentialPair, 40.0, 3);
        assert_eq!(dp.internal_placement, InternalPlacement::CommonCentroid);
        let cs = Block::new(BlockId(1), "M1", BlockKind::CommonSource, 10.0, 3);
        assert_eq!(cs.internal_placement, InternalPlacement::Row);
    }

    #[test]
    fn builder_methods_apply() {
        let b = Block::new(BlockId(0), "CM", BlockKind::CurrentMirror, 25.0, 3)
            .with_stripe_width(2.5)
            .with_routing_direction(RoutingDirection::Vertical)
            .with_devices(vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(b.stripe_width_um, 2.5);
        assert_eq!(b.routing_direction, RoutingDirection::Vertical);
        assert_eq!(b.devices.len(), 2);
    }
}

//! Primitive circuit devices (transistors, resistors, capacitors, …).
//!
//! Devices are the leaves of the circuit hierarchy. The structure-recognition
//! stage (paper §IV-B) groups devices into *functional blocks*; the
//! floorplanner then places blocks, not devices.

use serde::{Deserialize, Serialize};

/// Identifier of a device within a [`crate::Schematic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The physical kind of a primitive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// N-channel MOSFET.
    Nmos,
    /// P-channel MOSFET.
    Pmos,
    /// Poly or diffusion resistor.
    Resistor,
    /// MIM/MOM capacitor.
    Capacitor,
    /// Junction diode.
    Diode,
    /// Bipolar junction transistor.
    Bjt,
}

impl DeviceKind {
    /// All device kinds, in a stable order (used for feature encodings).
    pub const ALL: [DeviceKind; 6] = [
        DeviceKind::Nmos,
        DeviceKind::Pmos,
        DeviceKind::Resistor,
        DeviceKind::Capacitor,
        DeviceKind::Diode,
        DeviceKind::Bjt,
    ];

    /// Index of this kind within [`DeviceKind::ALL`].
    pub fn index(self) -> usize {
        DeviceKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind is a member of ALL")
    }

    /// Returns `true` for MOS transistors.
    pub fn is_mos(self) -> bool {
        matches!(self, DeviceKind::Nmos | DeviceKind::Pmos)
    }
}

/// A primitive device instance.
///
/// Geometry is expressed with the parameters a layout generator needs: total
/// gate width, channel length, number of fingers/stripes and multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Identifier within the parent schematic.
    pub id: DeviceId,
    /// Instance name, e.g. `"N34"` or `"P18"`.
    pub name: String,
    /// Physical device kind.
    pub kind: DeviceKind,
    /// Total gate width (MOS) or body width (passives), in µm.
    pub width_um: f64,
    /// Channel length (MOS) or body length (passives), in µm.
    pub length_um: f64,
    /// Number of fingers / stripes the device is folded into.
    pub fingers: u32,
    /// Device multiplier (parallel copies).
    pub multiplier: u32,
}

impl Device {
    /// Creates a device with a multiplier of one.
    pub fn new(
        id: DeviceId,
        name: impl Into<String>,
        kind: DeviceKind,
        width_um: f64,
        length_um: f64,
        fingers: u32,
    ) -> Self {
        Device {
            id,
            name: name.into(),
            kind,
            width_um,
            length_um,
            fingers: fingers.max(1),
            multiplier: 1,
        }
    }

    /// Approximate active area of the device in µm², including a fixed
    /// per-finger diffusion overhead so folded devices are not free.
    pub fn area_um2(&self) -> f64 {
        let finger_overhead = 0.2 * self.length_um;
        let per_finger_width = self.width_um / self.fingers as f64;
        let w_total = (per_finger_width + finger_overhead) * self.fingers as f64;
        w_total * self.length_um * self.multiplier as f64
    }

    /// Electrical size parameter used for matching detection: W/L for MOS,
    /// width for passives.
    pub fn strength(&self) -> f64 {
        if self.kind.is_mos() {
            self.width_um / self.length_um.max(1e-9)
        } else {
            self.width_um
        }
    }

    /// Returns `true` if `self` and `other` are electrically matched devices
    /// (same kind, same W, L and fingers within a small tolerance), which is
    /// the precondition for symmetry constraints.
    pub fn is_matched_with(&self, other: &Device) -> bool {
        self.kind == other.kind
            && relative_close(self.width_um, other.width_um, 1e-6)
            && relative_close(self.length_um, other.length_um, 1e-6)
            && self.fingers == other.fingers
            && self.multiplier == other.multiplier
    }
}

fn relative_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos(id: usize, w: f64, l: f64, fingers: u32) -> Device {
        Device::new(DeviceId(id), format!("N{id}"), DeviceKind::Nmos, w, l, fingers)
    }

    #[test]
    fn kind_index_roundtrip() {
        for (i, k) in DeviceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn area_scales_with_width_and_multiplier() {
        let a = nmos(0, 10.0, 0.5, 1);
        let b = nmos(1, 20.0, 0.5, 1);
        assert!(b.area_um2() > a.area_um2());
        let mut c = nmos(2, 10.0, 0.5, 1);
        c.multiplier = 2;
        assert!((c.area_um2() - 2.0 * a.area_um2()).abs() < 1e-9);
    }

    #[test]
    fn folding_adds_overhead() {
        let flat = nmos(0, 16.0, 0.5, 1);
        let folded = nmos(1, 16.0, 0.5, 4);
        assert!(folded.area_um2() > flat.area_um2());
    }

    #[test]
    fn matched_devices_detected() {
        let a = nmos(0, 8.0, 0.4, 2);
        let b = nmos(1, 8.0, 0.4, 2);
        let c = nmos(2, 9.0, 0.4, 2);
        assert!(a.is_matched_with(&b));
        assert!(!a.is_matched_with(&c));
    }

    #[test]
    fn strength_is_w_over_l_for_mos() {
        let d = nmos(0, 10.0, 0.5, 1);
        assert!((d.strength() - 20.0).abs() < 1e-9);
        let r = Device::new(DeviceId(1), "R1", DeviceKind::Resistor, 2.0, 10.0, 1);
        assert!((r.strength() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mos_predicate() {
        assert!(DeviceKind::Pmos.is_mos());
        assert!(!DeviceKind::Capacitor.is_mos());
    }
}

//! # afp-circuit — analog circuit model for RL floorplanning
//!
//! This crate models everything the floorplanner needs to know about a
//! circuit, mirroring the front half of the paper's pipeline (Fig. 1):
//!
//! * primitive [`Device`]s and device-level [`Schematic`]s,
//! * automatic [`recognition`] of functional structures (the substitute for
//!   Infineon's GCN + K-means structure-recognition tool),
//! * typed functional [`Block`]s with the geometry summary the R-GCN node
//!   features require,
//! * block-level [`Net`]s, positional [`constraint`]s (symmetry / alignment)
//!   and the containing [`Circuit`],
//! * the relational [`CircuitGraph`] consumed by the R-GCN encoder,
//! * [`shapes`]: the three fixed-area candidate shapes per block
//!   (multi-shape configuration, paper §IV-B),
//! * [`generators`]: synthetic industrial circuits reproducing the paper's
//!   training and evaluation sets (OTAs, bias networks, driver, RS latch, …).
//!
//! # Examples
//!
//! ```
//! use afp_circuit::{generators, CircuitGraph, shapes};
//!
//! let circuit = generators::ota8();
//! assert_eq!(circuit.num_blocks(), 8);
//!
//! let graph = CircuitGraph::from_circuit(&circuit);
//! assert_eq!(graph.num_nodes(), 8);
//!
//! let shape_sets = shapes::shape_sets(&circuit);
//! assert_eq!(shape_sets.len(), 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod device;
mod error;
mod features;
mod graph;
mod net;
mod netlist;

pub mod constraint;
pub mod generators;
pub mod recognition;
pub mod shapes;
pub mod spice;

pub use block::{Block, BlockId, BlockKind, InternalPlacement, RoutingDirection};
pub use constraint::{AlignmentGroup, Axis, Constraint, ConstraintSet, SymmetryGroup};
pub use device::{Device, DeviceId, DeviceKind};
pub use error::CircuitError;
pub use features::{node_features, NODE_FEATURE_DIM, SCALAR_FEATURES};
pub use graph::{CircuitGraph, EdgeRelation};
pub use net::{Net, NetClass, NetId, Pin};
pub use netlist::{Circuit, CircuitBuilder, Schematic};
pub use shapes::{Shape, ShapeSet, SHAPES_PER_BLOCK};

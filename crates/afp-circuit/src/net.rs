//! Nets: electrical connections between block pins.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;

/// Identifier of a net within a [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub usize);

impl NetId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The class of a net, used to weight wirelength and to pick routing layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetClass {
    /// Ordinary signal net.
    Signal,
    /// Sensitive analog net (e.g. differential signals, high-impedance nodes).
    Critical,
    /// Power supply (VDD).
    Power,
    /// Ground (VSS).
    Ground,
    /// Bias distribution net.
    Bias,
    /// Clock net.
    Clock,
}

impl NetClass {
    /// Default HPWL weight per class: sensitive nets count more, supplies
    /// count less, mirroring common analog-placement cost functions.
    pub fn weight(self) -> f64 {
        match self {
            NetClass::Critical => 2.0,
            NetClass::Signal => 1.0,
            NetClass::Bias => 0.8,
            NetClass::Clock => 1.5,
            NetClass::Power | NetClass::Ground => 0.5,
        }
    }

    /// Returns `true` for power/ground distribution nets.
    pub fn is_supply(self) -> bool {
        matches!(self, NetClass::Power | NetClass::Ground)
    }
}

/// A pin of a net: the block it lands on plus a terminal label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pin {
    /// The block the pin belongs to.
    pub block: BlockId,
    /// Terminal name on that block, e.g. `"out"`, `"gate"`, `"d"`.
    pub terminal: String,
}

impl Pin {
    /// Creates a pin.
    pub fn new(block: BlockId, terminal: impl Into<String>) -> Self {
        Pin {
            block,
            terminal: terminal.into(),
        }
    }
}

/// A net connecting two or more pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Net {
    /// Identifier within the parent circuit.
    pub id: NetId,
    /// Net name, e.g. `"vout"`, `"vdd"`.
    pub name: String,
    /// Net class.
    pub class: NetClass,
    /// Pins connected by this net.
    pub pins: Vec<Pin>,
}

impl Net {
    /// Creates a signal net.
    pub fn new(id: NetId, name: impl Into<String>, pins: Vec<Pin>) -> Self {
        Net {
            id,
            name: name.into(),
            class: NetClass::Signal,
            pins,
        }
    }

    /// Sets the net class (builder-style).
    pub fn with_class(mut self, class: NetClass) -> Self {
        self.class = class;
        self
    }

    /// The distinct blocks touched by this net, in first-appearance order.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut seen = Vec::new();
        for pin in &self.pins {
            if !seen.contains(&pin.block) {
                seen.push(pin.block);
            }
        }
        seen
    }

    /// Number of pins.
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// HPWL weight of this net.
    pub fn weight(&self) -> f64 {
        self.class.weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_deduplicates() {
        let net = Net::new(
            NetId(0),
            "n1",
            vec![
                Pin::new(BlockId(0), "d"),
                Pin::new(BlockId(1), "g"),
                Pin::new(BlockId(0), "s"),
            ],
        );
        assert_eq!(net.blocks(), vec![BlockId(0), BlockId(1)]);
        assert_eq!(net.degree(), 3);
    }

    #[test]
    fn class_weights_ordered() {
        assert!(NetClass::Critical.weight() > NetClass::Signal.weight());
        assert!(NetClass::Signal.weight() > NetClass::Power.weight());
    }

    #[test]
    fn supply_detection() {
        assert!(NetClass::Power.is_supply());
        assert!(NetClass::Ground.is_supply());
        assert!(!NetClass::Bias.is_supply());
    }

    #[test]
    fn with_class_changes_weight() {
        let net = Net::new(NetId(0), "vdd", vec![]).with_class(NetClass::Power);
        assert_eq!(net.weight(), 0.5);
    }
}

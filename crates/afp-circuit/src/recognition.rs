//! Automatic structure recognition.
//!
//! The paper uses Infineon's GCN + K-means structure recognition tool \[21\] to
//! detect functional blocks in the input schematic (pipeline step 2, Fig. 1).
//! That tool is proprietary, so this module provides two interchangeable
//! substitutes that produce the same artefact — a grouping of devices into
//! typed functional blocks:
//!
//! 1. [`recognize`] — a deterministic rule-based matcher for the classic
//!    analog structures (differential pairs, current mirrors, cascodes,
//!    output stages, passives), and
//! 2. [`cluster_devices`] — a feature-space k-means clustering of devices,
//!    mirroring the embedding + clustering flavour of the original tool.
//!
//! Both paths feed the same downstream floorplanner, so the substitution does
//! not change the behaviour being reproduced.

use rand::Rng;

use crate::block::{Block, BlockId, BlockKind};
use crate::constraint::{Axis, Constraint, SymmetryGroup};
use crate::device::{DeviceId, DeviceKind};
use crate::net::{Net, NetClass, NetId, Pin};
use crate::netlist::{Circuit, Schematic};

/// Groups the devices of a schematic into typed functional blocks and builds
/// the corresponding block-level [`Circuit`], including symmetry constraints
/// for recognized matched structures.
pub fn recognize(schematic: &Schematic) -> Circuit {
    let n = schematic.devices.len();
    let mut assigned = vec![false; n];
    let mut groups: Vec<(BlockKind, Vec<DeviceId>)> = Vec::new();

    // 1. Differential pairs: matched same-kind MOS devices sharing a source
    //    net but driven by different gate nets.
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        for j in (i + 1)..n {
            if assigned[j] {
                continue;
            }
            let (a, b) = (&schematic.devices[i], &schematic.devices[j]);
            if !a.kind.is_mos() || !a.is_matched_with(b) {
                continue;
            }
            let a_src = schematic.nets_on_terminal(a.id, "s");
            let b_src = schematic.nets_on_terminal(b.id, "s");
            let a_gate = schematic.nets_on_terminal(a.id, "g");
            let b_gate = schematic.nets_on_terminal(b.id, "g");
            let shares_source = a_src.iter().any(|s| b_src.contains(s));
            let different_gates = !a_gate.is_empty() && a_gate != b_gate;
            if shares_source && different_gates {
                assigned[i] = true;
                assigned[j] = true;
                groups.push((BlockKind::DifferentialPair, vec![a.id, b.id]));
                break;
            }
        }
    }

    // 2. Current mirrors: same-kind MOS devices whose gates share a net with a
    //    diode-connected reference device (gate net == drain net of the ref).
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let ref_dev = &schematic.devices[i];
        if !ref_dev.kind.is_mos() {
            continue;
        }
        let gate = schematic.nets_on_terminal(ref_dev.id, "g");
        let drain = schematic.nets_on_terminal(ref_dev.id, "d");
        let diode_connected = gate.iter().any(|g| drain.contains(g));
        if !diode_connected {
            continue;
        }
        let mut members = vec![ref_dev.id];
        for j in 0..n {
            if j == i || assigned[j] {
                continue;
            }
            let cand = &schematic.devices[j];
            if cand.kind != ref_dev.kind {
                continue;
            }
            let cand_gate = schematic.nets_on_terminal(cand.id, "g");
            if cand_gate.iter().any(|g| gate.contains(g)) {
                members.push(cand.id);
            }
        }
        if members.len() >= 2 {
            for m in &members {
                assigned[m.index()] = true;
            }
            groups.push((BlockKind::CurrentMirror, members));
        }
    }

    // 3. Cascodes: an unassigned MOS whose source net equals the drain net of
    //    another (possibly assigned) MOS of the same kind.
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let dev = &schematic.devices[i];
        if !dev.kind.is_mos() {
            continue;
        }
        let src = schematic.nets_on_terminal(dev.id, "s");
        let stacked = (0..n).any(|j| {
            if j == i {
                return false;
            }
            let other = &schematic.devices[j];
            other.kind == dev.kind
                && schematic
                    .nets_on_terminal(other.id, "d")
                    .iter()
                    .any(|d| src.contains(d))
        });
        if stacked {
            assigned[i] = true;
            groups.push((BlockKind::Cascode, vec![dev.id]));
        }
    }

    // 4. Everything else becomes a single-device block typed by device kind.
    for i in 0..n {
        if assigned[i] {
            continue;
        }
        let dev = &schematic.devices[i];
        let kind = match dev.kind {
            DeviceKind::Nmos | DeviceKind::Pmos => BlockKind::CommonSource,
            DeviceKind::Resistor => BlockKind::ResistorBank,
            DeviceKind::Capacitor => BlockKind::CapacitorBank,
            DeviceKind::Diode | DeviceKind::Bjt => BlockKind::BiasGenerator,
        };
        assigned[i] = true;
        groups.push((kind, vec![dev.id]));
    }

    build_circuit_from_groups(schematic, &groups)
}

/// Builds the block-level circuit from explicit device groups (used by both
/// the rule-based and the clustering recognition paths).
pub fn build_circuit_from_groups(
    schematic: &Schematic,
    groups: &[(BlockKind, Vec<DeviceId>)],
) -> Circuit {
    let mut circuit = Circuit::new(format!("{}-blocks", schematic.name));
    let mut device_to_block = vec![None; schematic.devices.len()];

    for (kind, members) in groups {
        let id = BlockId(circuit.blocks.len());
        let area: f64 = members
            .iter()
            .map(|d| schematic.devices[d.index()].area_um2())
            .sum();
        let stripe = members
            .iter()
            .map(|d| {
                let dev = &schematic.devices[d.index()];
                dev.width_um / dev.fingers.max(1) as f64
            })
            .fold(0.0f64, f64::max);
        let name = members
            .iter()
            .map(|d| schematic.devices[d.index()].name.clone())
            .collect::<Vec<_>>()
            .join("_");
        let mut pins = 0u32;
        for d in members {
            pins += schematic
                .connections
                .iter()
                .filter(|(_, p)| p.iter().any(|(dd, _)| dd == d))
                .count() as u32;
        }
        let block = Block::new(id, name, *kind, area.max(1e-3), pins.max(2))
            .with_stripe_width(stripe.max(0.1))
            .with_devices(members.clone());
        for d in members {
            device_to_block[d.index()] = Some(id);
        }
        circuit.blocks.push(block);
    }

    // Block-level nets: one per schematic net spanning at least two blocks.
    for (net_name, pins) in &schematic.connections {
        let mut blocks_touched: Vec<BlockId> = Vec::new();
        for (d, _) in pins {
            if let Some(b) = device_to_block[d.index()] {
                if !blocks_touched.contains(&b) {
                    blocks_touched.push(b);
                }
            }
        }
        if blocks_touched.len() < 2 {
            continue;
        }
        let class = classify_net(net_name);
        let id = NetId(circuit.nets.len());
        let net_pins = blocks_touched
            .iter()
            .map(|b| Pin::new(*b, net_name.clone()))
            .collect();
        circuit
            .nets
            .push(Net::new(id, net_name.clone(), net_pins).with_class(class));
    }

    // Symmetry constraints: matched pairs of same-kind, same-area blocks, plus
    // self-symmetry of recognized differential pairs.
    let mut used = vec![false; circuit.blocks.len()];
    let mut group = SymmetryGroup::new(Axis::Vertical);
    for i in 0..circuit.blocks.len() {
        if circuit.blocks[i].kind == BlockKind::DifferentialPair {
            group = group.with_self_symmetric(BlockId(i));
            used[i] = true;
        }
    }
    for i in 0..circuit.blocks.len() {
        if used[i] {
            continue;
        }
        for j in (i + 1)..circuit.blocks.len() {
            if used[j] {
                continue;
            }
            let (a, b) = (&circuit.blocks[i], &circuit.blocks[j]);
            let matched = a.kind == b.kind
                && a.devices.len() == b.devices.len()
                && (a.area_um2 - b.area_um2).abs() <= 1e-6 * a.area_um2.max(b.area_um2).max(1.0);
            if matched && a.kind != BlockKind::CapacitorBank {
                group = group.with_pair(BlockId(i), BlockId(j));
                used[i] = true;
                used[j] = true;
                break;
            }
        }
    }
    if !group.is_empty() {
        circuit.constraints.push(Constraint::Symmetry(group));
    }
    circuit
}

/// Classifies a net by its name (supply and bias nets follow strong naming
/// conventions in industrial netlists).
pub fn classify_net(name: &str) -> NetClass {
    let lower = name.to_ascii_lowercase();
    if lower.contains("vdd") || lower.contains("vcc") {
        NetClass::Power
    } else if lower.contains("vss") || lower.contains("gnd") {
        NetClass::Ground
    } else if lower.contains("bias") || lower.contains("ref") {
        NetClass::Bias
    } else if lower.contains("clk") || lower.contains("clock") {
        NetClass::Clock
    } else {
        NetClass::Signal
    }
}

/// Per-device feature vector used by the k-means recognition path.
fn device_features(schematic: &Schematic, d: DeviceId) -> Vec<f64> {
    let dev = &schematic.devices[d.index()];
    let mut f = vec![0.0; DeviceKind::ALL.len()];
    f[dev.kind.index()] = 1.0;
    f.push((1.0 + dev.area_um2()).ln());
    f.push((1.0 + dev.strength()).ln());
    f.push(schematic.neighbors(d).len() as f64 / 8.0);
    f
}

/// Clusters devices into `k` groups with k-means over simple electrical
/// features, mirroring the GCN-embedding + K-means flavour of the paper's
/// structure-recognition tool. Returns the device groups; empty clusters are
/// dropped.
pub fn cluster_devices<R: Rng + ?Sized>(
    schematic: &Schematic,
    k: usize,
    iterations: usize,
    rng: &mut R,
) -> Vec<Vec<DeviceId>> {
    let n = schematic.devices.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let feats: Vec<Vec<f64>> = (0..n)
        .map(|i| device_features(schematic, DeviceId(i)))
        .collect();
    let dim = feats[0].len();
    // Initialize centroids with distinct random devices.
    let mut centroid_idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        centroid_idx.swap(i, j);
    }
    let mut centroids: Vec<Vec<f64>> = centroid_idx[..k].iter().map(|&i| feats[i].clone()).collect();
    let mut assignment = vec![0usize; n];
    for _ in 0..iterations.max(1) {
        // Assign.
        for (i, f) in feats.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::MAX;
            for (c, cent) in centroids.iter().enumerate() {
                let d: f64 = f.iter().zip(cent.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update.
        for (c, cent) in centroids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            for d in 0..dim {
                cent[d] = members.iter().map(|&i| feats[i][d]).sum::<f64>() / members.len() as f64;
            }
        }
    }
    (0..k)
        .map(|c| {
            (0..n)
                .filter(|&i| assignment[i] == c)
                .map(DeviceId)
                .collect::<Vec<_>>()
        })
        .filter(|g: &Vec<DeviceId>| !g.is_empty())
        .collect()
}

/// Runs the k-means recognition path end to end: clusters devices and builds a
/// block-level circuit with [`BlockKind::Unclassified`] blocks refined by a
/// majority-kind heuristic.
pub fn recognize_with_kmeans<R: Rng + ?Sized>(
    schematic: &Schematic,
    k: usize,
    rng: &mut R,
) -> Circuit {
    let clusters = cluster_devices(schematic, k, 20, rng);
    let groups: Vec<(BlockKind, Vec<DeviceId>)> = clusters
        .into_iter()
        .map(|members| {
            let kind = majority_kind(schematic, &members);
            (kind, members)
        })
        .collect();
    build_circuit_from_groups(schematic, &groups)
}

fn majority_kind(schematic: &Schematic, members: &[DeviceId]) -> BlockKind {
    let mos = members
        .iter()
        .filter(|d| schematic.devices[d.index()].kind.is_mos())
        .count();
    let caps = members
        .iter()
        .filter(|d| schematic.devices[d.index()].kind == DeviceKind::Capacitor)
        .count();
    let res = members
        .iter()
        .filter(|d| schematic.devices[d.index()].kind == DeviceKind::Resistor)
        .count();
    if caps > mos && caps >= res {
        BlockKind::CapacitorBank
    } else if res > mos {
        BlockKind::ResistorBank
    } else if members.len() >= 2 {
        BlockKind::CurrentMirror
    } else {
        BlockKind::CommonSource
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small 5-transistor OTA schematic: tail source, diff pair, mirror load.
    fn five_t_ota() -> Schematic {
        let mut s = Schematic::new("5T-OTA");
        let n1 = s.add_device(Device::new(DeviceId(0), "N1", DeviceKind::Nmos, 8.0, 0.5, 2));
        let n2 = s.add_device(Device::new(DeviceId(0), "N2", DeviceKind::Nmos, 8.0, 0.5, 2));
        let p1 = s.add_device(Device::new(DeviceId(0), "P1", DeviceKind::Pmos, 12.0, 0.5, 2));
        let p2 = s.add_device(Device::new(DeviceId(0), "P2", DeviceKind::Pmos, 12.0, 0.5, 2));
        let nt = s.add_device(Device::new(DeviceId(0), "NT", DeviceKind::Nmos, 16.0, 1.0, 4));
        s.connect("inp", vec![(n1, "g")]);
        s.connect("inn", vec![(n2, "g")]);
        s.connect("tail", vec![(n1, "s"), (n2, "s"), (nt, "d")]);
        s.connect("outl", vec![(n1, "d"), (p1, "d"), (p1, "g"), (p2, "g")]);
        s.connect("out", vec![(n2, "d"), (p2, "d")]);
        s.connect("vdd", vec![(p1, "s"), (p2, "s")]);
        s.connect("vss", vec![(nt, "s")]);
        s.connect("vbias", vec![(nt, "g")]);
        s
    }

    #[test]
    fn recognizes_diff_pair_and_mirror() {
        let circuit = recognize(&five_t_ota());
        let kinds: Vec<BlockKind> = circuit.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BlockKind::DifferentialPair), "{kinds:?}");
        assert!(kinds.contains(&BlockKind::CurrentMirror), "{kinds:?}");
        // 5 devices → 3 blocks (DP, CM, tail).
        assert_eq!(circuit.num_blocks(), 3);
        circuit.validate().unwrap();
    }

    #[test]
    fn block_areas_sum_to_device_areas() {
        let s = five_t_ota();
        let circuit = recognize(&s);
        let dev_area: f64 = s.devices.iter().map(|d| d.area_um2()).sum();
        assert!((circuit.total_block_area() - dev_area).abs() < 1e-9);
    }

    #[test]
    fn block_nets_connect_blocks() {
        let circuit = recognize(&five_t_ota());
        assert!(circuit.num_nets() >= 2);
        for net in &circuit.nets {
            assert!(net.blocks().len() >= 2);
        }
    }

    #[test]
    fn diff_pair_gets_self_symmetry() {
        let circuit = recognize(&five_t_ota());
        let dp = circuit
            .blocks
            .iter()
            .find(|b| b.kind == BlockKind::DifferentialPair)
            .unwrap();
        assert_eq!(circuit.constraints.len(), 1);
        let members: Vec<BlockId> = circuit.constraints.iter().next().unwrap().members();
        assert!(members.contains(&dp.id));
    }

    #[test]
    fn net_classification_by_name() {
        assert_eq!(classify_net("vdd_core"), NetClass::Power);
        assert_eq!(classify_net("VSS"), NetClass::Ground);
        assert_eq!(classify_net("ibias_10u"), NetClass::Bias);
        assert_eq!(classify_net("clk_out"), NetClass::Clock);
        assert_eq!(classify_net("vout"), NetClass::Signal);
    }

    #[test]
    fn kmeans_produces_requested_clusters() {
        let s = five_t_ota();
        let mut rng = StdRng::seed_from_u64(1);
        let clusters = cluster_devices(&s, 3, 10, &mut rng);
        assert!(!clusters.is_empty() && clusters.len() <= 3);
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn kmeans_recognition_builds_valid_circuit() {
        let s = five_t_ota();
        let mut rng = StdRng::seed_from_u64(2);
        let circuit = recognize_with_kmeans(&s, 3, &mut rng);
        circuit.validate().unwrap();
        assert!(circuit.num_blocks() >= 1);
    }

    #[test]
    fn kmeans_handles_degenerate_inputs() {
        let s = Schematic::new("empty");
        let mut rng = StdRng::seed_from_u64(0);
        assert!(cluster_devices(&s, 3, 5, &mut rng).is_empty());
    }
}

//! Node feature extraction for the circuit graph.
//!
//! The paper's node feature vector (§IV-C) contains: the block area, internal
//! parameters such as the transistor / resistor stripe width, the terminal
//! routing direction, pin counts, and a 28-dimensional one-hot encoding of the
//! functional structure. This module produces that vector in a fixed layout so
//! the R-GCN input width is a compile-time constant.

use crate::block::{Block, BlockKind, InternalPlacement, RoutingDirection};

/// Number of scalar features preceding the one-hot structure encoding:
/// normalized area, log-area, stripe width, pin count, routing direction
/// (2 one-hot), internal placement style (4 one-hot).
pub const SCALAR_FEATURES: usize = 10;

/// Total width of a node feature vector.
pub const NODE_FEATURE_DIM: usize = SCALAR_FEATURES + BlockKind::COUNT;

/// Builds the feature vector of a block.
///
/// `max_area_um2` is the largest block area in the circuit and is used to
/// normalize areas into `[0, 1]` so that feature scales are comparable across
/// circuits of very different sizes — a prerequisite for the transferability
/// the paper targets.
pub fn node_features(block: &Block, max_area_um2: f64) -> Vec<f32> {
    let mut f = Vec::with_capacity(NODE_FEATURE_DIM);
    let max_area = max_area_um2.max(1e-9);
    // Normalized area and a log-compressed version (areas span orders of
    // magnitude between, say, a switch and a power driver).
    f.push((block.area_um2 / max_area) as f32);
    f.push(((1.0 + block.area_um2).ln() / (1.0 + max_area).ln()) as f32);
    // Stripe width relative to the block's own square side: captures how
    // elongated the internal structure is.
    let side = block.area_um2.sqrt().max(1e-9);
    f.push((block.stripe_width_um / side).min(4.0) as f32 / 4.0);
    // Pin count, compressed.
    f.push((block.pin_count as f32 / 8.0).min(1.0));
    // Routing direction one-hot (horizontal, vertical); `Any` maps to (0, 0).
    match block.routing_direction {
        RoutingDirection::Horizontal => {
            f.push(1.0);
            f.push(0.0);
        }
        RoutingDirection::Vertical => {
            f.push(0.0);
            f.push(1.0);
        }
        RoutingDirection::Any => {
            f.push(0.0);
            f.push(0.0);
        }
    }
    // Internal placement one-hot.
    let style_idx = match block.internal_placement {
        InternalPlacement::CommonCentroid => 0,
        InternalPlacement::Interdigitated => 1,
        InternalPlacement::Row => 2,
        InternalPlacement::Single => 3,
    };
    for i in 0..4 {
        f.push(if i == style_idx { 1.0 } else { 0.0 });
    }
    debug_assert_eq!(f.len(), SCALAR_FEATURES);
    // Functional structure one-hot.
    f.extend(block.kind.one_hot());
    debug_assert_eq!(f.len(), NODE_FEATURE_DIM);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockId;

    fn block(kind: BlockKind, area: f64) -> Block {
        Block::new(BlockId(0), "b", kind, area, 3)
    }

    #[test]
    fn feature_vector_has_fixed_width() {
        let f = node_features(&block(BlockKind::CurrentMirror, 10.0), 10.0);
        assert_eq!(f.len(), NODE_FEATURE_DIM);
    }

    #[test]
    fn area_features_normalized() {
        let f = node_features(&block(BlockKind::CurrentMirror, 5.0), 10.0);
        assert!((f[0] - 0.5).abs() < 1e-6);
        assert!(f[1] > 0.0 && f[1] <= 1.0);
        let f_max = node_features(&block(BlockKind::CurrentMirror, 10.0), 10.0);
        assert!((f_max[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_hot_region_matches_kind() {
        let f = node_features(&block(BlockKind::DifferentialPair, 10.0), 10.0);
        let one_hot = &f[SCALAR_FEATURES..];
        assert_eq!(one_hot.len(), BlockKind::COUNT);
        assert_eq!(one_hot[BlockKind::DifferentialPair.index()], 1.0);
        assert_eq!(one_hot.iter().filter(|&&x| x == 1.0).count(), 1);
    }

    #[test]
    fn routing_direction_encoded() {
        let mut b = block(BlockKind::CommonSource, 10.0);
        b.routing_direction = RoutingDirection::Vertical;
        let f = node_features(&b, 10.0);
        assert_eq!(f[4], 0.0);
        assert_eq!(f[5], 1.0);
    }

    #[test]
    fn all_features_bounded() {
        for kind in BlockKind::ALL {
            let f = node_features(&block(kind, 123.0), 456.0);
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)), "{kind:?}: {f:?}");
        }
    }
}

//! Heterogeneous circuit graphs: the R-GCN input representation.
//!
//! Following the paper's §IV-C (and its Fig. 2), a circuit is represented as
//! an undirected graph whose nodes are functional blocks and whose edges carry
//! one of five *relations*: netlist connectivity, horizontal / vertical
//! alignment, and horizontal / vertical symmetry. The relational structure is
//! exactly what distinguishes the R-GCN (paper Eq. 2) from a plain GCN
//! (paper Eq. 1).

use serde::{Deserialize, Serialize};

use crate::block::BlockId;
use crate::constraint::{Axis, Constraint};
use crate::features::{node_features, NODE_FEATURE_DIM};
use crate::netlist::Circuit;

/// The relation type attached to a circuit-graph edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeRelation {
    /// The two blocks share at least one (non-supply) net.
    Connectivity,
    /// The two blocks belong to a horizontal alignment group.
    HorizontalAlignment,
    /// The two blocks belong to a vertical alignment group.
    VerticalAlignment,
    /// The two blocks are mirrored about a horizontal axis.
    HorizontalSymmetry,
    /// The two blocks are mirrored about a vertical axis.
    VerticalSymmetry,
}

impl EdgeRelation {
    /// All relations in a stable order (indexes the R-GCN weight matrices).
    pub const ALL: [EdgeRelation; 5] = [
        EdgeRelation::Connectivity,
        EdgeRelation::HorizontalAlignment,
        EdgeRelation::VerticalAlignment,
        EdgeRelation::HorizontalSymmetry,
        EdgeRelation::VerticalSymmetry,
    ];

    /// Number of relations.
    pub const COUNT: usize = 5;

    /// Index of the relation within [`EdgeRelation::ALL`].
    pub fn index(self) -> usize {
        EdgeRelation::ALL
            .iter()
            .position(|&r| r == self)
            .expect("relation is a member of ALL")
    }
}

/// An undirected heterogeneous graph over the blocks of a circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitGraph {
    num_nodes: usize,
    /// `adjacency[r][u]` = neighbours of node `u` under relation `r`.
    adjacency: Vec<Vec<Vec<usize>>>,
    /// Per-node feature vectors of length [`NODE_FEATURE_DIM`].
    features: Vec<Vec<f32>>,
    /// Name of the originating circuit (for diagnostics).
    circuit_name: String,
}

impl CircuitGraph {
    /// Builds the relational graph of a circuit.
    ///
    /// Connectivity edges come from shared non-supply nets; alignment and
    /// symmetry edges from the circuit's constraint set. Every edge is added
    /// in both directions (the graph is undirected).
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_blocks();
        let mut adjacency = vec![vec![Vec::new(); n]; EdgeRelation::COUNT];

        let mut add_edge = |rel: EdgeRelation, a: BlockId, b: BlockId| {
            let (ai, bi) = (a.index(), b.index());
            if ai == bi {
                return;
            }
            let adj = &mut adjacency[rel.index()];
            if !adj[ai].contains(&bi) {
                adj[ai].push(bi);
            }
            if !adj[bi].contains(&ai) {
                adj[bi].push(ai);
            }
        };

        for (a, b) in circuit.connectivity_pairs() {
            add_edge(EdgeRelation::Connectivity, a, b);
        }
        for constraint in circuit.constraints.iter() {
            match constraint {
                Constraint::Symmetry(group) => {
                    let rel = match group.axis {
                        Axis::Horizontal => EdgeRelation::HorizontalSymmetry,
                        Axis::Vertical => EdgeRelation::VerticalSymmetry,
                    };
                    for &(a, b) in &group.pairs {
                        add_edge(rel, a, b);
                    }
                }
                Constraint::Alignment(group) => {
                    let rel = match group.axis {
                        Axis::Horizontal => EdgeRelation::HorizontalAlignment,
                        Axis::Vertical => EdgeRelation::VerticalAlignment,
                    };
                    for i in 0..group.blocks.len() {
                        for j in (i + 1)..group.blocks.len() {
                            add_edge(rel, group.blocks[i], group.blocks[j]);
                        }
                    }
                }
            }
        }

        let max_area = circuit
            .blocks
            .iter()
            .map(|b| b.area_um2)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let features = circuit
            .blocks
            .iter()
            .map(|b| node_features(b, max_area))
            .collect();

        CircuitGraph {
            num_nodes: n,
            adjacency,
            features,
            circuit_name: circuit.name.clone(),
        }
    }

    /// Number of nodes (blocks).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Width of each node feature vector.
    pub fn feature_dim(&self) -> usize {
        NODE_FEATURE_DIM
    }

    /// Name of the circuit this graph was built from.
    pub fn circuit_name(&self) -> &str {
        &self.circuit_name
    }

    /// Neighbours of `node` under `relation`.
    pub fn neighbors(&self, relation: EdgeRelation, node: usize) -> &[usize] {
        &self.adjacency[relation.index()][node]
    }

    /// Feature vector of `node`.
    pub fn features(&self, node: usize) -> &[f32] {
        &self.features[node]
    }

    /// All feature vectors as rows.
    pub fn feature_rows(&self) -> &[Vec<f32>] {
        &self.features
    }

    /// Total number of undirected edges under a relation.
    pub fn num_edges(&self, relation: EdgeRelation) -> usize {
        self.adjacency[relation.index()]
            .iter()
            .map(|n| n.len())
            .sum::<usize>()
            / 2
    }

    /// Total number of undirected edges across all relations.
    pub fn total_edges(&self) -> usize {
        EdgeRelation::ALL.iter().map(|&r| self.num_edges(r)).sum()
    }

    /// Degree of a node counting every relation.
    pub fn degree(&self, node: usize) -> usize {
        EdgeRelation::ALL
            .iter()
            .map(|&r| self.neighbors(r, node).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockKind;
    use crate::net::NetClass;

    fn sample_circuit() -> Circuit {
        Circuit::builder("g")
            .block("DP", BlockKind::DifferentialPair, 40.0, 4)
            .block("CML", BlockKind::CurrentMirror, 30.0, 3)
            .block("CMR", BlockKind::CurrentMirror, 30.0, 3)
            .block("TAIL", BlockKind::CurrentSource, 20.0, 2)
            .net("inp", &[("DP", "g1"), ("TAIL", "ref")], NetClass::Signal)
            .net("outl", &[("DP", "d1"), ("CML", "d")], NetClass::Signal)
            .net("outr", &[("DP", "d2"), ("CMR", "d")], NetClass::Signal)
            .net("vdd", &[("CML", "s"), ("CMR", "s")], NetClass::Power)
            .symmetry_v(&[("CML", "CMR"), ("DP", "DP")])
            .alignment(crate::constraint::Axis::Horizontal, &["CML", "CMR"])
            .build()
            .unwrap()
    }

    #[test]
    fn graph_has_one_node_per_block() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.feature_dim(), NODE_FEATURE_DIM);
        assert_eq!(g.circuit_name(), "g");
    }

    #[test]
    fn connectivity_edges_skip_supply_nets() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        // inp, outl, outr → 3 edges; vdd skipped.
        assert_eq!(g.num_edges(EdgeRelation::Connectivity), 3);
    }

    #[test]
    fn symmetry_and_alignment_edges_present() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        assert_eq!(g.num_edges(EdgeRelation::VerticalSymmetry), 1);
        assert_eq!(g.num_edges(EdgeRelation::HorizontalAlignment), 1);
        assert_eq!(g.num_edges(EdgeRelation::VerticalAlignment), 0);
        // CML (node 1) is symmetric with CMR (node 2).
        assert_eq!(g.neighbors(EdgeRelation::VerticalSymmetry, 1), &[2]);
    }

    #[test]
    fn edges_are_undirected() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        let fwd = g.neighbors(EdgeRelation::Connectivity, 0).to_vec();
        for n in fwd {
            assert!(g.neighbors(EdgeRelation::Connectivity, n).contains(&0));
        }
    }

    #[test]
    fn features_are_finite_and_nonempty() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        for node in 0..g.num_nodes() {
            assert_eq!(g.features(node).len(), NODE_FEATURE_DIM);
            assert!(g.features(node).iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn degree_counts_all_relations() {
        let g = CircuitGraph::from_circuit(&sample_circuit());
        // CML: connectivity to DP, symmetry to CMR, alignment to CMR.
        assert_eq!(g.degree(1), 3);
        assert!(g.total_edges() >= 5);
    }
}

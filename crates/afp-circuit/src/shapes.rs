//! Multi-shape block configuration.
//!
//! Following the paper's §IV-B, each functional block is offered to the RL
//! agent in **three candidate shapes** of identical area: the internal device
//! placement (common-centroid, interdigitated, row) is re-arranged while the
//! total device width — and hence the active area — stays fixed. The agent's
//! action space is therefore `3 × 32 × 32` (shape × grid cell, §IV-D1).

use serde::{Deserialize, Serialize};

use crate::block::{Block, InternalPlacement};

/// Number of candidate shapes offered per block (fixed by the action space).
pub const SHAPES_PER_BLOCK: usize = 3;

/// A rectangular realization of a block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shape {
    /// Width in µm.
    pub width_um: f64,
    /// Height in µm.
    pub height_um: f64,
}

impl Shape {
    /// Creates a shape.
    pub fn new(width_um: f64, height_um: f64) -> Self {
        Shape {
            width_um,
            height_um,
        }
    }

    /// Builds the shape of the given area with the given width/height aspect
    /// ratio (`aspect = width / height`).
    pub fn from_area_and_aspect(area_um2: f64, aspect: f64) -> Self {
        let height = (area_um2 / aspect.max(1e-9)).sqrt();
        let width = area_um2 / height.max(1e-9);
        Shape {
            width_um: width,
            height_um: height,
        }
    }

    /// Area in µm².
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.height_um
    }

    /// Aspect ratio `width / height`.
    pub fn aspect(&self) -> f64 {
        self.width_um / self.height_um.max(1e-12)
    }

    /// The shape rotated by 90°.
    pub fn rotated(&self) -> Shape {
        Shape {
            width_um: self.height_um,
            height_um: self.width_um,
        }
    }
}

/// The three candidate shapes of a block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeSet {
    shapes: [Shape; SHAPES_PER_BLOCK],
}

impl ShapeSet {
    /// Builds the candidate shapes of a block.
    ///
    /// The aspect-ratio palette depends on the internal placement style:
    /// common-centroid structures stay close to square (they need balanced
    /// rows/columns of matched units), interdigitated structures prefer wide
    /// and flat outlines (a single row of alternating fingers), and plain rows
    /// or single devices span the widest range.
    pub fn for_block(block: &Block) -> Self {
        let aspects: [f64; SHAPES_PER_BLOCK] = match block.internal_placement {
            InternalPlacement::CommonCentroid => [0.7, 1.0, 1.45],
            InternalPlacement::Interdigitated => [1.0, 2.0, 3.5],
            InternalPlacement::Row => [0.5, 1.0, 2.0],
            InternalPlacement::Single => [0.4, 1.0, 2.5],
        };
        let shapes = [
            Shape::from_area_and_aspect(block.area_um2, aspects[0]),
            Shape::from_area_and_aspect(block.area_um2, aspects[1]),
            Shape::from_area_and_aspect(block.area_um2, aspects[2]),
        ];
        ShapeSet { shapes }
    }

    /// Builds a shape set from explicit shapes.
    ///
    /// # Panics
    ///
    /// Panics if the slice does not contain exactly [`SHAPES_PER_BLOCK`] shapes.
    pub fn from_shapes(shapes: &[Shape]) -> Self {
        assert_eq!(shapes.len(), SHAPES_PER_BLOCK, "exactly three shapes required");
        ShapeSet {
            shapes: [shapes[0], shapes[1], shapes[2]],
        }
    }

    /// The candidate shapes.
    pub fn shapes(&self) -> &[Shape; SHAPES_PER_BLOCK] {
        &self.shapes
    }

    /// The shape at the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= SHAPES_PER_BLOCK`.
    pub fn shape(&self, index: usize) -> Shape {
        self.shapes[index]
    }

    /// Index of the candidate closest to a square outline.
    pub fn most_square(&self) -> usize {
        let mut best = 0;
        let mut best_err = f64::MAX;
        for (i, s) in self.shapes.iter().enumerate() {
            let err = (s.aspect().ln()).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        best
    }
}

/// Builds the shape sets of every block in a circuit, in block order.
pub fn shape_sets(circuit: &crate::Circuit) -> Vec<ShapeSet> {
    circuit.blocks.iter().map(ShapeSet::for_block).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockId, BlockKind};

    fn block(style: InternalPlacement) -> Block {
        Block::new(BlockId(0), "b", BlockKind::CurrentMirror, 48.0, 3)
            .with_internal_placement(style)
    }

    #[test]
    fn shapes_preserve_area() {
        for style in [
            InternalPlacement::CommonCentroid,
            InternalPlacement::Interdigitated,
            InternalPlacement::Row,
            InternalPlacement::Single,
        ] {
            let set = ShapeSet::for_block(&block(style));
            for s in set.shapes() {
                assert!(
                    (s.area_um2() - 48.0).abs() < 1e-6,
                    "{style:?} produced area {}",
                    s.area_um2()
                );
            }
        }
    }

    #[test]
    fn three_distinct_aspects() {
        let set = ShapeSet::for_block(&block(InternalPlacement::Row));
        let a: Vec<f64> = set.shapes().iter().map(|s| s.aspect()).collect();
        assert!(a[0] < a[1] && a[1] < a[2]);
    }

    #[test]
    fn from_area_and_aspect_consistent() {
        let s = Shape::from_area_and_aspect(100.0, 4.0);
        assert!((s.area_um2() - 100.0).abs() < 1e-9);
        assert!((s.aspect() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_swaps_dimensions() {
        let s = Shape::new(4.0, 2.0);
        let r = s.rotated();
        assert_eq!(r.width_um, 2.0);
        assert_eq!(r.height_um, 4.0);
    }

    #[test]
    fn most_square_picks_unit_aspect() {
        let set = ShapeSet::from_shapes(&[
            Shape::from_area_and_aspect(10.0, 0.2),
            Shape::from_area_and_aspect(10.0, 1.0),
            Shape::from_area_and_aspect(10.0, 5.0),
        ]);
        assert_eq!(set.most_square(), 1);
    }

    #[test]
    fn shape_sets_covers_all_blocks() {
        let c = crate::Circuit::builder("t")
            .block("A", BlockKind::CurrentMirror, 10.0, 3)
            .block("B", BlockKind::DifferentialPair, 20.0, 4)
            .net("n", &[("A", "d"), ("B", "s")], crate::NetClass::Signal)
            .build()
            .unwrap();
        assert_eq!(shape_sets(&c).len(), 2);
    }
}

//! A minimal SPICE-style netlist reader.
//!
//! The pipeline's input (paper Fig. 1) is a circuit schematic / netlist. This
//! module parses the common flat SPICE card format so that external netlists
//! can be fed into structure recognition without hand-building a
//! [`Schematic`]:
//!
//! * `M<name> d g s b <model> [W=… L=… NF=… M=…]` — MOS transistors (the
//!   model-name *prefix* decides polarity: `p…`/`pmos…`/`pch…`/`pfet…` are
//!   PMOS, everything else — including low-power spellings like `nmos_lp` or
//!   `nch_hvt_lp` — is NMOS),
//! * `R<name> a b <value>` / `C<name> a b <value>` — passives,
//! * `D<name> a k <model>` and `Q<name> c b e <model>` — diodes / BJTs,
//! * `+` at the start of a line continues the previous card,
//! * `*` and `;` comments are dropped; `.end`/`.ends`/other dot-cards and
//!   unknown card types are skipped, with a `(line, reason)` record appended
//!   to [`Schematic::skipped`] for each.
//!
//! Dimensions are read in micrometres (plain numbers) with the usual
//! engineering suffixes (`u`, `n`, `m`, `k`) accepted.

use std::fmt;

use crate::device::{Device, DeviceId, DeviceKind};
use crate::netlist::Schematic;

/// Errors produced while parsing a SPICE netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpiceError {
    /// A device card has fewer fields than its type requires.
    TooFewFields {
        /// The line number (1-based).
        line: usize,
        /// The device card's leading token.
        card: String,
    },
    /// A numeric parameter could not be parsed.
    BadNumber {
        /// The line number (1-based).
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A `+` continuation line appeared before any card it could extend.
    DanglingContinuation {
        /// The line number (1-based).
        line: usize,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::TooFewFields { line, card } => {
                write!(f, "line {line}: device card `{card}` has too few fields")
            }
            SpiceError::BadNumber { line, token } => {
                write!(f, "line {line}: cannot parse number `{token}`")
            }
            SpiceError::DanglingContinuation { line } => {
                write!(f, "line {line}: `+` continuation with no preceding card")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

/// Parses a numeric value with an optional engineering suffix, returning the
/// value scaled to micrometres-friendly units (`u` → 1, `n` → 1e-3, `m` → 1e3,
/// `k` → 1e6; a bare number is taken as already being in µm).
fn parse_value(token: &str, line: usize) -> Result<f64, SpiceError> {
    let lower = token.trim().to_ascii_lowercase();
    let (digits, scale) = match lower.chars().last() {
        Some('u') => (&lower[..lower.len() - 1], 1.0),
        Some('n') => (&lower[..lower.len() - 1], 1e-3),
        Some('m') => (&lower[..lower.len() - 1], 1e3),
        Some('k') => (&lower[..lower.len() - 1], 1e6),
        _ => (lower.as_str(), 1.0),
    };
    digits
        .parse::<f64>()
        .map(|v| v * scale)
        .map_err(|_| SpiceError::BadNumber {
            line,
            token: token.to_string(),
        })
}

/// Decides MOS polarity from the model name.
///
/// Polarity is carried by the model *prefix* (`pmos…`, `pch…`, `pfet…`, or a
/// bare leading `p`), not by `p` appearing anywhere: flavour suffixes such as
/// `_lp` (low power) or `_hvt_lp` would otherwise flip NMOS models like
/// `nmos_lp` and `nch_hvt_lp` to PMOS. Unrecognized prefixes default to NMOS.
fn mos_kind(model: &str) -> DeviceKind {
    let lower = model.to_ascii_lowercase();
    if ["pmos", "pch", "pfet"].iter().any(|p| lower.starts_with(p)) {
        return DeviceKind::Pmos;
    }
    if ["nmos", "nch", "nfet"].iter().any(|p| lower.starts_with(p)) {
        return DeviceKind::Nmos;
    }
    match lower.chars().next() {
        Some('p') => DeviceKind::Pmos,
        _ => DeviceKind::Nmos,
    }
}

/// Extracts a `KEY=value` parameter (case-insensitive) from the fields of a
/// card, if present.
fn named_param(fields: &[&str], key: &str, line: usize) -> Result<Option<f64>, SpiceError> {
    for field in fields {
        if let Some((k, v)) = field.split_once('=') {
            if k.eq_ignore_ascii_case(key) {
                return parse_value(v, line).map(Some);
            }
        }
    }
    Ok(None)
}

/// Folds the physical lines of a SPICE source into logical cards.
///
/// Strips `;` comments, drops blank and `*` comment lines, and appends `+`
/// continuation lines (space-joined) to the preceding card. Each card keeps
/// the line number of its first physical line for error reporting.
///
/// # Errors
///
/// Returns [`SpiceError::DanglingContinuation`] when a `+` line appears
/// before any card it could extend (comment lines do not count as cards).
fn logical_cards(text: &str) -> Result<Vec<(usize, String)>, SpiceError> {
    let mut cards: Vec<(usize, String)> = Vec::new();
    for (line_no, raw_line) in text.lines().enumerate() {
        let line = line_no + 1;
        let stripped = raw_line.split(';').next().unwrap_or("").trim();
        if stripped.is_empty() || stripped.starts_with('*') {
            continue;
        }
        if let Some(rest) = stripped.strip_prefix('+') {
            match cards.last_mut() {
                Some((_, card)) => {
                    card.push(' ');
                    card.push_str(rest.trim());
                }
                None => return Err(SpiceError::DanglingContinuation { line }),
            }
            continue;
        }
        cards.push((line, stripped.to_string()));
    }
    Ok(cards)
}

/// Parses a flat SPICE netlist into a device-level [`Schematic`].
///
/// `+` continuation lines are folded into the preceding card before
/// tokenizing, so multi-line device cards keep their parameters. Unknown card
/// types and dot-directives are skipped, with a `(line, reason)` entry pushed
/// onto [`Schematic::skipped`] for each.
///
/// # Errors
///
/// Returns a [`SpiceError`] for malformed device cards and for a leading `+`
/// continuation with no card before it.
pub fn parse_spice(name: &str, text: &str) -> Result<Schematic, SpiceError> {
    let mut schematic = Schematic::new(name);
    // (net name, device, terminal) triples collected before being grouped.
    let mut connections: Vec<(String, DeviceId, &'static str)> = Vec::new();

    for (line, card_text) in logical_cards(text)? {
        if card_text.starts_with('.') {
            let directive = card_text.split_whitespace().next().unwrap_or(".");
            schematic
                .skipped
                .push((line, format!("dot-directive `{directive}` skipped")));
            continue;
        }
        let fields: Vec<&str> = card_text.split_whitespace().collect();
        let card = fields[0];
        let kind_char = card.chars().next().unwrap_or(' ').to_ascii_uppercase();
        match kind_char {
            'M' => {
                if fields.len() < 6 {
                    return Err(SpiceError::TooFewFields {
                        line,
                        card: card.to_string(),
                    });
                }
                let kind = mos_kind(fields[5]);
                let w = named_param(&fields, "W", line)?.unwrap_or(1.0);
                let l = named_param(&fields, "L", line)?.unwrap_or(0.5);
                let nf = named_param(&fields, "NF", line)?.unwrap_or(1.0).max(1.0) as u32;
                let m = named_param(&fields, "M", line)?.unwrap_or(1.0).max(1.0) as u32;
                let mut device = Device::new(DeviceId(0), card, kind, w, l, nf);
                device.multiplier = m;
                let id = schematic.add_device(device);
                connections.push((fields[1].to_string(), id, "d"));
                connections.push((fields[2].to_string(), id, "g"));
                connections.push((fields[3].to_string(), id, "s"));
                connections.push((fields[4].to_string(), id, "b"));
            }
            'R' | 'C' => {
                if fields.len() < 4 {
                    return Err(SpiceError::TooFewFields {
                        line,
                        card: card.to_string(),
                    });
                }
                let kind = if kind_char == 'R' {
                    DeviceKind::Resistor
                } else {
                    DeviceKind::Capacitor
                };
                // Use the value as a crude width surrogate so areas are
                // monotone in the component value; explicit W/L win if given.
                let value = parse_value(fields[3], line).unwrap_or(1.0);
                let w = named_param(&fields, "W", line)?.unwrap_or(value.abs().cbrt().max(0.5));
                let l = named_param(&fields, "L", line)?.unwrap_or(w * 4.0);
                let id = schematic.add_device(Device::new(DeviceId(0), card, kind, w, l, 1));
                connections.push((fields[1].to_string(), id, "a"));
                connections.push((fields[2].to_string(), id, "b"));
            }
            'D' | 'Q' => {
                let min_fields = if kind_char == 'D' { 3 } else { 4 };
                if fields.len() < min_fields {
                    return Err(SpiceError::TooFewFields {
                        line,
                        card: card.to_string(),
                    });
                }
                let kind = if kind_char == 'D' {
                    DeviceKind::Diode
                } else {
                    DeviceKind::Bjt
                };
                let w = named_param(&fields, "W", line)?.unwrap_or(2.0);
                let l = named_param(&fields, "L", line)?.unwrap_or(2.0);
                let id = schematic.add_device(Device::new(DeviceId(0), card, kind, w, l, 1));
                connections.push((fields[1].to_string(), id, "a"));
                connections.push((fields[2].to_string(), id, "b"));
                if kind_char == 'Q' {
                    connections.push((fields[3].to_string(), id, "c"));
                }
            }
            _ => {
                // Unknown card (subcircuit instance, source, …): record why.
                schematic
                    .skipped
                    .push((line, format!("unrecognized card `{card}` skipped")));
            }
        }
    }

    // Group the collected pins by net name, preserving first-seen order.
    let mut net_order: Vec<String> = Vec::new();
    for (net, _, _) in &connections {
        if !net_order.contains(net) {
            net_order.push(net.clone());
        }
    }
    for net in net_order {
        let pins: Vec<(DeviceId, &str)> = connections
            .iter()
            .filter(|(n, _, _)| *n == net)
            .map(|(_, d, t)| (*d, *t))
            .collect();
        schematic.connect(net, pins);
    }
    Ok(schematic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognition::recognize;

    const FIVE_T_OTA: &str = r"* five transistor OTA
M1 outl inp tail 0 nmos W=8u L=0.5u NF=2
M2 out  inn tail 0 nmos W=8u L=0.5u NF=2
M3 outl outl vdd vdd pmos W=12u L=0.5u NF=2
M4 out  outl vdd vdd pmos W=12u L=0.5u NF=2
M5 tail vbias 0 0 nmos W=16u L=1u NF=4
C1 out 0 1.0
.end
";

    #[test]
    fn parses_devices_and_nets() {
        let schematic = parse_spice("five-t", FIVE_T_OTA).unwrap();
        assert_eq!(schematic.devices.len(), 6);
        assert_eq!(schematic.devices[0].kind, DeviceKind::Nmos);
        assert_eq!(schematic.devices[2].kind, DeviceKind::Pmos);
        assert_eq!(schematic.devices[5].kind, DeviceKind::Capacitor);
        assert!((schematic.devices[0].width_um - 8.0).abs() < 1e-9);
        assert_eq!(schematic.devices[4].fingers, 4);
        // The tail net connects the two input devices and the tail source.
        let tail_members = schematic
            .connections
            .iter()
            .find(|(n, _)| n == "tail")
            .map(|(_, p)| p.len())
            .unwrap();
        assert_eq!(tail_members, 3);
    }

    #[test]
    fn parsed_netlist_feeds_structure_recognition() {
        let schematic = parse_spice("five-t", FIVE_T_OTA).unwrap();
        let circuit = recognize(&schematic);
        circuit.validate().unwrap();
        let kinds: Vec<_> = circuit.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&crate::BlockKind::DifferentialPair), "{kinds:?}");
        assert!(kinds.contains(&crate::BlockKind::CurrentMirror), "{kinds:?}");
    }

    #[test]
    fn engineering_suffixes_are_scaled() {
        assert!((parse_value("8u", 1).unwrap() - 8.0).abs() < 1e-9);
        assert!((parse_value("500n", 1).unwrap() - 0.5).abs() < 1e-9);
        assert!((parse_value("2m", 1).unwrap() - 2000.0).abs() < 1e-9);
        assert!((parse_value("3", 1).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_cards_are_rejected() {
        assert!(matches!(
            parse_spice("bad", "M1 a b\n"),
            Err(SpiceError::TooFewFields { .. })
        ));
        assert!(matches!(
            parse_spice("bad", "M1 a b c d nmos W=xx\n"),
            Err(SpiceError::BadNumber { .. })
        ));
    }

    #[test]
    fn comments_and_directives_are_ignored() {
        let schematic = parse_spice(
            "c",
            "* comment only\n.subckt foo a b\nVdd vdd 0 1.8\n.ends\n",
        )
        .unwrap();
        assert!(schematic.devices.is_empty());
        assert!(schematic.connections.is_empty());
    }

    #[test]
    fn mos_polarity_follows_model_prefix_not_any_p() {
        // Low-power NMOS flavours contain a 'p' but must stay NMOS.
        let schematic = parse_spice(
            "lp",
            "M1 d g s 0 nmos_lp W=4u L=0.5u\n\
             M2 d g s 0 nch_hvt_lp W=4u L=0.5u\n\
             M3 d g vdd vdd pmos_lvt W=8u L=0.5u\n\
             M4 d g vdd vdd pch_hvt W=8u L=0.5u\n\
             M5 d g vdd vdd p33 W=8u L=0.5u\n",
        )
        .unwrap();
        let kinds: Vec<_> = schematic.devices.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DeviceKind::Nmos,
                DeviceKind::Nmos,
                DeviceKind::Pmos,
                DeviceKind::Pmos,
                DeviceKind::Pmos,
            ]
        );
    }

    #[test]
    fn continuation_lines_fold_into_previous_card() {
        let schematic = parse_spice(
            "cont",
            "M1 d g s 0 nmos\n+ W=8u L=0.5u\n+ NF=2 M=3\nC1 out 0\n+ 1.0\n",
        )
        .unwrap();
        assert_eq!(schematic.devices.len(), 2);
        assert!((schematic.devices[0].width_um - 8.0).abs() < 1e-9);
        assert!((schematic.devices[0].length_um - 0.5).abs() < 1e-9);
        assert_eq!(schematic.devices[0].fingers, 2);
        assert_eq!(schematic.devices[0].multiplier, 3);
        assert_eq!(schematic.devices[1].kind, DeviceKind::Capacitor);
    }

    #[test]
    fn continuation_after_comment_extends_last_card() {
        // A comment line is not a card; the `+` still extends M1.
        let schematic =
            parse_spice("cont", "M1 d g s 0 nmos\n* noise\n+ W=8u L=0.5u\n").unwrap();
        assert!((schematic.devices[0].width_um - 8.0).abs() < 1e-9);
    }

    #[test]
    fn dangling_continuation_is_an_error() {
        let err = parse_spice("bad", "* header\n+ W=8u\n").unwrap_err();
        assert_eq!(err, SpiceError::DanglingContinuation { line: 2 });
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn skipped_cards_are_reported_with_line_and_reason() {
        let schematic = parse_spice(
            "diag",
            "* comment\n.subckt foo a b\nM1 d g s 0 nmos W=4u L=0.5u\nVdd vdd 0 1.8\n.ends\n",
        )
        .unwrap();
        assert_eq!(schematic.devices.len(), 1);
        assert_eq!(schematic.skipped.len(), 3);
        assert_eq!(schematic.skipped[0].0, 2);
        assert!(schematic.skipped[0].1.contains(".subckt"));
        assert_eq!(schematic.skipped[1].0, 4);
        assert!(schematic.skipped[1].1.contains("`Vdd`"));
        assert_eq!(schematic.skipped[2].0, 5);
        assert!(schematic.skipped[2].1.contains(".ends"));
    }

    #[test]
    fn error_messages_mention_line_numbers() {
        let err = parse_spice("bad", "\n\nM9 a b\n").unwrap_err();
        assert!(err.to_string().contains("line 3"));
    }
}

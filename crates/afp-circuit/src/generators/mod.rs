//! Synthetic industrial-circuit generators.
//!
//! The paper evaluates on six proprietary Infineon designs and trains on five
//! more. Those netlists are not available, so this module provides parametric
//! generators that reproduce the circuits' *structural* properties — block
//! counts, functional-structure mix, connectivity topology, constraint
//! structure and realistic area distributions — which are the only properties
//! the floorplanning experiments depend on (see `DESIGN.md`, substitution
//! table).

mod bias;
mod driver;
mod latch;
mod misc;
mod ota;

pub use bias::{bias, bias19, bias3, bias9};
pub use driver::driver;
pub use latch::rs_latch;
pub use misc::{clock_synchronizer, comparator, level_shifter, oscillator};
pub use ota::{ota, ota3, ota5, ota8, ota8_schematic};

use rand::Rng;

use crate::netlist::Circuit;

/// A circuit together with the metadata the experiments need.
#[derive(Debug, Clone)]
pub struct BenchmarkCircuit {
    /// The circuit itself.
    pub circuit: Circuit,
    /// `true` if the circuit is part of the RL training set ("seen"),
    /// `false` for the transfer / zero-shot circuits (grey rows in Table I).
    pub seen_during_training: bool,
}

/// The five circuits of the RL training curriculum (paper §IV-D5): three OTAs
/// with 3, 5 and 8 blocks and two bias networks with 3 and 9 blocks, ordered
/// by increasing complexity as required by hybrid curriculum learning.
pub fn training_set() -> Vec<Circuit> {
    vec![ota3(), bias3(), ota5(), ota8(), bias9()]
}

/// The six evaluation circuits of Table I, in the paper's row order:
/// OTA-1 (5), OTA-2 (8), Bias-1 (9) — seen during training — and
/// RS Latch (7), Driver (17), Bias-2 (19) — unseen.
pub fn evaluation_set() -> Vec<BenchmarkCircuit> {
    vec![
        BenchmarkCircuit {
            circuit: ota5(),
            seen_during_training: true,
        },
        BenchmarkCircuit {
            circuit: ota8(),
            seen_during_training: true,
        },
        BenchmarkCircuit {
            circuit: bias9(),
            seen_during_training: true,
        },
        BenchmarkCircuit {
            circuit: rs_latch(),
            seen_during_training: false,
        },
        BenchmarkCircuit {
            circuit: driver(),
            seen_during_training: false,
        },
        BenchmarkCircuit {
            circuit: bias19(),
            seen_during_training: false,
        },
    ]
}

/// All circuit families used to build the R-GCN pre-training dataset
/// (paper §IV-C: OTAs, bias circuits, drivers, level shifters, clock
/// synchronizers, comparators and oscillators).
pub fn dataset_families() -> Vec<Circuit> {
    vec![
        ota3(),
        ota5(),
        ota8(),
        bias3(),
        bias9(),
        bias19(),
        driver(),
        rs_latch(),
        comparator(),
        level_shifter(),
        clock_synchronizer(),
        oscillator(),
    ]
}

/// Produces a randomized variant of a circuit: block areas are jittered by up
/// to ±`jitter` (relative), and constraints are kept or dropped with
/// probability one half. Used to expand the pre-training dataset so the R-GCN
/// sees a balance of constrained and unconstrained floorplans.
pub fn random_variant<R: Rng + ?Sized>(base: &Circuit, jitter: f64, rng: &mut R) -> Circuit {
    let mut c = base.clone();
    for block in &mut c.blocks {
        let factor = 1.0 + rng.gen_range(-jitter..=jitter);
        block.area_um2 = (block.area_um2 * factor).max(1e-3);
        block.stripe_width_um = (block.stripe_width_um * factor.sqrt()).max(0.05);
    }
    if rng.gen_bool(0.5) {
        c.constraints = crate::constraint::ConstraintSet::new();
    }
    c.name = format!("{}-var{}", c.name, rng.gen_range(0..u32::MAX));
    c
}

/// Samples a random circuit for dataset generation: picks a family and applies
/// [`random_variant`].
pub fn random_circuit<R: Rng + ?Sized>(rng: &mut R) -> Circuit {
    let families = dataset_families();
    let idx = rng.gen_range(0..families.len());
    random_variant(&families[idx], 0.3, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_set_matches_paper_block_counts() {
        let counts: Vec<usize> = training_set().iter().map(|c| c.num_blocks()).collect();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        // Paper §IV-D5: 3, 5, 8 block OTAs and 3, 9 block bias circuits.
        assert_eq!(sorted, vec![3, 3, 5, 8, 9]);
    }

    #[test]
    fn evaluation_set_matches_table_one() {
        let set = evaluation_set();
        let counts: Vec<usize> = set.iter().map(|b| b.circuit.num_blocks()).collect();
        assert_eq!(counts, vec![5, 8, 9, 7, 17, 19]);
        let seen: Vec<bool> = set.iter().map(|b| b.seen_during_training).collect();
        assert_eq!(seen, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn all_dataset_families_validate() {
        for c in dataset_families() {
            c.validate().unwrap();
        }
    }

    #[test]
    fn random_variant_preserves_structure() {
        let mut rng = StdRng::seed_from_u64(0);
        let base = ota8();
        let v = random_variant(&base, 0.3, &mut rng);
        assert_eq!(v.num_blocks(), base.num_blocks());
        assert_eq!(v.num_nets(), base.num_nets());
        v.validate().unwrap();
        // Areas differ but stay positive.
        assert!(v.blocks.iter().all(|b| b.area_um2 > 0.0));
        assert!(v
            .blocks
            .iter()
            .zip(base.blocks.iter())
            .any(|(a, b)| (a.area_um2 - b.area_um2).abs() > 1e-9));
    }

    #[test]
    fn random_circuit_is_reproducible_per_seed() {
        let a = random_circuit(&mut StdRng::seed_from_u64(7));
        let b = random_circuit(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}

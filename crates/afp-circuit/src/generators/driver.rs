//! MOSFET low-side driver generator (the 17-structure "Driver" of Table I and
//! Table II, after the procedural driver generator of [12]).

use crate::block::{BlockKind, RoutingDirection};
use crate::constraint::Axis;
use crate::net::NetClass;
use crate::netlist::Circuit;

/// Builds the 17-structure low-side driver: a large power device, segmented
/// pre-driver buffers, level shifter, current-limit sensing and protection
/// logic. Block areas are dominated by the power devices, as in the original
/// circuit (the paper reports ≈3600 µm² total layout area).
pub fn driver() -> Circuit {
    let mut b = Circuit::builder("Driver")
        // Power stage, split in two matched halves.
        .block_full(
            crate::block::Block::new(
                crate::block::BlockId(0),
                "PWR_L",
                BlockKind::PowerDriver,
                620.0,
                4,
            )
            .with_routing_direction(RoutingDirection::Vertical),
        )
        .block_full(
            crate::block::Block::new(
                crate::block::BlockId(0),
                "PWR_R",
                BlockKind::PowerDriver,
                620.0,
                4,
            )
            .with_routing_direction(RoutingDirection::Vertical),
        )
        // Pre-driver chain: three scaled buffer stages.
        .block("PRE1", BlockKind::PreDriver, 90.0, 3)
        .block("PRE2", BlockKind::PreDriver, 150.0, 3)
        .block("PRE3", BlockKind::PreDriver, 240.0, 3)
        // Level shifter and input logic.
        .block("LVL", BlockKind::LevelShifter, 70.0, 4)
        .block("IN_BUF", BlockKind::Inverter, 28.0, 3)
        .block("NAND_EN", BlockKind::LogicGate, 34.0, 4)
        // Gate clamp and pull-down.
        .block("CLAMP", BlockKind::Switch, 46.0, 3)
        .block("PULLDN", BlockKind::Switch, 52.0, 3)
        // Current sense and protection.
        .block("SENSE", BlockKind::CommonSource, 80.0, 3)
        .block("CMP_IN", BlockKind::ComparatorInput, 60.0, 4)
        .block("CMP_REG", BlockKind::RegenerativeStage, 44.0, 3)
        .block("IBIAS", BlockKind::CurrentSource, 38.0, 2)
        .block("RES_SENSE", BlockKind::ResistorBank, 120.0, 2)
        .block("CAP_BOOT", BlockKind::CapacitorBank, 210.0, 2)
        .block("ESD", BlockKind::Unclassified, 66.0, 2);

    b = b
        .net("in", &[("IN_BUF", "a"), ("NAND_EN", "a")], NetClass::Signal)
        .net("en_gated", &[("NAND_EN", "y"), ("LVL", "in")], NetClass::Signal)
        .net("lvl_out", &[("LVL", "out"), ("PRE1", "a")], NetClass::Signal)
        .net("pre1_out", &[("PRE1", "y"), ("PRE2", "a")], NetClass::Signal)
        .net("pre2_out", &[("PRE2", "y"), ("PRE3", "a")], NetClass::Signal)
        .net(
            "gate_drv",
            &[("PRE3", "y"), ("PWR_L", "g"), ("PWR_R", "g"), ("CLAMP", "a"), ("PULLDN", "a")],
            NetClass::Critical,
        )
        .net(
            "drain_out",
            &[("PWR_L", "d"), ("PWR_R", "d"), ("CAP_BOOT", "a"), ("ESD", "pad"), ("SENSE", "d")],
            NetClass::Critical,
        )
        .net(
            "src_sense",
            &[("PWR_L", "s"), ("PWR_R", "s"), ("RES_SENSE", "a")],
            NetClass::Signal,
        )
        .net("sense_v", &[("SENSE", "g"), ("RES_SENSE", "b"), ("CMP_IN", "inp")], NetClass::Signal)
        .net("cmp_ref", &[("CMP_IN", "inn"), ("IBIAS", "ref")], NetClass::Bias)
        .net("cmp_out", &[("CMP_IN", "out"), ("CMP_REG", "in")], NetClass::Signal)
        .net("flag_oc", &[("CMP_REG", "out"), ("NAND_EN", "b")], NetClass::Signal)
        .net("clamp_b", &[("CLAMP", "b"), ("IN_BUF", "y")], NetClass::Signal)
        .net("boot", &[("CAP_BOOT", "b"), ("LVL", "boot")], NetClass::Signal)
        .net("pd_ctl", &[("PULLDN", "b"), ("CMP_REG", "outb")], NetClass::Signal)
        .net("ib_cmp", &[("IBIAS", "out"), ("CMP_REG", "tail")], NetClass::Bias);

    b.symmetry_v(&[("PWR_L", "PWR_R")])
        .alignment(Axis::Horizontal, &["PRE1", "PRE2", "PRE3"])
        .target_aspect_ratio(1.0)
        .build()
        .expect("Driver is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_matches_table_one() {
        assert_eq!(driver().num_blocks(), 17);
    }

    #[test]
    fn driver_validates() {
        driver().validate().unwrap();
    }

    #[test]
    fn power_devices_dominate_area() {
        let c = driver();
        let pwr: f64 = c
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::PowerDriver)
            .map(|b| b.area_um2)
            .sum();
        assert!(pwr > 0.3 * c.total_block_area());
    }

    #[test]
    fn driver_has_symmetry_and_alignment() {
        let c = driver();
        let has_sym = c.constraints.iter().any(|x| x.is_symmetry());
        let has_align = c.constraints.iter().any(|x| !x.is_symmetry());
        assert!(has_sym && has_align);
        assert_eq!(c.target_aspect_ratio, Some(1.0));
    }

    #[test]
    fn every_block_is_connected() {
        let c = driver();
        for block in &c.blocks {
            assert!(
                !c.nets_of_block(block.id).is_empty(),
                "block {} is floating",
                block.name
            );
        }
    }
}

//! RS-latch generator (the 7-structure "RS Latch" of Table I).

use crate::block::BlockKind;
use crate::net::NetClass;
use crate::netlist::Circuit;

/// Builds the 7-structure set-reset latch: cross-coupled latch core, two input
/// gates, output buffers and a local bias / keeper structure.
pub fn rs_latch() -> Circuit {
    Circuit::builder("RS-Latch")
        .block("LATCH", BlockKind::LatchCore, 52.0, 5)
        .block("NOR_S", BlockKind::LogicGate, 30.0, 4)
        .block("NOR_R", BlockKind::LogicGate, 30.0, 4)
        .block("BUF_Q", BlockKind::Inverter, 24.0, 3)
        .block("BUF_QB", BlockKind::Inverter, 24.0, 3)
        .block("KEEPER", BlockKind::CrossCoupledPair, 20.0, 3)
        .block("IBIAS", BlockKind::CurrentSource, 16.0, 2)
        .net("set", &[("NOR_S", "a"), ("KEEPER", "s")], NetClass::Signal)
        .net("reset", &[("NOR_R", "a"), ("KEEPER", "r")], NetClass::Signal)
        .net("q_int", &[("LATCH", "q"), ("NOR_R", "b"), ("BUF_Q", "a")], NetClass::Critical)
        .net("qb_int", &[("LATCH", "qb"), ("NOR_S", "b"), ("BUF_QB", "a")], NetClass::Critical)
        .net("s_drv", &[("NOR_S", "y"), ("LATCH", "s")], NetClass::Signal)
        .net("r_drv", &[("NOR_R", "y"), ("LATCH", "r")], NetClass::Signal)
        .net("keep", &[("KEEPER", "out"), ("LATCH", "keep")], NetClass::Signal)
        .net("ib", &[("IBIAS", "out"), ("LATCH", "tail")], NetClass::Bias)
        .symmetry_v(&[("NOR_S", "NOR_R"), ("BUF_Q", "BUF_QB"), ("LATCH", "LATCH")])
        .build()
        .expect("RS latch is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_matches_table_one() {
        assert_eq!(rs_latch().num_blocks(), 7);
    }

    #[test]
    fn latch_validates_and_has_symmetry() {
        let c = rs_latch();
        c.validate().unwrap();
        assert_eq!(c.constraints.len(), 1);
        let sym = c.constraints.iter().next().unwrap();
        assert!(sym.is_symmetry());
        assert_eq!(sym.members().len(), 5);
    }

    #[test]
    fn every_block_connected() {
        let c = rs_latch();
        for b in &c.blocks {
            assert!(!c.nets_of_block(b.id).is_empty(), "{} floating", b.name);
        }
    }
}

//! Bias-network generators (Bias-1 with 9 structures, Bias-2 with 19, plus a
//! small 3-structure bias used for RL training).

use crate::block::BlockKind;
use crate::net::NetClass;
use crate::netlist::Circuit;

/// Builds a bias circuit with the requested number of functional blocks.
///
/// Supported sizes are 3, 9 and 19 blocks; other values are clamped.
pub fn bias(num_blocks: usize) -> Circuit {
    match num_blocks {
        0..=5 => bias3(),
        6..=13 => bias9(),
        _ => bias19(),
    }
}

/// 3-structure bias generator used in the RL training curriculum.
pub fn bias3() -> Circuit {
    Circuit::builder("Bias-3")
        .block("REF", BlockKind::BiasGenerator, 34.0, 3)
        .block("MIRROR_N", BlockKind::CurrentMirror, 40.0, 3)
        .block("MIRROR_P", BlockKind::CurrentMirror, 44.0, 3)
        .net("iref", &[("REF", "out"), ("MIRROR_N", "din")], NetClass::Bias)
        .net("ib_n", &[("MIRROR_N", "dout"), ("MIRROR_P", "din")], NetClass::Bias)
        .net("ib_p", &[("MIRROR_P", "dout"), ("REF", "fb")], NetClass::Bias)
        .build()
        .expect("Bias-3 is valid")
}

/// 9-structure bias network ("Bias-1" in Table I / Table II): a reference
/// core, cascoded distribution mirrors and a start-up circuit.
pub fn bias9() -> Circuit {
    Circuit::builder("Bias-1")
        .block("BG_CORE", BlockKind::BandgapCore, 120.0, 4)
        .block("START", BlockKind::StartUp, 26.0, 3)
        .block("MIR_N1", BlockKind::CurrentMirror, 56.0, 3)
        .block("MIR_N2", BlockKind::CurrentMirror, 56.0, 3)
        .block("MIR_P1", BlockKind::CascodeCurrentMirror, 64.0, 3)
        .block("MIR_P2", BlockKind::CascodeCurrentMirror, 64.0, 3)
        .block("RES_TRIM", BlockKind::ResistorBank, 140.0, 4)
        .block("CAP_FILT", BlockKind::CapacitorBank, 170.0, 2)
        .block("BUF", BlockKind::CommonDrain, 30.0, 3)
        .net("vref", &[("BG_CORE", "out"), ("BUF", "g"), ("CAP_FILT", "a")], NetClass::Critical)
        .net("istart", &[("START", "out"), ("BG_CORE", "start")], NetClass::Signal)
        .net("ptat", &[("BG_CORE", "ptat"), ("RES_TRIM", "a")], NetClass::Signal)
        .net("ib_n1", &[("MIR_N1", "din"), ("BG_CORE", "ib")], NetClass::Bias)
        .net("ib_n2", &[("MIR_N1", "dout"), ("MIR_N2", "din")], NetClass::Bias)
        .net("ib_p1", &[("MIR_P1", "din"), ("MIR_N2", "dout")], NetClass::Bias)
        .net("ib_p2", &[("MIR_P1", "dout"), ("MIR_P2", "din")], NetClass::Bias)
        .net("ib_out", &[("MIR_P2", "dout"), ("BUF", "d")], NetClass::Bias)
        .net("rtrim", &[("RES_TRIM", "b"), ("START", "sense")], NetClass::Signal)
        .symmetry_v(&[("MIR_N1", "MIR_N2"), ("MIR_P1", "MIR_P2")])
        .build()
        .expect("Bias-1 is valid")
}

/// 19-structure bias distribution network ("Bias-2" in Table I): a larger
/// tree of cascoded mirrors, trim resistors, filter capacitors and buffers
/// fanning a reference current out to multiple consumers.
pub fn bias19() -> Circuit {
    let mut b = Circuit::builder("Bias-2")
        .block("BG_CORE", BlockKind::BandgapCore, 260.0, 4)
        .block("START", BlockKind::StartUp, 48.0, 3)
        .block("AMP", BlockKind::DifferentialPair, 120.0, 4)
        .block("RES_PTAT", BlockKind::ResistorBank, 300.0, 3)
        .block("RES_TRIM", BlockKind::ResistorBank, 340.0, 4)
        .block("CAP_FILT1", BlockKind::CapacitorBank, 420.0, 2)
        .block("CAP_FILT2", BlockKind::CapacitorBank, 420.0, 2)
        .block("BUF1", BlockKind::CommonDrain, 64.0, 3)
        .block("BUF2", BlockKind::CommonDrain, 64.0, 3);
    // Distribution mirrors: 5 NMOS + 5 PMOS cascoded mirrors.
    for i in 0..5 {
        b = b.block(
            &format!("MIR_N{i}"),
            BlockKind::CurrentMirror,
            96.0 + 8.0 * i as f64,
            3,
        );
    }
    for i in 0..5 {
        b = b.block(
            &format!("MIR_P{i}"),
            BlockKind::CascodeCurrentMirror,
            110.0 + 8.0 * i as f64,
            3,
        );
    }
    let mut b = b
        .net("vref", &[("BG_CORE", "out"), ("AMP", "g1"), ("CAP_FILT1", "a")], NetClass::Critical)
        .net("fb", &[("AMP", "g2"), ("RES_TRIM", "a"), ("BUF1", "s")], NetClass::Critical)
        .net("amp_out", &[("AMP", "out"), ("BUF1", "g"), ("CAP_FILT2", "a")], NetClass::Signal)
        .net("istart", &[("START", "out"), ("BG_CORE", "start")], NetClass::Signal)
        .net("ptat", &[("BG_CORE", "ptat"), ("RES_PTAT", "a")], NetClass::Signal)
        .net("buf2_in", &[("BUF2", "g"), ("RES_PTAT", "b")], NetClass::Signal)
        .net("iref_n", &[("BUF1", "d"), ("MIR_N0", "din")], NetClass::Bias)
        .net("iref_p", &[("BUF2", "d"), ("MIR_P0", "din")], NetClass::Bias);
    // Chain the mirrors: N0→N1→…→N4 and P0→P1→…→P4, with cross links.
    for i in 0..4usize {
        b = b.net(
            &format!("chain_n{i}"),
            &[
                (&format!("MIR_N{i}"), "dout"),
                (&format!("MIR_N{}", i + 1), "din"),
            ],
            NetClass::Bias,
        );
        b = b.net(
            &format!("chain_p{i}"),
            &[
                (&format!("MIR_P{i}"), "dout"),
                (&format!("MIR_P{}", i + 1), "din"),
            ],
            NetClass::Bias,
        );
    }
    b = b.net(
        "cross_np",
        &[("MIR_N4", "dout"), ("MIR_P4", "cas")],
        NetClass::Bias,
    );
    b.symmetry_v(&[("MIR_N0", "MIR_N1"), ("MIR_P0", "MIR_P1"), ("CAP_FILT1", "CAP_FILT2")])
        .alignment(crate::constraint::Axis::Horizontal, &["MIR_N2", "MIR_N3", "MIR_N4"])
        .build()
        .expect("Bias-2 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_match_table_one() {
        assert_eq!(bias3().num_blocks(), 3);
        assert_eq!(bias9().num_blocks(), 9);
        assert_eq!(bias19().num_blocks(), 19);
    }

    #[test]
    fn dispatch_clamps() {
        assert_eq!(bias(4).num_blocks(), 3);
        assert_eq!(bias(9).num_blocks(), 9);
        assert_eq!(bias(25).num_blocks(), 19);
    }

    #[test]
    fn all_bias_circuits_validate() {
        for c in [bias3(), bias9(), bias19()] {
            c.validate().unwrap();
        }
    }

    #[test]
    fn bias2_is_larger_than_bias1() {
        assert!(bias19().total_block_area() > bias9().total_block_area());
        assert!(bias19().num_nets() > bias9().num_nets());
    }

    #[test]
    fn bias_circuits_have_symmetry_constraints() {
        assert!(!bias9().constraints.is_empty());
        assert!(!bias19().constraints.is_empty());
    }
}

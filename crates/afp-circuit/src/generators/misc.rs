//! Additional circuit families used for R-GCN pre-training diversity
//! (comparators, level shifters, clock synchronizers, oscillators — the
//! families listed in the paper's §IV-C dataset description).

use crate::block::BlockKind;
use crate::net::NetClass;
use crate::netlist::Circuit;

/// A clocked comparator: input pair, regenerative latch, output buffers and a
/// clock switch (6 blocks).
pub fn comparator() -> Circuit {
    Circuit::builder("Comparator")
        .block("CMP_IN", BlockKind::ComparatorInput, 64.0, 4)
        .block("REGEN", BlockKind::RegenerativeStage, 48.0, 4)
        .block("SW_CLK", BlockKind::Switch, 22.0, 3)
        .block("BUF_P", BlockKind::Inverter, 20.0, 3)
        .block("BUF_N", BlockKind::Inverter, 20.0, 3)
        .block("TAIL", BlockKind::CurrentSource, 26.0, 2)
        .net("dp", &[("CMP_IN", "outp"), ("REGEN", "inp")], NetClass::Critical)
        .net("dn", &[("CMP_IN", "outn"), ("REGEN", "inn")], NetClass::Critical)
        .net("clk", &[("SW_CLK", "g"), ("REGEN", "clk")], NetClass::Clock)
        .net("qp", &[("REGEN", "qp"), ("BUF_P", "a")], NetClass::Signal)
        .net("qn", &[("REGEN", "qn"), ("BUF_N", "a")], NetClass::Signal)
        .net("tail", &[("CMP_IN", "s"), ("TAIL", "d"), ("SW_CLK", "d")], NetClass::Signal)
        .symmetry_v(&[("BUF_P", "BUF_N"), ("CMP_IN", "CMP_IN"), ("REGEN", "REGEN")])
        .build()
        .expect("comparator is valid")
}

/// A high-voltage level shifter: cross-coupled pull-ups, input inverters and
/// protection cascodes (6 blocks).
pub fn level_shifter() -> Circuit {
    Circuit::builder("LevelShifter")
        .block("XCOUPLE", BlockKind::CrossCoupledPair, 44.0, 4)
        .block("CASC_L", BlockKind::Cascode, 30.0, 3)
        .block("CASC_R", BlockKind::Cascode, 30.0, 3)
        .block("INV_IN", BlockKind::Inverter, 18.0, 3)
        .block("INV_INB", BlockKind::Inverter, 18.0, 3)
        .block("BUF_OUT", BlockKind::Inverter, 26.0, 3)
        .net("in", &[("INV_IN", "a"), ("INV_INB", "y")], NetClass::Signal)
        .net("dl", &[("INV_IN", "y"), ("CASC_L", "s")], NetClass::Signal)
        .net("dr", &[("INV_INB", "a"), ("CASC_R", "s")], NetClass::Signal)
        .net("xl", &[("CASC_L", "d"), ("XCOUPLE", "l")], NetClass::Critical)
        .net("xr", &[("CASC_R", "d"), ("XCOUPLE", "r"), ("BUF_OUT", "a")], NetClass::Critical)
        .symmetry_v(&[("CASC_L", "CASC_R"), ("INV_IN", "INV_INB"), ("XCOUPLE", "XCOUPLE")])
        .build()
        .expect("level shifter is valid")
}

/// A two-flop clock synchronizer with an output glitch filter (5 blocks).
pub fn clock_synchronizer() -> Circuit {
    Circuit::builder("ClockSync")
        .block("FF1", BlockKind::LatchCore, 40.0, 4)
        .block("FF2", BlockKind::LatchCore, 40.0, 4)
        .block("CLK_BUF", BlockKind::Inverter, 22.0, 3)
        .block("FILT", BlockKind::LogicGate, 28.0, 4)
        .block("OUT_BUF", BlockKind::Inverter, 24.0, 3)
        .net("clk", &[("CLK_BUF", "y"), ("FF1", "clk"), ("FF2", "clk")], NetClass::Clock)
        .net("d1", &[("FF1", "q"), ("FF2", "d"), ("FILT", "a")], NetClass::Signal)
        .net("d2", &[("FF2", "q"), ("FILT", "b")], NetClass::Signal)
        .net("filt_out", &[("FILT", "y"), ("OUT_BUF", "a")], NetClass::Signal)
        .alignment(crate::constraint::Axis::Horizontal, &["FF1", "FF2"])
        .build()
        .expect("clock synchronizer is valid")
}

/// A ring-style RC oscillator with bias and output divider (6 blocks).
pub fn oscillator() -> Circuit {
    Circuit::builder("Oscillator")
        .block("GM_CELL", BlockKind::CommonSource, 46.0, 3)
        .block("RES_T", BlockKind::ResistorBank, 110.0, 2)
        .block("CAP_T", BlockKind::CapacitorBank, 150.0, 2)
        .block("CMP", BlockKind::ComparatorInput, 52.0, 4)
        .block("DIV", BlockKind::LatchCore, 38.0, 4)
        .block("IBIAS", BlockKind::CurrentSource, 30.0, 2)
        .net("ramp", &[("GM_CELL", "d"), ("CAP_T", "a"), ("CMP", "inp")], NetClass::Critical)
        .net("thresh", &[("RES_T", "b"), ("CMP", "inn")], NetClass::Signal)
        .net("osc", &[("CMP", "out"), ("DIV", "clk"), ("GM_CELL", "g")], NetClass::Clock)
        .net("ib", &[("IBIAS", "out"), ("GM_CELL", "s"), ("RES_T", "a")], NetClass::Bias)
        .build()
        .expect("oscillator is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_misc_circuits_validate() {
        for c in [comparator(), level_shifter(), clock_synchronizer(), oscillator()] {
            c.validate().unwrap();
            assert!(c.num_blocks() >= 5);
            assert!(c.num_nets() >= 4);
        }
    }

    #[test]
    fn comparator_and_level_shifter_are_constrained() {
        assert!(!comparator().constraints.is_empty());
        assert!(!level_shifter().constraints.is_empty());
    }

    #[test]
    fn oscillator_is_unconstrained() {
        assert!(oscillator().constraints.is_empty());
    }
}

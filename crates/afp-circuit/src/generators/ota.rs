//! Operational transconductance amplifier (OTA) generators.
//!
//! These reproduce the *shape* of the industrial OTAs used by the paper
//! (OTA-1 with 5 structures, OTA-2 with 8 structures, plus the 3-structure
//! OTA used for training and for the Table II layout comparison): block
//! counts, functional-structure mix, connectivity and symmetry constraints
//! match the paper's description; absolute dimensions are realistic but
//! synthetic.

use crate::block::BlockKind;
use crate::constraint::Axis;
use crate::device::{Device, DeviceId, DeviceKind};
use crate::net::NetClass;
use crate::netlist::{Circuit, Schematic};

/// Builds an OTA circuit with the requested number of functional blocks.
///
/// Supported sizes are 3, 5 and 8 blocks (the sizes used in the paper's
/// training set and in Table I); other values are clamped to the nearest
/// supported size.
pub fn ota(num_blocks: usize) -> Circuit {
    match num_blocks {
        0..=3 => ota3(),
        4..=6 => ota5(),
        _ => ota8(),
    }
}

/// 3-structure OTA: differential pair, current-mirror load, tail source.
/// Used in the RL training set and in the Table II layout comparison.
pub fn ota3() -> Circuit {
    Circuit::builder("OTA-3")
        .block("DP", BlockKind::DifferentialPair, 58.0, 4)
        .block("CM_LOAD", BlockKind::CurrentMirror, 46.0, 3)
        .block("TAIL", BlockKind::CurrentSource, 30.0, 2)
        .net("inp", &[("DP", "g1"), ("TAIL", "cas")], NetClass::Signal)
        .net("outl", &[("DP", "d1"), ("CM_LOAD", "din")], NetClass::Signal)
        .net("out", &[("DP", "d2"), ("CM_LOAD", "dout")], NetClass::Critical)
        .net("tail", &[("DP", "s"), ("TAIL", "d")], NetClass::Signal)
        .symmetry_v(&[("DP", "DP"), ("CM_LOAD", "CM_LOAD")])
        .build()
        .expect("OTA-3 is valid")
}

/// 5-structure OTA ("OTA-1" in Table I): adds an output stage and a
/// compensation capacitor to the 3-structure core.
pub fn ota5() -> Circuit {
    Circuit::builder("OTA-1")
        .block("DP", BlockKind::DifferentialPair, 58.0, 4)
        .block("CM_LOAD", BlockKind::CurrentMirror, 46.0, 3)
        .block("TAIL", BlockKind::CurrentSource, 30.0, 2)
        .block("OUT_STAGE", BlockKind::OutputStage, 74.0, 3)
        .block("C_COMP", BlockKind::CompensationCap, 90.0, 2)
        .net("inp", &[("DP", "g1"), ("TAIL", "cas")], NetClass::Signal)
        .net("outl", &[("DP", "d1"), ("CM_LOAD", "din")], NetClass::Signal)
        .net(
            "vmid",
            &[("DP", "d2"), ("CM_LOAD", "dout"), ("OUT_STAGE", "g"), ("C_COMP", "a")],
            NetClass::Critical,
        )
        .net("tail", &[("DP", "s"), ("TAIL", "d")], NetClass::Signal)
        .net(
            "vout",
            &[("OUT_STAGE", "d"), ("C_COMP", "b")],
            NetClass::Critical,
        )
        .net(
            "ibias",
            &[("TAIL", "ref"), ("OUT_STAGE", "bias")],
            NetClass::Bias,
        )
        .symmetry_v(&[("DP", "DP"), ("CM_LOAD", "CM_LOAD")])
        .build()
        .expect("OTA-1 is valid")
}

/// 8-structure OTA ("OTA-2" in Table I): the two-stage cascoded OTA drawn in
/// the paper's Fig. 2, with cascode devices, two mirror loads, a differential
/// pair and separate bias devices.
pub fn ota8() -> Circuit {
    Circuit::builder("OTA-2")
        .block("DP", BlockKind::DifferentialPair, 62.0, 4)
        .block("CM_TOP", BlockKind::CurrentMirror, 52.0, 3)
        .block("CASC_L", BlockKind::Cascode, 34.0, 3)
        .block("CASC_R", BlockKind::Cascode, 34.0, 3)
        .block("CM_BOT", BlockKind::CurrentMirror, 48.0, 3)
        .block("TAIL", BlockKind::CurrentSource, 28.0, 2)
        .block("BIAS_N", BlockKind::BiasGenerator, 22.0, 2)
        .block("BIAS_P", BlockKind::BiasGenerator, 24.0, 2)
        .net("inp", &[("DP", "g1"), ("TAIL", "cas")], NetClass::Signal)
        .net("taild", &[("DP", "s"), ("TAIL", "d")], NetClass::Signal)
        .net("dl", &[("DP", "d1"), ("CASC_L", "s")], NetClass::Critical)
        .net("dr", &[("DP", "d2"), ("CASC_R", "s")], NetClass::Critical)
        .net("cl", &[("CASC_L", "d"), ("CM_TOP", "din")], NetClass::Signal)
        .net(
            "vout",
            &[("CASC_R", "d"), ("CM_TOP", "dout"), ("CM_BOT", "dout")],
            NetClass::Critical,
        )
        .net(
            "vb_casc",
            &[("CASC_L", "g"), ("CASC_R", "g"), ("BIAS_P", "out")],
            NetClass::Bias,
        )
        .net(
            "vb_tail",
            &[("TAIL", "g"), ("BIAS_N", "out"), ("CM_BOT", "g")],
            NetClass::Bias,
        )
        .net("bl", &[("CM_BOT", "din"), ("BIAS_N", "ref")], NetClass::Signal)
        .symmetry_v(&[("CASC_L", "CASC_R"), ("DP", "DP"), ("CM_TOP", "CM_TOP")])
        .alignment(Axis::Horizontal, &["CASC_L", "CASC_R"])
        .build()
        .expect("OTA-2 is valid")
}

/// Device-level schematic of the 8-structure OTA of the paper's Fig. 2
/// (instance names follow the figure: N13/N14 differential pair, N32/N33/N34
/// mirrors, P18/P19 loads, N15/N16 cascodes, N21/N8 bias). Used to exercise
/// the structure-recognition path end to end.
pub fn ota8_schematic() -> Schematic {
    let mut s = Schematic::new("OTA-2-schematic");
    let n13 = s.add_device(Device::new(DeviceId(0), "N13", DeviceKind::Nmos, 16.0, 0.6, 4));
    let n14 = s.add_device(Device::new(DeviceId(0), "N14", DeviceKind::Nmos, 16.0, 0.6, 4));
    let p18 = s.add_device(Device::new(DeviceId(0), "P18", DeviceKind::Pmos, 24.0, 0.6, 4));
    let p19 = s.add_device(Device::new(DeviceId(0), "P19", DeviceKind::Pmos, 24.0, 0.6, 4));
    let n15 = s.add_device(Device::new(DeviceId(0), "N15", DeviceKind::Nmos, 12.0, 0.4, 2));
    let n16 = s.add_device(Device::new(DeviceId(0), "N16", DeviceKind::Nmos, 12.0, 0.4, 2));
    let n32 = s.add_device(Device::new(DeviceId(0), "N32", DeviceKind::Nmos, 20.0, 1.0, 4));
    let n33 = s.add_device(Device::new(DeviceId(0), "N33", DeviceKind::Nmos, 20.0, 1.0, 4));
    let n34 = s.add_device(Device::new(DeviceId(0), "N34", DeviceKind::Nmos, 20.0, 1.0, 4));
    let n21 = s.add_device(Device::new(DeviceId(0), "N21", DeviceKind::Nmos, 6.0, 2.0, 1));
    let n8 = s.add_device(Device::new(DeviceId(0), "N8", DeviceKind::Nmos, 6.0, 2.0, 1));

    s.connect("inp", vec![(n13, "g")]);
    s.connect("inn", vec![(n14, "g")]);
    s.connect("tail", vec![(n13, "s"), (n14, "s"), (n32, "d")]);
    s.connect("dl", vec![(n13, "d"), (n15, "s")]);
    s.connect("dr", vec![(n14, "d"), (n16, "s")]);
    s.connect("outl", vec![(n15, "d"), (p18, "d"), (p18, "g"), (p19, "g")]);
    s.connect("out", vec![(n16, "d"), (p19, "d")]);
    s.connect("vb_casc", vec![(n15, "g"), (n16, "g"), (n21, "d"), (n21, "g")]);
    s.connect("vb_mirror", vec![(n32, "g"), (n33, "g"), (n34, "g"), (n34, "d"), (n8, "d")]);
    s.connect("iref", vec![(n8, "g"), (n8, "s")]);
    s.connect("mirror_out", vec![(n33, "d"), (n21, "s")]);
    s.connect("vdd", vec![(p18, "s"), (p19, "s")]);
    s.connect("vss", vec![(n32, "s"), (n33, "s"), (n34, "s")]);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_match_table_one() {
        assert_eq!(ota3().num_blocks(), 3);
        assert_eq!(ota5().num_blocks(), 5);
        assert_eq!(ota8().num_blocks(), 8);
    }

    #[test]
    fn dispatch_clamps_sizes() {
        assert_eq!(ota(1).num_blocks(), 3);
        assert_eq!(ota(5).num_blocks(), 5);
        assert_eq!(ota(20).num_blocks(), 8);
    }

    #[test]
    fn all_otas_validate() {
        for c in [ota3(), ota5(), ota8()] {
            c.validate().unwrap();
            assert!(c.constraints.len() >= 1, "{} has constraints", c.name);
            assert!(c.total_block_area() > 0.0);
        }
    }

    #[test]
    fn ota8_has_cascode_symmetry() {
        let c = ota8();
        let casc_l = c.block_by_name("CASC_L").unwrap().id;
        assert!(c.constraints.symmetry_partner(casc_l).is_some());
    }

    #[test]
    fn schematic_recognition_recovers_structures() {
        let circuit = crate::recognition::recognize(&ota8_schematic());
        circuit.validate().unwrap();
        let kinds: Vec<_> = circuit.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BlockKind::DifferentialPair));
        assert!(kinds.contains(&BlockKind::CurrentMirror));
        // 11 devices must collapse into fewer blocks.
        assert!(circuit.num_blocks() < 11);
    }
}

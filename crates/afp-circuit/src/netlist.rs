//! Circuit containers: the device-level [`Schematic`] and the block-level
//! [`Circuit`] consumed by the floorplanner.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::block::{Block, BlockId, BlockKind};
use crate::constraint::{Constraint, ConstraintSet};
use crate::device::{Device, DeviceId};
use crate::error::CircuitError;
use crate::net::{Net, NetClass, NetId, Pin};

/// A device-level schematic: the input of structure recognition.
///
/// Nets at this level connect device terminals (gate/drain/source/bulk for MOS
/// devices). The [`crate::recognition`] module groups these devices into the
/// functional blocks of a [`Circuit`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schematic {
    /// Schematic name.
    pub name: String,
    /// Devices in declaration order; `DeviceId(i)` indexes this list.
    pub devices: Vec<Device>,
    /// Device-level nets: net name → list of `(device, terminal)` pairs.
    pub connections: Vec<(String, Vec<(DeviceId, String)>)>,
    /// Input cards the parser ignored, as `(line, reason)` pairs.
    ///
    /// Populated by [`crate::spice::parse_spice`] for dot-directives and
    /// unrecognized card types so that ingestion layers can report what was
    /// dropped instead of silently solving a truncated netlist. Empty for
    /// programmatically built schematics.
    pub skipped: Vec<(usize, String)>,
}

impl Schematic {
    /// Creates an empty schematic.
    pub fn new(name: impl Into<String>) -> Self {
        Schematic {
            name: name.into(),
            devices: Vec::new(),
            connections: Vec::new(),
            skipped: Vec::new(),
        }
    }

    /// Adds a device and returns its id.
    pub fn add_device(&mut self, mut device: Device) -> DeviceId {
        let id = DeviceId(self.devices.len());
        device.id = id;
        self.devices.push(device);
        id
    }

    /// Adds a device-level net.
    pub fn connect(&mut self, net: impl Into<String>, pins: Vec<(DeviceId, &str)>) {
        self.connections.push((
            net.into(),
            pins.into_iter().map(|(d, t)| (d, t.to_string())).collect(),
        ));
    }

    /// Devices sharing a net with `device` (excluding itself).
    pub fn neighbors(&self, device: DeviceId) -> Vec<DeviceId> {
        let mut out = Vec::new();
        for (_, pins) in &self.connections {
            if pins.iter().any(|(d, _)| *d == device) {
                for (d, _) in pins {
                    if *d != device && !out.contains(d) {
                        out.push(*d);
                    }
                }
            }
        }
        out
    }

    /// Nets attached to a specific terminal of a device.
    pub fn nets_on_terminal(&self, device: DeviceId, terminal: &str) -> Vec<&str> {
        self.connections
            .iter()
            .filter(|(_, pins)| pins.iter().any(|(d, t)| *d == device && t == terminal))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// A block-level circuit: the floorplanner's unit of work.
///
/// `Circuit` owns the functional blocks, the block-level nets and the
/// positional constraints. It corresponds to the graph shown in the paper's
/// Fig. 2 before conversion to the R-GCN input.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// Circuit name, e.g. `"OTA-2"`.
    pub name: String,
    /// Functional blocks; `BlockId(i)` indexes this list.
    pub blocks: Vec<Block>,
    /// Block-level nets.
    pub nets: Vec<Net>,
    /// Positional constraints.
    pub constraints: ConstraintSet,
    /// Optional target aspect ratio `R*` for the fixed-outline term of the
    /// episode reward (paper Eq. 5).
    pub target_aspect_ratio: Option<f64>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            blocks: Vec::new(),
            nets: Vec::new(),
            constraints: ConstraintSet::new(),
            target_aspect_ratio: None,
        }
    }

    /// Starts a [`CircuitBuilder`].
    pub fn builder(name: impl Into<String>) -> CircuitBuilder {
        CircuitBuilder::new(name)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Total block area in µm².
    pub fn total_block_area(&self) -> f64 {
        self.blocks.iter().map(|b| b.area_um2).sum()
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(id.index())
    }

    /// Looks up a block by name.
    pub fn block_by_name(&self, name: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Block ids ordered by decreasing area — the placement order heuristic
    /// used by the RL agent (paper §IV-D1, after \[22\]).
    pub fn blocks_by_decreasing_area(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.blocks.iter().map(|b| b.id).collect();
        ids.sort_by(|a, b| {
            let aa = self.blocks[a.index()].area_um2;
            let ab = self.blocks[b.index()].area_um2;
            ab.partial_cmp(&aa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index().cmp(&b.index()))
        });
        ids
    }

    /// Nets touching the given block.
    pub fn nets_of_block(&self, id: BlockId) -> Vec<&Net> {
        self.nets
            .iter()
            .filter(|n| n.blocks().contains(&id))
            .collect()
    }

    /// Pairs of blocks connected by at least one net, with multiplicity
    /// (the connectivity edges of the circuit graph).
    pub fn connectivity_pairs(&self) -> Vec<(BlockId, BlockId)> {
        let mut pairs = Vec::new();
        for net in &self.nets {
            if net.class.is_supply() {
                // Supply nets connect nearly everything; they would turn the
                // graph into a clique and carry no placement signal.
                continue;
            }
            let blocks = net.blocks();
            for i in 0..blocks.len() {
                for j in (i + 1)..blocks.len() {
                    pairs.push((blocks[i], blocks[j]));
                }
            }
        }
        pairs
    }

    /// Validates the internal consistency of the circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] describing the first problem found: empty
    /// circuit, dangling block references in nets or constraints, degenerate
    /// nets, or non-positive block areas.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.blocks.is_empty() {
            return Err(CircuitError::EmptyCircuit);
        }
        for (i, block) in self.blocks.iter().enumerate() {
            if block.area_um2 <= 0.0 {
                return Err(CircuitError::NonPositiveArea { block: i });
            }
        }
        for net in &self.nets {
            if net.pins.len() < 2 {
                return Err(CircuitError::DegenerateNet {
                    name: net.name.clone(),
                });
            }
            for pin in &net.pins {
                if pin.block.index() >= self.blocks.len() {
                    return Err(CircuitError::UnknownBlock {
                        block: pin.block.index(),
                    });
                }
            }
        }
        for c in self.constraints.iter() {
            let members = c.members();
            if members.is_empty() {
                return Err(CircuitError::InvalidConstraint {
                    reason: "constraint has no members".into(),
                });
            }
            for m in &members {
                if m.index() >= self.blocks.len() {
                    return Err(CircuitError::UnknownBlock { block: m.index() });
                }
            }
            let mut sorted: Vec<usize> = members.iter().map(|m| m.index()).collect();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != members.len() {
                return Err(CircuitError::InvalidConstraint {
                    reason: "constraint references a block more than once".into(),
                });
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Circuit`].
///
/// # Examples
///
/// ```
/// use afp_circuit::{BlockKind, Circuit, NetClass};
///
/// let circuit = Circuit::builder("example")
///     .block("DP", BlockKind::DifferentialPair, 48.0, 4)
///     .block("CM", BlockKind::CurrentMirror, 32.0, 3)
///     .net("vout", &[("DP", "outp"), ("CM", "d")], NetClass::Signal)
///     .symmetry_v(&[("DP", "DP")])
///     .build()
///     .expect("valid circuit");
/// assert_eq!(circuit.num_blocks(), 2);
/// ```
#[derive(Debug)]
pub struct CircuitBuilder {
    circuit: Circuit,
    names: HashMap<String, BlockId>,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            circuit: Circuit::new(name),
            names: HashMap::new(),
        }
    }

    /// Adds a functional block.
    pub fn block(mut self, name: &str, kind: BlockKind, area_um2: f64, pins: u32) -> Self {
        let id = BlockId(self.circuit.blocks.len());
        self.circuit
            .blocks
            .push(Block::new(id, name, kind, area_um2, pins));
        self.names.insert(name.to_string(), id);
        self
    }

    /// Adds a pre-built block (for callers that need full control over the
    /// block's geometry summary).
    pub fn block_full(mut self, block: Block) -> Self {
        let id = BlockId(self.circuit.blocks.len());
        let mut block = block;
        block.id = id;
        self.names.insert(block.name.clone(), id);
        self.circuit.blocks.push(block);
        self
    }

    /// Adds a net given `(block name, terminal)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a block name is unknown; the builder is meant for
    /// programmatic construction where this is a bug, not an input error.
    pub fn net(mut self, name: &str, pins: &[(&str, &str)], class: NetClass) -> Self {
        let id = NetId(self.circuit.nets.len());
        let pins = pins
            .iter()
            .map(|(block, term)| {
                let bid = *self
                    .names
                    .get(*block)
                    .unwrap_or_else(|| panic!("unknown block `{block}` in net `{name}`"));
                Pin::new(bid, *term)
            })
            .collect();
        self.circuit
            .nets
            .push(Net::new(id, name, pins).with_class(class));
        self
    }

    /// Adds a vertical-axis symmetry constraint from `(left, right)` block
    /// name pairs; a pair of identical names marks a self-symmetric block.
    ///
    /// # Panics
    ///
    /// Panics if a block name is unknown.
    pub fn symmetry_v(self, pairs: &[(&str, &str)]) -> Self {
        self.symmetry(crate::constraint::Axis::Vertical, pairs)
    }

    /// Adds a horizontal-axis symmetry constraint (see [`Self::symmetry_v`]).
    pub fn symmetry_h(self, pairs: &[(&str, &str)]) -> Self {
        self.symmetry(crate::constraint::Axis::Horizontal, pairs)
    }

    fn symmetry(mut self, axis: crate::constraint::Axis, pairs: &[(&str, &str)]) -> Self {
        let mut group = crate::constraint::SymmetryGroup::new(axis);
        for (a, b) in pairs {
            let ia = *self
                .names
                .get(*a)
                .unwrap_or_else(|| panic!("unknown block `{a}` in symmetry constraint"));
            let ib = *self
                .names
                .get(*b)
                .unwrap_or_else(|| panic!("unknown block `{b}` in symmetry constraint"));
            if ia == ib {
                group = group.with_self_symmetric(ia);
            } else {
                group = group.with_pair(ia, ib);
            }
        }
        self.circuit.constraints.push(Constraint::Symmetry(group));
        self
    }

    /// Adds an alignment constraint over the named blocks.
    ///
    /// # Panics
    ///
    /// Panics if a block name is unknown.
    pub fn alignment(mut self, axis: crate::constraint::Axis, blocks: &[&str]) -> Self {
        let ids = blocks
            .iter()
            .map(|b| {
                *self
                    .names
                    .get(*b)
                    .unwrap_or_else(|| panic!("unknown block `{b}` in alignment constraint"))
            })
            .collect();
        self.circuit
            .constraints
            .push(Constraint::Alignment(crate::constraint::AlignmentGroup::new(
                axis, ids,
            )));
        self
    }

    /// Sets the target aspect ratio used by the fixed-outline reward term.
    pub fn target_aspect_ratio(mut self, ratio: f64) -> Self {
        self.circuit.target_aspect_ratio = Some(ratio);
        self
    }

    /// Finalizes and validates the circuit.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] if [`Circuit::validate`] fails.
    pub fn build(self) -> Result<Circuit, CircuitError> {
        self.circuit.validate()?;
        Ok(self.circuit)
    }

    /// Finalizes the circuit without validation (useful for building known
    /// invalid circuits in tests).
    pub fn build_unchecked(self) -> Circuit {
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Axis;

    fn two_block_circuit() -> Circuit {
        Circuit::builder("t")
            .block("A", BlockKind::CurrentMirror, 10.0, 3)
            .block("B", BlockKind::DifferentialPair, 20.0, 4)
            .net("n1", &[("A", "d"), ("B", "s")], NetClass::Signal)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let c = two_block_circuit();
        assert_eq!(c.blocks[0].id, BlockId(0));
        assert_eq!(c.blocks[1].id, BlockId(1));
        assert_eq!(c.nets[0].id, NetId(0));
    }

    #[test]
    fn blocks_by_decreasing_area_sorts() {
        let c = two_block_circuit();
        assert_eq!(c.blocks_by_decreasing_area(), vec![BlockId(1), BlockId(0)]);
        assert_eq!(c.total_block_area(), 30.0);
    }

    #[test]
    fn validate_rejects_empty_circuit() {
        let c = Circuit::new("empty");
        assert_eq!(c.validate(), Err(CircuitError::EmptyCircuit));
    }

    #[test]
    fn validate_rejects_degenerate_net() {
        let c = Circuit::builder("bad")
            .block("A", BlockKind::CurrentMirror, 10.0, 3)
            .net("n", &[("A", "d")], NetClass::Signal)
            .build_unchecked();
        assert!(matches!(
            c.validate(),
            Err(CircuitError::DegenerateNet { .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_constraint_member() {
        let mut c = two_block_circuit();
        c.constraints.push(Constraint::Alignment(
            crate::constraint::AlignmentGroup::new(Axis::Horizontal, vec![BlockId(0), BlockId(0)]),
        ));
        assert!(matches!(
            c.validate(),
            Err(CircuitError::InvalidConstraint { .. })
        ));
    }

    #[test]
    fn symmetry_with_same_name_is_self_symmetric() {
        let c = Circuit::builder("s")
            .block("DP", BlockKind::DifferentialPair, 10.0, 4)
            .block("CM", BlockKind::CurrentMirror, 8.0, 3)
            .net("n", &[("DP", "o"), ("CM", "d")], NetClass::Signal)
            .symmetry_v(&[("CM", "CM")])
            .build()
            .unwrap();
        let c0 = c.constraints.iter().next().unwrap();
        match c0 {
            Constraint::Symmetry(g) => {
                assert!(g.pairs.is_empty());
                assert_eq!(g.self_symmetric, vec![BlockId(1)]);
            }
            _ => panic!("expected symmetry"),
        }
    }

    #[test]
    fn connectivity_pairs_skips_supplies() {
        let c = Circuit::builder("t")
            .block("A", BlockKind::CurrentMirror, 10.0, 3)
            .block("B", BlockKind::DifferentialPair, 20.0, 4)
            .net("sig", &[("A", "d"), ("B", "s")], NetClass::Signal)
            .net("vdd", &[("A", "vdd"), ("B", "vdd")], NetClass::Power)
            .build()
            .unwrap();
        assert_eq!(c.connectivity_pairs().len(), 1);
    }

    #[test]
    fn schematic_neighbors() {
        let mut s = Schematic::new("sch");
        let d0 = s.add_device(Device::new(
            DeviceId(0),
            "N1",
            crate::device::DeviceKind::Nmos,
            4.0,
            0.5,
            1,
        ));
        let d1 = s.add_device(Device::new(
            DeviceId(0),
            "N2",
            crate::device::DeviceKind::Nmos,
            4.0,
            0.5,
            1,
        ));
        let d2 = s.add_device(Device::new(
            DeviceId(0),
            "P1",
            crate::device::DeviceKind::Pmos,
            8.0,
            0.5,
            1,
        ));
        s.connect("net1", vec![(d0, "d"), (d1, "g")]);
        s.connect("net2", vec![(d1, "d"), (d2, "d")]);
        assert_eq!(s.neighbors(d0), vec![d1]);
        assert_eq!(s.neighbors(d1), vec![d0, d2]);
        assert_eq!(s.nets_on_terminal(d1, "g"), vec!["net1"]);
    }

    #[test]
    fn lookup_by_name() {
        let c = two_block_circuit();
        assert!(c.block_by_name("A").is_some());
        assert!(c.block_by_name("Z").is_none());
        assert_eq!(c.nets_of_block(BlockId(0)).len(), 1);
    }
}

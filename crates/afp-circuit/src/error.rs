//! Error types for circuit construction and validation.

use std::fmt;

/// Errors raised while building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A referenced block id does not exist in the circuit.
    UnknownBlock {
        /// The offending block index.
        block: usize,
    },
    /// A referenced device id does not exist in the circuit.
    UnknownDevice {
        /// The offending device index.
        device: usize,
    },
    /// A net references fewer than two pins and therefore cannot be routed.
    DegenerateNet {
        /// Name of the offending net.
        name: String,
    },
    /// A constraint references a block more than once or is otherwise empty.
    InvalidConstraint {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A block has a non-positive area and cannot be placed.
    NonPositiveArea {
        /// The offending block index.
        block: usize,
    },
    /// A circuit with no blocks cannot be floorplanned.
    EmptyCircuit,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownBlock { block } => write!(f, "unknown block id {block}"),
            CircuitError::UnknownDevice { device } => write!(f, "unknown device id {device}"),
            CircuitError::DegenerateNet { name } => {
                write!(f, "net `{name}` has fewer than two pins")
            }
            CircuitError::InvalidConstraint { reason } => {
                write!(f, "invalid constraint: {reason}")
            }
            CircuitError::NonPositiveArea { block } => {
                write!(f, "block {block} has non-positive area")
            }
            CircuitError::EmptyCircuit => write!(f, "circuit has no blocks"),
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_ids() {
        assert!(CircuitError::UnknownBlock { block: 7 }.to_string().contains('7'));
        assert!(CircuitError::DegenerateNet {
            name: "vout".into()
        }
        .to_string()
        .contains("vout"));
        assert!(CircuitError::EmptyCircuit.to_string().contains("no blocks"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CircuitError::EmptyCircuit, CircuitError::EmptyCircuit);
        assert_ne!(
            CircuitError::UnknownBlock { block: 1 },
            CircuitError::UnknownBlock { block: 2 }
        );
    }
}

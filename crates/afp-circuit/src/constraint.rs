//! Positional constraints: symmetry and alignment groups.
//!
//! The paper's floorplanner enforces two families of analog layout
//! constraints (paper §IV-A, §IV-D1): *symmetry* of matched blocks about a
//! horizontal or vertical axis, and *alignment* of blocks along a shared row
//! or column. Constraint satisfaction is encoded in the positional action
//! masks, and any residual violation in a finished floorplan triggers the
//! −50 penalty of §IV-D4.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;

/// Orientation of a symmetry axis or alignment direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// A horizontal axis (symmetry about a horizontal line; alignment along a
    /// row — equal y coordinates).
    Horizontal,
    /// A vertical axis (symmetry about a vertical line; alignment along a
    /// column — equal x coordinates).
    Vertical,
}

impl Axis {
    /// The other axis.
    pub fn orthogonal(self) -> Axis {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }
}

/// A symmetry constraint: pairs of blocks mirrored about a common axis, plus
/// optional self-symmetric blocks centred on that axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetryGroup {
    /// Orientation of the symmetry axis.
    pub axis: Axis,
    /// Mirrored block pairs.
    pub pairs: Vec<(BlockId, BlockId)>,
    /// Blocks placed on the axis itself (e.g. a shared tail current source).
    pub self_symmetric: Vec<BlockId>,
}

impl SymmetryGroup {
    /// Creates a symmetry group about the given axis.
    pub fn new(axis: Axis) -> Self {
        SymmetryGroup {
            axis,
            pairs: Vec::new(),
            self_symmetric: Vec::new(),
        }
    }

    /// Adds a mirrored pair (builder-style).
    pub fn with_pair(mut self, a: BlockId, b: BlockId) -> Self {
        self.pairs.push((a, b));
        self
    }

    /// Adds a self-symmetric block (builder-style).
    pub fn with_self_symmetric(mut self, b: BlockId) -> Self {
        self.self_symmetric.push(b);
        self
    }

    /// All blocks referenced by this group.
    pub fn members(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &(a, b) in &self.pairs {
            out.push(a);
            out.push(b);
        }
        out.extend(self.self_symmetric.iter().copied());
        out
    }

    /// Returns `true` if the group references no blocks.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty() && self.self_symmetric.is_empty()
    }
}

/// An alignment constraint: all member blocks share a row (horizontal) or a
/// column (vertical).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlignmentGroup {
    /// Alignment direction.
    pub axis: Axis,
    /// Aligned blocks.
    pub blocks: Vec<BlockId>,
}

impl AlignmentGroup {
    /// Creates an alignment group.
    pub fn new(axis: Axis, blocks: Vec<BlockId>) -> Self {
        AlignmentGroup { axis, blocks }
    }
}

/// A single positional constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// Mirror-symmetric placement of matched blocks.
    Symmetry(SymmetryGroup),
    /// Row / column alignment of blocks.
    Alignment(AlignmentGroup),
}

impl Constraint {
    /// All blocks referenced by the constraint.
    pub fn members(&self) -> Vec<BlockId> {
        match self {
            Constraint::Symmetry(s) => s.members(),
            Constraint::Alignment(a) => a.blocks.clone(),
        }
    }

    /// Axis of the constraint.
    pub fn axis(&self) -> Axis {
        match self {
            Constraint::Symmetry(s) => s.axis,
            Constraint::Alignment(a) => a.axis,
        }
    }

    /// Returns `true` for symmetry constraints.
    pub fn is_symmetry(&self) -> bool {
        matches!(self, Constraint::Symmetry(_))
    }
}

/// The full set of constraints attached to a circuit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        ConstraintSet {
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// The constraint at `index` (the position [`ConstraintSet::iter`]
    /// yields it at), if any — the stable index the incremental metrics
    /// layer caches per-constraint state under.
    pub fn get(&self, index: usize) -> Option<&Constraint> {
        self.constraints.get(index)
    }

    /// Constraints that involve the given block.
    pub fn involving(&self, block: BlockId) -> Vec<&Constraint> {
        self.constraints
            .iter()
            .filter(|c| c.members().contains(&block))
            .collect()
    }

    /// The symmetry partner of `block` in any symmetry constraint, if one
    /// exists.
    pub fn symmetry_partner(&self, block: BlockId) -> Option<(BlockId, Axis)> {
        for c in &self.constraints {
            if let Constraint::Symmetry(group) = c {
                for &(a, b) in &group.pairs {
                    if a == block {
                        return Some((b, group.axis));
                    }
                    if b == block {
                        return Some((a, group.axis));
                    }
                }
            }
        }
        None
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

impl Extend<Constraint> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Constraint>>(&mut self, iter: T) {
        self.constraints.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(a: usize, b: usize) -> Constraint {
        Constraint::Symmetry(SymmetryGroup::new(Axis::Vertical).with_pair(BlockId(a), BlockId(b)))
    }

    #[test]
    fn axis_orthogonal() {
        assert_eq!(Axis::Horizontal.orthogonal(), Axis::Vertical);
        assert_eq!(Axis::Vertical.orthogonal(), Axis::Horizontal);
    }

    #[test]
    fn members_of_symmetry_group() {
        let g = SymmetryGroup::new(Axis::Vertical)
            .with_pair(BlockId(0), BlockId(1))
            .with_self_symmetric(BlockId(2));
        assert_eq!(g.members(), vec![BlockId(0), BlockId(1), BlockId(2)]);
        assert!(!g.is_empty());
    }

    #[test]
    fn constraint_set_queries() {
        let set: ConstraintSet = vec![
            sym(0, 1),
            Constraint::Alignment(AlignmentGroup::new(
                Axis::Horizontal,
                vec![BlockId(2), BlockId(3)],
            )),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
        assert_eq!(set.involving(BlockId(0)).len(), 1);
        assert_eq!(set.involving(BlockId(2)).len(), 1);
        assert!(set.involving(BlockId(9)).is_empty());
    }

    #[test]
    fn symmetry_partner_lookup_is_bidirectional() {
        let set: ConstraintSet = vec![sym(0, 1)].into_iter().collect();
        assert_eq!(
            set.symmetry_partner(BlockId(0)),
            Some((BlockId(1), Axis::Vertical))
        );
        assert_eq!(
            set.symmetry_partner(BlockId(1)),
            Some((BlockId(0), Axis::Vertical))
        );
        assert_eq!(set.symmetry_partner(BlockId(2)), None);
    }

    #[test]
    fn extend_appends() {
        let mut set = ConstraintSet::new();
        set.extend(vec![sym(0, 1)]);
        assert_eq!(set.len(), 1);
        assert!(set.iter().next().unwrap().is_symmetry());
    }
}

//! # afp-layout — floorplan geometry, metrics and observation masks
//!
//! Everything geometric that the floorplanning methods share:
//!
//! * the 32×32 placement `grid` and continuous [`Canvas`] (paper §IV-D1),
//! * the [`bitgrid`] occupancy bitboard (one `u32` row mask per grid row)
//!   behind every footprint query, snap search and positional mask,
//! * the incremental [`Floorplan`] state with overlap-free placement,
//! * [`metrics`]: HPWL (Eq. 3), dead space, the intermediate reward (Eq. 4)
//!   and the episode reward (Eq. 5),
//! * [`constraints`]: grid-level symmetry / alignment masks and the
//!   end-of-episode violation check,
//! * [`masks`]: the six observation maps of the RL agent state
//!   (`f_g`, `f_w`, `f_ds`, `f_p`),
//! * [`sequence_pair`]: the topological model used by the metaheuristic
//!   baselines,
//! * [`spacing`]: congestion-aware device spacing applied to the baselines so
//!   that the comparison against routing-ready floorplans is fair (§V-B),
//! * [`export`]: ASCII / SVG rendering for the figure reproductions.
//!
//! # The incremental cost pipeline
//!
//! The optimizer hot path (pack → realize → metrics, millions of evaluations
//! per Table I sweep) is incremental at every layer, each bit-identical to
//! its from-scratch counterpart and differential-tested against it:
//!
//! * [`lcs_pack::PackCache`] / [`lcs_pack::pack_coords_cached`] — FAST-SP
//!   sweeps replay their unchanged prefix/suffix positions,
//! * [`RealizeCache`] / [`sequence_pair::realize_floorplan_incremental`] —
//!   unchanged snap decisions are kept or replayed instead of re-searched,
//!   and the engine exports the dirty-block set it re-searched,
//! * [`metrics::MetricsScratch`] / [`metrics::episode_reward_incremental`] —
//!   per-net HPWL terms and per-constraint violation flags are recomputed
//!   only for the dirty set, with recomputation deferred past penalized
//!   episodes.
//!
//! See `ARCHITECTURE.md` at the repository root for the full stack picture
//! and the bit-identity contract.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::{generators, Shape, BlockId};
//! use afp_layout::{Canvas, Cell, Floorplan, metrics};
//!
//! let circuit = generators::ota3();
//! let mut floorplan = Floorplan::new(Canvas::for_circuit(&circuit));
//! floorplan.place(BlockId(0), 0, Shape::new(8.0, 7.0), Cell::new(0, 0))?;
//! floorplan.place(BlockId(1), 0, Shape::new(7.0, 7.0), Cell::new(10, 0))?;
//! let m = metrics::metrics(&circuit, &floorplan);
//! assert!(m.dead_space < 1.0);
//! # Ok::<(), afp_layout::PlaceError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod grid;
mod placement;
mod rect;

pub mod bitgrid;
pub mod constraints;
pub mod export;
pub mod lcs_pack;
pub mod masks;
pub mod metrics;
pub mod sequence_pair;
pub mod spacing;

pub use bitgrid::BitGrid;
pub use grid::{Canvas, Cell, DEFAULT_MAX_ASPECT_RATIO, GRID_SIZE};
pub use lcs_pack::{PackCache, PackScratch};
pub use masks::{Mask, StateMasks, STATE_CHANNELS};
pub use metrics::{FloorplanMetrics, RewardWeights};
pub use placement::{Floorplan, PlaceError, PlacedBlock};
pub use rect::Rect;
pub use sequence_pair::{PackedFloorplan, RealizeCache, SequencePair};
pub use spacing::SpacingConfig;

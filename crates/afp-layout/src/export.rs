//! Floorplan rendering: ASCII grid art and SVG export.
//!
//! Used by the Fig. 5 / Fig. 7 reproduction binaries to visualize masks,
//! placements and routed layouts without any plotting dependency.

use afp_circuit::Circuit;

use crate::grid::GRID_SIZE;
use crate::masks::Mask;
use crate::placement::Floorplan;
use crate::rect::Rect;

/// Renders a floorplan as ASCII art: each placed block is drawn with a letter
/// (`A`, `B`, …) on the 32×32 grid, empty cells as `.`.
pub fn ascii_floorplan(floorplan: &Floorplan) -> String {
    let side = floorplan.grid_side();
    let mut grid = vec![b'.'; side * side];
    for (i, placed) in floorplan.placed().iter().enumerate() {
        let letter = b'A' + (i % 26) as u8;
        for dy in 0..placed.grid_h {
            for dx in 0..placed.grid_w {
                let x = placed.cell.x + dx;
                let y = placed.cell.y + dy;
                if x < side && y < side {
                    grid[y * side + x] = letter;
                }
            }
        }
    }
    let mut out = String::with_capacity((side + 1) * side);
    // Render with the origin at the bottom-left, like the paper's figures.
    for y in (0..side).rev() {
        for x in 0..side {
            out.push(grid[y * side + x] as char);
        }
        out.push('\n');
    }
    out
}

/// Renders a scalar mask as ASCII art with a 10-level grey ramp
/// (`" .:-=+*#%@"`), darkest for the highest values.
pub fn ascii_mask(mask: &Mask) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((GRID_SIZE + 1) * GRID_SIZE);
    for y in (0..GRID_SIZE).rev() {
        for x in 0..GRID_SIZE {
            let v = mask[y * GRID_SIZE + x].clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// A polyline (sequence of points in µm) drawn on top of the floorplan, e.g. a
/// routed net segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Overlay {
    /// Polyline vertices in µm.
    pub points: Vec<(f64, f64)>,
    /// SVG stroke colour, e.g. `"#d62728"`.
    pub color: String,
}

/// Renders a floorplan (and optional routing overlays) to a standalone SVG
/// document string.
pub fn svg_floorplan(circuit: &Circuit, floorplan: &Floorplan, overlays: &[Overlay]) -> String {
    let bb = floorplan
        .bounding_box()
        .unwrap_or(Rect::from_origin_size(0.0, 0.0, 1.0, 1.0));
    let margin = 0.05 * bb.width().max(bb.height()).max(1.0);
    let view = bb.inflated(margin);
    let scale = 800.0 / view.width().max(1e-9);
    let height_px = view.height() * scale;
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"800\" height=\"{:.1}\" viewBox=\"0 0 800 {:.1}\">\n",
        height_px, height_px
    ));
    svg.push_str("  <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n");
    const PALETTE: [&str; 8] = [
        "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#eeca3b", "#b279a2", "#9d755d",
    ];
    let to_px = |x: f64, y: f64| -> (f64, f64) {
        (
            (x - view.x0) * scale,
            height_px - (y - view.y0) * scale,
        )
    };
    for (i, placed) in floorplan.placed().iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let (x, y_top) = to_px(placed.rect.x0, placed.rect.y1);
        let w = placed.rect.width() * scale;
        let h = placed.rect.height() * scale;
        let name = circuit
            .block(placed.block)
            .map(|b| b.name.clone())
            .unwrap_or_else(|| format!("B{}", placed.block.index()));
        svg.push_str(&format!(
            "  <rect x=\"{x:.1}\" y=\"{y_top:.1}\" width=\"{w:.1}\" height=\"{h:.1}\" fill=\"{color}\" fill-opacity=\"0.6\" stroke=\"#333\"/>\n"
        ));
        let (cx, cy) = to_px(placed.rect.center().0, placed.rect.center().1);
        svg.push_str(&format!(
            "  <text x=\"{cx:.1}\" y=\"{cy:.1}\" font-size=\"12\" text-anchor=\"middle\" fill=\"#111\">{name}</text>\n"
        ));
    }
    for overlay in overlays {
        if overlay.points.len() < 2 {
            continue;
        }
        let pts: Vec<String> = overlay
            .points
            .iter()
            .map(|&(x, y)| {
                let (px, py) = to_px(x, y);
                format!("{px:.1},{py:.1}")
            })
            .collect();
        svg.push_str(&format!(
            "  <polyline points=\"{}\" fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\"/>\n",
            pts.join(" "),
            overlay.color
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Canvas, Cell};
    use afp_circuit::{generators, BlockId, Shape};

    fn sample() -> (Circuit, Floorplan) {
        let circuit = generators::ota3();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(6.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(6, 0)).unwrap();
        (circuit, fp)
    }

    #[test]
    fn ascii_floorplan_has_expected_dimensions() {
        let (_, fp) = sample();
        let art = ascii_floorplan(&fp);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), GRID_SIZE);
        assert!(lines.iter().all(|l| l.len() == GRID_SIZE));
        // Two letters appear.
        assert!(art.contains('A'));
        assert!(art.contains('B'));
        // Bottom row (last line) contains the placed blocks.
        assert!(lines[GRID_SIZE - 1].starts_with("AAAAAABBBB"));
    }

    #[test]
    fn ascii_mask_uses_ramp_extremes() {
        let mut mask = vec![0.0f32; GRID_SIZE * GRID_SIZE];
        mask[0] = 1.0;
        let art = ascii_mask(&mask);
        assert!(art.contains('@'));
        assert!(art.contains(' '));
    }

    #[test]
    fn svg_contains_block_names_and_overlays() {
        let (circuit, fp) = sample();
        let overlay = Overlay {
            points: vec![(1.0, 1.0), (5.0, 5.0)],
            color: "#d62728".into(),
        };
        let svg = svg_floorplan(&circuit, &fp, &[overlay]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains(&circuit.blocks[0].name));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn svg_for_empty_floorplan_is_valid() {
        let circuit = generators::ota3();
        let fp = Floorplan::new(Canvas::new(32.0, 32.0));
        let svg = svg_floorplan(&circuit, &fp, &[]);
        assert!(svg.starts_with("<svg"));
    }
}

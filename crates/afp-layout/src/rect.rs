//! Axis-aligned rectangles in micrometre coordinates.

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[x0, x1) × [y0, y1)` in µm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle from its lower-left corner and size.
    pub fn from_origin_size(x0: f64, y0: f64, width: f64, height: f64) -> Self {
        Rect {
            x0,
            y0,
            x1: x0 + width,
            y1: y0 + height,
        }
    }

    /// Creates a rectangle from two corners (order-insensitive).
    pub fn from_corners(xa: f64, ya: f64, xb: f64, yb: f64) -> Self {
        Rect {
            x0: xa.min(xb),
            y0: ya.min(yb),
            x1: xa.max(xb),
            y1: ya.max(yb),
        }
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Area of the rectangle.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Aspect ratio (width / height).
    pub fn aspect(&self) -> f64 {
        self.width() / self.height().max(1e-12)
    }

    /// Returns `true` if the two rectangles overlap with positive area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Returns `true` if `other` lies completely inside `self` (touching edges
    /// allowed).
    pub fn contains(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// Returns `true` if the point lies inside the rectangle.
    pub fn contains_point(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// The smallest rectangle containing both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// The bounding box of a non-empty set of rectangles, or `None` if the
    /// iterator is empty.
    pub fn bounding_box<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Option<Rect> {
        let mut iter = rects.into_iter();
        let first = *iter.next()?;
        Some(iter.fold(first, |acc, r| acc.union(r)))
    }

    /// The rectangle grown by `margin` on every side.
    pub fn inflated(&self, margin: f64) -> Rect {
        Rect {
            x0: self.x0 - margin,
            y0: self.y0 - margin,
            x1: self.x1 + margin,
            y1: self.y1 + margin,
        }
    }

    /// Half-perimeter of the rectangle.
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let r = Rect::from_origin_size(1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
        assert_eq!(r.half_perimeter(), 7.0);
    }

    #[test]
    fn overlap_detection() {
        let a = Rect::from_origin_size(0.0, 0.0, 2.0, 2.0);
        let b = Rect::from_origin_size(1.0, 1.0, 2.0, 2.0);
        let c = Rect::from_origin_size(2.0, 0.0, 2.0, 2.0);
        assert!(a.overlaps(&b));
        // Touching edges do not overlap.
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn containment() {
        let outer = Rect::from_origin_size(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::from_origin_size(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains_point(5.0, 5.0));
        assert!(!outer.contains_point(10.0, 5.0));
    }

    #[test]
    fn union_and_bounding_box() {
        let a = Rect::from_origin_size(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_origin_size(4.0, 5.0, 1.0, 1.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::from_corners(0.0, 0.0, 5.0, 6.0));
        assert_eq!(Rect::bounding_box([&a, &b]), Some(u));
        assert_eq!(Rect::bounding_box(std::iter::empty()), None);
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let r = Rect::from_origin_size(1.0, 1.0, 2.0, 2.0).inflated(0.5);
        assert_eq!(r, Rect::from_corners(0.5, 0.5, 3.5, 3.5));
    }

    #[test]
    fn corners_constructor_is_order_insensitive() {
        let a = Rect::from_corners(3.0, 4.0, 1.0, 2.0);
        assert_eq!(a, Rect::from_corners(1.0, 2.0, 3.0, 4.0));
    }
}

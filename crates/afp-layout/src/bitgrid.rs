//! Bitboard occupancy for the placement grid, in multi-word rows.
//!
//! The paper's discretization (§IV-D1) fixes the grid at [`GRID_SIZE`]` = 32`
//! cells per side, and the historical representation was literally one `u32`
//! per row. This module keeps that word-level engine — the same representation
//! chess engines use for move generation — but generalizes it to runtime
//! `width × height` grids stored as `⌈width/64⌉` `u64` words per row, so the
//! large-n workload tier can realize hundreds of blocks on grids wider than
//! one machine word. The default [`BitGrid::new`] instantiation is still the
//! paper's 32×32 grid, stored inline (no heap allocation) and bit-identical in
//! behaviour to the one-word engine it replaces.
//!
//! * **Footprint probe** ([`BitGrid::fits`]): a `gw`-wide footprint anchored
//!   at `x` covers a row mask; the footprint fits iff that mask ANDs to zero
//!   against each of the `gh` covered rows. On a one-word row that is one
//!   shift-AND per row; on a multi-word row the mask is materialized one word
//!   segment at a time.
//! * **Occupy / free** ([`BitGrid::try_occupy`], [`BitGrid::clear_rect`]):
//!   OR / AND-NOT of the same masks, with bounds + overlap checked from the
//!   very masks that are then written — no per-cell walk.
//! * **Free-anchor map** ([`BitGrid::free_anchors`]): for every cell at once,
//!   "does a `gw × gh` footprint anchored here fit?". Horizontally, the
//!   classic run-of-`k` shift-AND doubling trick: starting from the free mask
//!   `m = !row`, repeatedly `m &= m >> s` with doubling step `s` builds, in
//!   ⌈log₂ gw⌉ steps, the mask of positions where `gw` consecutive free bits
//!   begin. The multi-word shift carries bits across word seams
//!   (`m[i] = (m[i] >> s) | (m[i+1] << (64 − s))`), so a run that straddles a
//!   `u64` boundary is tracked exactly; anchors whose run would cross the
//!   right grid edge fall out because the top word shifts zeros in.
//!   Vertically, the same doubling ANDs `gh` consecutive rows word-wise in
//!   ⌈log₂ gh⌉ passes.
//!
//! The anchor map is what the grid-realization snap search
//! ([`crate::sequence_pair::find_nearest_fit`]) and the RL positional masks
//! `f_p` ([`crate::masks::positional_mask`], paper §IV-D2 after MaskPlace \[4\])
//! are built from.

use serde::{Deserialize, Serialize};

use crate::grid::{Cell, GRID_SIZE};

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Words kept inline before spilling to the heap: the default 32×32 grid is
/// exactly 32 one-word rows, so every paper-scale grid is allocation-free.
const INLINE_WORDS: usize = 32;

/// Maximum words per row, bounding [`BitGrid::with_size`] widths at
/// `MAX_WPR · 64 = 512` cells so per-row scratch buffers (the horizontal
/// doubling pass, the snap search's row band) can live on the stack.
pub(crate) const MAX_WPR: usize = 8;

/// Why a footprint cannot be occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupyError {
    /// The footprint extends past the grid boundary.
    OutOfBounds,
    /// The footprint overlaps occupied cells.
    Overlap,
}

/// Row-major word storage shared by [`BitGrid`] and [`AnchorMap`]: row `y`
/// occupies words `[y·wpr, (y+1)·wpr)`, bit `x mod 64` of word `x / 64` is
/// cell `(x, y)`. Unused bits (columns ≥ `width`, inline words beyond the
/// grid) are kept zero as an invariant, so word-wise population counts and
/// equality need no re-masking.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WordStore {
    inline: [u64; INLINE_WORDS],
    spill: Vec<u64>,
}

impl WordStore {
    const fn empty() -> Self {
        WordStore {
            inline: [0; INLINE_WORDS],
            spill: Vec::new(),
        }
    }

    fn with_len(len: usize) -> Self {
        WordStore {
            inline: [0; INLINE_WORDS],
            spill: if len > INLINE_WORDS { vec![0; len] } else { Vec::new() },
        }
    }

    #[inline]
    fn words(&self, len: usize) -> &[u64] {
        if self.spill.is_empty() {
            &self.inline[..len]
        } else {
            &self.spill
        }
    }

    #[inline]
    fn words_mut(&mut self, len: usize) -> &mut [u64] {
        if self.spill.is_empty() {
            &mut self.inline[..len]
        } else {
            &mut self.spill
        }
    }
}

/// Bitboard over a `width × height` placement grid ([`BitGrid::new`] is the
/// paper's 32×32 default). Bit `x` of row `y` (LSB = column 0, words in
/// little-endian column order) is 1 iff cell `(x, y)` is occupied. See the
/// module docs for the word-level algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BitGrid {
    width: u16,
    height: u16,
    wpr: u16,
    store: WordStore,
}

impl Default for BitGrid {
    fn default() -> Self {
        BitGrid::new()
    }
}

impl PartialEq for BitGrid {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.height == other.height
            && self.words() == other.words()
    }
}

impl Eq for BitGrid {}

impl BitGrid {
    /// An empty grid at the paper's default `GRID_SIZE × GRID_SIZE` size.
    pub const fn new() -> Self {
        BitGrid {
            width: GRID_SIZE as u16,
            height: GRID_SIZE as u16,
            wpr: 1,
            store: WordStore::empty(),
        }
    }

    /// An empty `width × height` grid. Sizes up to `INLINE_WORDS` total
    /// words (the default 32×32 among them) are stored inline; larger grids
    /// spill to one heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds `MAX_WPR · 64 = 512`.
    pub fn with_size(width: usize, height: usize) -> Self {
        assert!(
            (1..=MAX_WPR * WORD_BITS).contains(&width)
                && (1..=MAX_WPR * WORD_BITS).contains(&height),
            "BitGrid dimensions {width}x{height} out of the supported 1..=512 range"
        );
        let wpr = width.div_ceil(WORD_BITS);
        BitGrid {
            width: width as u16,
            height: height as u16,
            wpr: wpr as u16,
            store: WordStore::with_len(height * wpr),
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Grid height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height as usize
    }

    /// Words per row (`⌈width / 64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr as usize
    }

    /// The raw occupancy words, row-major, bottom row first (see
    /// `WordStore` layout). Exposed for differential tests.
    #[inline]
    pub fn words(&self) -> &[u64] {
        self.store.words(self.height as usize * self.wpr as usize)
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        self.store.words_mut(self.height as usize * self.wpr as usize)
    }

    /// The valid-column mask of row word `wi`: 1 for bits that are real grid
    /// columns, 0 for padding past `width` in the row's top word.
    #[inline]
    fn valid_mask(&self, wi: usize) -> u64 {
        let lo = wi * WORD_BITS;
        let width = self.width as usize;
        if lo + WORD_BITS <= width {
            !0
        } else if lo >= width {
            0
        } else {
            (1u64 << (width - lo)) - 1
        }
    }

    /// The mask a `gw`-wide footprint anchored at column `x` covers within
    /// one word, given `x + gw ≤ 64`.
    #[inline]
    fn one_word_mask(x: usize, gw: usize) -> u64 {
        debug_assert!(gw >= 1 && x + gw <= WORD_BITS);
        if gw == WORD_BITS {
            !0
        } else {
            ((1u64 << gw) - 1) << x
        }
    }

    /// The part of the span `[x, x + gw)` that falls in word `wi` of a row,
    /// as a bit mask local to that word (0 if the span misses the word).
    #[inline]
    fn segment_mask(wi: usize, x: usize, gw: usize) -> u64 {
        let word_lo = wi * WORD_BITS;
        let lo = x.max(word_lo);
        let hi = (x + gw).min(word_lo + WORD_BITS);
        if lo >= hi {
            return 0;
        }
        Self::one_word_mask(lo - word_lo, hi - lo)
    }

    /// Returns `true` if the cell is occupied. `cell` must be on the grid.
    #[inline]
    pub fn get(&self, cell: Cell) -> bool {
        debug_assert!(cell.x < self.width() && cell.y < self.height());
        let wpr = self.wpr as usize;
        let word = self.words()[cell.y * wpr + cell.x / WORD_BITS];
        (word >> (cell.x % WORD_BITS)) & 1 == 1
    }

    /// Clears every cell.
    pub fn clear(&mut self) {
        self.store.inline = [0; INLINE_WORDS];
        self.store.spill.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of occupied cells.
    pub fn count_occupied(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if a `gw × gh` footprint anchored at `cell` stays on
    /// the grid and overlaps no occupied cell: `gh` shift-AND row probes on a
    /// one-word row, one probe per covered word segment otherwise.
    #[inline]
    pub fn fits(&self, cell: Cell, gw: usize, gh: usize) -> bool {
        if cell.x + gw > self.width() || cell.y + gh > self.height() {
            return false;
        }
        let wpr = self.wpr as usize;
        let words = self.words();
        if wpr == 1 {
            let mask = Self::one_word_mask(cell.x, gw);
            return words[cell.y..cell.y + gh].iter().all(|&r| r & mask == 0);
        }
        let w0 = cell.x / WORD_BITS;
        let w1 = (cell.x + gw - 1) / WORD_BITS;
        (cell.y..cell.y + gh).all(|y| {
            let row = &words[y * wpr..(y + 1) * wpr];
            (w0..=w1).all(|wi| row[wi] & Self::segment_mask(wi, cell.x, gw) == 0)
        })
    }

    /// Checks bounds and overlap and occupies the footprint, reusing the
    /// probe masks for the write — the single-pass replacement for the
    /// bounds → `fits` → set-bits triple walk. A failed call leaves the grid
    /// unchanged.
    pub fn try_occupy(&mut self, cell: Cell, gw: usize, gh: usize) -> Result<(), OccupyError> {
        if cell.x + gw > self.width() || cell.y + gh > self.height() {
            return Err(OccupyError::OutOfBounds);
        }
        if !self.fits(cell, gw, gh) {
            return Err(OccupyError::Overlap);
        }
        self.set_rect(cell, gw, gh);
        Ok(())
    }

    /// Occupies the footprint unconditionally (bounds must hold).
    pub fn set_rect(&mut self, cell: Cell, gw: usize, gh: usize) {
        debug_assert!(cell.x + gw <= self.width() && cell.y + gh <= self.height());
        let wpr = self.wpr as usize;
        let w0 = cell.x / WORD_BITS;
        let w1 = (cell.x + gw - 1) / WORD_BITS;
        let words = self.words_mut();
        if w0 == w1 {
            // Footprint spans one word per row: one precomputed OR per row.
            let mask = Self::segment_mask(w0, cell.x, gw);
            for y in cell.y..cell.y + gh {
                words[y * wpr + w0] |= mask;
            }
            return;
        }
        for y in cell.y..cell.y + gh {
            for wi in w0..=w1 {
                words[y * wpr + wi] |= Self::segment_mask(wi, cell.x, gw);
            }
        }
    }

    /// Frees the footprint (AND-NOT of the span masks; bounds must hold).
    pub fn clear_rect(&mut self, cell: Cell, gw: usize, gh: usize) {
        debug_assert!(cell.x + gw <= self.width() && cell.y + gh <= self.height());
        let wpr = self.wpr as usize;
        let w0 = cell.x / WORD_BITS;
        let w1 = (cell.x + gw - 1) / WORD_BITS;
        let words = self.words_mut();
        if w0 == w1 {
            let mask = !Self::segment_mask(w0, cell.x, gw);
            for y in cell.y..cell.y + gh {
                words[y * wpr + w0] &= mask;
            }
            return;
        }
        for y in cell.y..cell.y + gh {
            for wi in w0..=w1 {
                words[y * wpr + wi] &= !Self::segment_mask(wi, cell.x, gw);
            }
        }
    }

    /// Writes the free anchors of row `y` into `out[..words_per_row()]`: bit
    /// `x` of the result is 1 iff [`BitGrid::fits`]`(Cell::new(x, y), gw,
    /// gh)` — the one-row slice of [`BitGrid::free_anchors`], for searches
    /// that touch only a few rows (the snap search probes a 7-row band around
    /// its start cell). The `gh` covered rows are OR-combined first, so the
    /// horizontal run-of-`gw` doubling runs once on the union.
    pub fn row_anchors_into(&self, y: usize, gw: usize, gh: usize, out: &mut [u64]) {
        let wpr = self.wpr as usize;
        let out = &mut out[..wpr];
        if gw == 0 || gh == 0 || gw > self.width() || y + gh > self.height() {
            out.fill(0);
            return;
        }
        let words = self.words();
        if wpr == 1 {
            // One-word rows: OR the covered rows, negate under the width
            // mask, and run the doubling in a register.
            let mut acc = 0u64;
            for &w in &words[y..y + gh] {
                acc |= w;
            }
            let mut m = !acc & self.valid_mask(0);
            let mut run = 1usize;
            while run < gw {
                let step = run.min(gw - run);
                m &= m >> step;
                run += step;
            }
            out[0] = m;
            return;
        }
        out.fill(0);
        for yy in y..y + gh {
            for (o, &w) in out.iter_mut().zip(&words[yy * wpr..(yy + 1) * wpr]) {
                *o |= w;
            }
        }
        for (wi, o) in out.iter_mut().enumerate() {
            *o = !*o & self.valid_mask(wi);
        }
        run_of_gw(out, gw);
    }

    /// The free anchors of a single grid row as an owned [`RowMask`] —
    /// [`row_anchors_into`](BitGrid::row_anchors_into) for callers without a
    /// word buffer (allocation-free on one-word rows).
    pub fn row_anchors(&self, y: usize, gw: usize, gh: usize) -> RowMask {
        let mut buf = [0u64; MAX_WPR];
        self.row_anchors_into(y, gw, gh, &mut buf);
        RowMask {
            width: self.width,
            word0: buf[0],
            spill: if self.wpr > 1 {
                buf[1..self.wpr as usize].to_vec()
            } else {
                Vec::new()
            },
        }
    }

    /// The free-anchor map for a `gw × gh` footprint: bit `(x, y)` is 1 iff
    /// [`BitGrid::fits`]`(Cell::new(x, y), gw, gh)` — computed for all cells
    /// at once with the run-of-`gw` shift-AND doubling trick horizontally
    /// (carrying across word seams) and the same doubling over rows
    /// vertically (module docs).
    pub fn free_anchors(&self, gw: usize, gh: usize) -> AnchorMap {
        let wpr = self.wpr as usize;
        let height = self.height();
        let mut map = AnchorMap {
            width: self.width,
            height: self.height,
            wpr: self.wpr,
            store: WordStore::with_len(height * wpr),
        };
        if gw == 0 || gh == 0 || gw > self.width() || gh > height {
            return map;
        }
        let words = self.words();
        let anchors = map.store.words_mut(height * wpr);
        // Horizontal pass: bit x survives iff bits x .. x+gw-1 are all free.
        // Right-edge anchors die because the top word shifts zeros in.
        if wpr == 1 {
            // One word per row: the whole pass is a negate-mask plus
            // in-register doubling per row, with no seam carries.
            let valid = self.valid_mask(0);
            for (a, &w) in anchors.iter_mut().zip(words) {
                let mut m = !w & valid;
                let mut run = 1usize;
                while run < gw {
                    let step = run.min(gw - run);
                    m &= m >> step;
                    run += step;
                }
                *a = m;
            }
        } else {
            for y in 0..height {
                let row = &mut anchors[y * wpr..(y + 1) * wpr];
                for (wi, (a, &w)) in row.iter_mut().zip(&words[y * wpr..]).enumerate() {
                    *a = !w
                        & if (wi + 1) * WORD_BITS <= self.width as usize {
                            !0
                        } else {
                            (1u64 << (self.width as usize - wi * WORD_BITS)) - 1
                        };
                }
                run_of_gw(row, gw);
            }
        }
        // Vertical pass: AND rows y .. y+gh-1 by doubling. Ascending `y`
        // reads row `y + step` before this round overwrites it, so each
        // round combines two runs of the previous round's length; rows whose
        // footprint would cross the top edge collapse to 0.
        let mut run = 1usize;
        while run < gh {
            let step = run.min(gh - run);
            if wpr == 1 {
                // `step < gh ≤ height`, so the split point is on the slice.
                for y in 0..height - step {
                    let upper = anchors[y + step];
                    anchors[y] &= upper;
                }
                anchors[height - step..height].fill(0);
            } else {
                for y in 0..height {
                    if y + step < height {
                        for wi in 0..wpr {
                            let upper = anchors[(y + step) * wpr + wi];
                            anchors[y * wpr + wi] &= upper;
                        }
                    } else {
                        anchors[y * wpr..(y + 1) * wpr].fill(0);
                    }
                }
            }
            run += step;
        }
        map
    }
}

/// In-place run-of-`gw` doubling on one multi-word row: after the call, bit
/// `x` is set iff bits `x .. x+gw-1` were all set. The shift-AND carries
/// across word seams: shifting the row right by `s` reads
/// `(row[i + s/64] >> s%64) | (row[i + s/64 + 1] << (64 − s%64))`.
fn run_of_gw(row: &mut [u64], gw: usize) {
    if row.len() == 1 {
        // One-word row (every grid up to 64 columns): the classic in-register
        // doubling, no seam carries, no scratch buffer.
        let mut m = row[0];
        let mut run = 1usize;
        while run < gw {
            let step = run.min(gw - run);
            m &= if step == WORD_BITS { 0 } else { m >> step };
            run += step;
        }
        row[0] = m;
        return;
    }
    let wpr = row.len();
    let mut shifted = [0u64; MAX_WPR];
    let mut run = 1usize;
    while run < gw {
        let step = run.min(gw - run);
        let ws = step / WORD_BITS;
        let bs = step % WORD_BITS;
        for i in 0..wpr {
            let lo = row.get(i + ws).copied().unwrap_or(0);
            shifted[i] = if bs == 0 {
                lo
            } else {
                let hi = row.get(i + ws + 1).copied().unwrap_or(0);
                (lo >> bs) | (hi << (WORD_BITS - bs))
            };
        }
        for (r, &s) in row.iter_mut().zip(&shifted) {
            *r &= s;
        }
        run += step;
    }
}

/// Returns `true` if bit `x` of a multi-word row is set.
#[inline]
pub(crate) fn row_bit(words: &[u64], x: usize) -> bool {
    (words[x / WORD_BITS] >> (x % WORD_BITS)) & 1 == 1
}

/// The lowest set bit of a multi-word row within the inclusive column window
/// `[lo, hi]`, or `None`.
pub(crate) fn first_set_in_range(words: &[u64], lo: usize, hi: usize) -> Option<usize> {
    let w0 = lo / WORD_BITS;
    let w1 = hi / WORD_BITS;
    for wi in w0..=w1.min(words.len() - 1) {
        let mut w = words[wi];
        let base = wi * WORD_BITS;
        if wi == w0 {
            w &= !0 << (lo - base);
        }
        if base + WORD_BITS > hi + 1 {
            let keep = hi + 1 - base;
            w &= if keep == WORD_BITS { !0 } else { (1u64 << keep) - 1 };
        }
        if w != 0 {
            return Some(base + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Iterator over the set bit positions of one row, ascending.
struct SetBits<'a> {
    words: std::slice::Iter<'a, u64>,
    current: u64,
    base: usize,
}

impl<'a> Iterator for SetBits<'a> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let x = self.base + self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(x);
            }
            self.current = *self.words.next()?;
            self.base = self.base.wrapping_add(WORD_BITS);
        }
    }
}

fn set_bits(words: &[u64]) -> SetBits<'_> {
    SetBits {
        words: words.iter(),
        current: 0,
        base: 0usize.wrapping_sub(WORD_BITS),
    }
}

/// The free anchors of one grid row, owned (see [`BitGrid::row_anchors`]).
/// One-word rows — every grid up to 64 cells wide — stay allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    width: u16,
    word0: u64,
    spill: Vec<u64>,
}

impl RowMask {
    /// Returns `true` if column `x` is an anchor.
    #[inline]
    pub fn get(&self, x: usize) -> bool {
        debug_assert!(x < self.width as usize);
        if x < WORD_BITS {
            (self.word0 >> x) & 1 == 1
        } else {
            row_bit(&self.spill, x - WORD_BITS)
        }
    }

    /// Returns `true` if any column is an anchor.
    pub fn any(&self) -> bool {
        self.word0 != 0 || self.spill.iter().any(|&w| w != 0)
    }
}

/// The free-anchor map of a whole grid (see [`BitGrid::free_anchors`]): bit
/// `(x, y)` is set iff a `gw × gh` footprint anchored there fits. Stored like
/// [`BitGrid`] itself — inline for the default 32×32 grid.
#[derive(Debug, Clone)]
pub struct AnchorMap {
    width: u16,
    height: u16,
    wpr: u16,
    store: WordStore,
}

impl AnchorMap {
    /// Map width in cells.
    #[inline]
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Map height in cells.
    #[inline]
    pub fn height(&self) -> usize {
        self.height as usize
    }

    #[inline]
    fn words(&self) -> &[u64] {
        self.store.words(self.height as usize * self.wpr as usize)
    }

    #[inline]
    fn row_words(&self, y: usize) -> &[u64] {
        let wpr = self.wpr as usize;
        &self.words()[y * wpr..(y + 1) * wpr]
    }

    /// Returns `true` if `(x, y)` is an anchor. Must be on the grid.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        debug_assert!(x < self.width() && y < self.height());
        row_bit(self.row_words(y), x)
    }

    /// The set columns of row `y`, ascending.
    pub fn iter_row(&self, y: usize) -> impl Iterator<Item = usize> + '_ {
        set_bits(self.row_words(y))
    }

    /// The first anchor in row-major order (`y` ascending, then `x`), or
    /// `None` if the map is empty.
    pub fn first_set(&self) -> Option<Cell> {
        (0..self.height()).find_map(|y| {
            self.iter_row(y).next().map(|x| Cell::new(x, y))
        })
    }

    /// Returns `true` if no cell is an anchor.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }
}

/// Finds, in a free-anchor map, the set anchor nearest to `start` under the
/// search order of the historical spiral scan: Chebyshev radius ascending,
/// then `Δy` from `-r` to `r`, then `Δx` ascending — so placements stay
/// bit-identical to the scalar path. Rows on the ring interior contribute
/// only `Δx = ±r`; the two boundary rows take the lowest set bit of their
/// `[x−r, x+r]` window.
pub fn nearest_anchor(anchors: &AnchorMap, start: Cell) -> Option<Cell> {
    if anchors.get(start.x, start.y) {
        return Some(start);
    }
    nearest_anchor_from(anchors, start, 1)
}

/// [`nearest_anchor`] restricted to Chebyshev radii `>= min_radius`: the
/// continuation used when smaller rings were already probed cell-by-cell
/// (see `find_nearest_fit`). Scan order within each ring is unchanged.
pub fn nearest_anchor_from(anchors: &AnchorMap, start: Cell, min_radius: usize) -> Option<Cell> {
    let width = anchors.width() as isize;
    let height = anchors.height() as isize;
    let max_radius = width.max(height);
    for radius in min_radius as isize..max_radius {
        for dy in -radius..=radius {
            let y = start.y as isize + dy;
            if !(0..height).contains(&y) {
                continue;
            }
            let row = anchors.row_words(y as usize);
            if row.iter().all(|&w| w == 0) {
                continue;
            }
            if dy.abs() == radius {
                // Full ring edge: lowest set bit in the clamped window
                // [x - r, x + r] is the smallest admissible Δx.
                let lo = (start.x as isize - radius).max(0) as usize;
                let hi = (start.x as isize + radius).min(width - 1) as usize;
                if let Some(x) = first_set_in_range(row, lo, hi) {
                    return Some(Cell::new(x, y as usize));
                }
            } else {
                // Ring side: only Δx = −r then Δx = +r are on the ring.
                let left = start.x as isize - radius;
                if left >= 0 && row_bit(row, left as usize) {
                    return Some(Cell::new(left as usize, y as usize));
                }
                let right = start.x as isize + radius;
                if right < width && row_bit(row, right as usize) {
                    return Some(Cell::new(right as usize, y as usize));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar oracle for `fits`.
    fn fits_scalar(g: &BitGrid, cell: Cell, gw: usize, gh: usize) -> bool {
        if cell.x + gw > g.width() || cell.y + gh > g.height() {
            return false;
        }
        (0..gh).all(|dy| (0..gw).all(|dx| !g.get(Cell::new(cell.x + dx, cell.y + dy))))
    }

    /// Asserts `fits`, the anchor map and the per-row anchors against the
    /// scalar oracle on every cell.
    fn assert_matches_scalar(g: &BitGrid, gw: usize, gh: usize) {
        let anchors = g.free_anchors(gw, gh);
        for y in 0..g.height() {
            let row = g.row_anchors(y, gw, gh);
            for x in 0..g.width() {
                let cell = Cell::new(x, y);
                let expected = fits_scalar(g, cell, gw, gh);
                assert_eq!(g.fits(cell, gw, gh), expected, "fits {gw}x{gh} at {x},{y}");
                assert_eq!(anchors.get(x, y), expected, "anchor {gw}x{gh} at {x},{y}");
                assert_eq!(row.get(x), expected, "row anchor {gw}x{gh} at {x},{y}");
            }
        }
    }

    #[test]
    fn empty_grid_fits_everywhere_in_bounds() {
        let g = BitGrid::new();
        assert!(g.fits(Cell::new(0, 0), 32, 32));
        assert!(g.fits(Cell::new(31, 31), 1, 1));
        assert!(!g.fits(Cell::new(31, 31), 2, 1));
        assert!(!g.fits(Cell::new(0, 30), 1, 3));
        assert_eq!(g.count_occupied(), 0);
    }

    #[test]
    fn occupy_clear_roundtrip() {
        let mut g = BitGrid::new();
        g.try_occupy(Cell::new(3, 5), 4, 2).unwrap();
        assert_eq!(g.count_occupied(), 8);
        assert!(g.get(Cell::new(3, 5)));
        assert!(g.get(Cell::new(6, 6)));
        assert!(!g.get(Cell::new(7, 5)));
        assert_eq!(
            g.try_occupy(Cell::new(6, 6), 2, 2),
            Err(OccupyError::Overlap)
        );
        assert_eq!(
            g.try_occupy(Cell::new(30, 0), 3, 1),
            Err(OccupyError::OutOfBounds)
        );
        g.clear_rect(Cell::new(3, 5), 4, 2);
        assert_eq!(g, BitGrid::new());
    }

    #[test]
    fn failed_occupy_leaves_grid_unchanged() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(10, 10), 2, 2);
        let before = g.clone();
        assert!(g.try_occupy(Cell::new(9, 9), 3, 3).is_err());
        assert_eq!(g, before);
    }

    #[test]
    fn free_anchors_match_fits_for_every_cell_and_footprint() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 7, 3);
        g.set_rect(Cell::new(20, 12), 5, 9);
        g.set_rect(Cell::new(9, 28), 12, 4);
        g.set_rect(Cell::new(31, 0), 1, 32);
        for &(gw, gh) in &[(1, 1), (2, 5), (5, 2), (7, 7), (32, 1), (1, 32), (32, 32)] {
            assert_matches_scalar(&g, gw, gh);
        }
    }

    #[test]
    fn degenerate_footprints_have_no_anchors() {
        let g = BitGrid::new();
        assert!(g.free_anchors(0, 1).is_empty());
        assert!(g.free_anchors(33, 1).is_empty());
    }

    #[test]
    fn row_anchors_match_the_full_anchor_map() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 7, 3);
        g.set_rect(Cell::new(20, 12), 5, 9);
        g.set_rect(Cell::new(9, 28), 12, 4);
        for &(gw, gh) in &[(1, 1), (2, 5), (5, 2), (7, 7), (32, 1), (1, 32)] {
            assert_matches_scalar(&g, gw, gh);
        }
        assert!(!g.row_anchors(0, 0, 1).any());
        assert!(!g.row_anchors(31, 1, 2).any(), "top-edge crossing row is empty");
    }

    #[test]
    fn nearest_anchor_prefers_start_then_ring_order() {
        let mut g = BitGrid::new();
        // Block the start cell; nearest free anchors ring around it.
        g.set_rect(Cell::new(10, 10), 1, 1);
        let anchors = g.free_anchors(1, 1);
        assert_eq!(
            nearest_anchor(&anchors, Cell::new(10, 10)),
            // radius 1, dy = -1 row first, lowest x in window [9, 11].
            Some(Cell::new(9, 9))
        );
        assert_eq!(
            nearest_anchor(&anchors, Cell::new(4, 4)),
            Some(Cell::new(4, 4))
        );
    }

    #[test]
    fn nearest_anchor_exhausted_grid_is_none() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 32, 32);
        let anchors = g.free_anchors(1, 1);
        assert_eq!(nearest_anchor(&anchors, Cell::new(16, 16)), None);
        assert!(anchors.is_empty());
    }

    // --- Multi-word grids and u64 word-seam edge cases -----------------

    #[test]
    fn default_grid_is_inline_and_sized() {
        let g = BitGrid::new();
        assert_eq!((g.width(), g.height(), g.words_per_row()), (32, 32, 1));
        let wide = BitGrid::with_size(192, 40);
        assert_eq!((wide.width(), wide.height(), wide.words_per_row()), (192, 40, 3));
        let odd = BitGrid::with_size(65, 3);
        assert_eq!(odd.words_per_row(), 2);
    }

    #[test]
    #[should_panic(expected = "out of the supported")]
    fn oversized_grid_is_rejected() {
        let _ = BitGrid::with_size(513, 4);
    }

    #[test]
    fn wide_grid_queries_match_scalar_across_word_seams() {
        // 192-wide grid: seams at 64 and 128. Occupancy straddles both.
        let mut g = BitGrid::with_size(192, 8);
        g.set_rect(Cell::new(61, 2), 6, 2); // straddles the bit-63/64 seam
        g.set_rect(Cell::new(126, 5), 5, 2); // straddles the bit-127/128 seam
        g.set_rect(Cell::new(0, 0), 3, 1);
        g.set_rect(Cell::new(189, 7), 3, 1); // against the right edge
        for &(gw, gh) in &[(1, 1), (63, 2), (64, 1), (65, 3), (130, 2), (192, 1)] {
            assert_matches_scalar(&g, gw, gh);
        }
    }

    /// The satellite fuzz of the word-boundary kernels: footprints with
    /// `gw ∈ {63, 64, 65}` anchored at columns 62–66 (both sides of the
    /// first seam) through fits / try_occupy / free_anchors / row_anchors.
    #[test]
    fn seam_straddling_footprints_roundtrip_exactly() {
        for gw in [63usize, 64, 65] {
            for x in 62usize..=66 {
                let mut g = BitGrid::with_size(192, 6);
                assert!(g.fits(Cell::new(x, 1), gw, 2), "empty grid fits {gw} at {x}");
                g.try_occupy(Cell::new(x, 1), gw, 2)
                    .unwrap_or_else(|e| panic!("occupy {gw} at {x}: {e:?}"));
                assert_eq!(g.count_occupied(), gw * 2);
                // Every cell of the span is set, the neighbours are not.
                for cx in x..x + gw {
                    assert!(g.get(Cell::new(cx, 1)), "cell {cx} unset for {gw} at {x}");
                }
                assert!(!g.get(Cell::new(x - 1, 1)));
                assert!(!g.get(Cell::new(x + gw, 1)));
                // A 1×1 probe at each span cell overlaps; outside it fits.
                assert_eq!(
                    g.try_occupy(Cell::new(x + gw / 2, 2), 1, 1),
                    Err(OccupyError::Overlap)
                );
                assert!(g.fits(Cell::new(x - 1, 1), 1, 1));
                // Anchor maps agree with the scalar oracle cell-for-cell.
                for probe_gw in [63usize, 64, 65] {
                    assert_matches_scalar(&g, probe_gw, 2);
                }
                g.clear_rect(Cell::new(x, 1), gw, 2);
                assert_eq!(g, BitGrid::with_size(192, 6));
            }
        }
    }

    #[test]
    fn nearest_anchor_crosses_word_seams() {
        let mut g = BitGrid::with_size(130, 5);
        // Occupy everything except one cell just past the first seam.
        g.set_rect(Cell::new(0, 0), 130, 5);
        g.clear_rect(Cell::new(65, 3), 1, 1);
        let anchors = g.free_anchors(1, 1);
        assert_eq!(nearest_anchor(&anchors, Cell::new(60, 3)), Some(Cell::new(65, 3)));
        assert_eq!(nearest_anchor_from(&anchors, Cell::new(63, 3), 1), Some(Cell::new(65, 3)));
        assert_eq!(nearest_anchor_from(&anchors, Cell::new(65, 3), 1), None, "min radius skips start");
    }

    #[test]
    fn tall_runs_double_across_many_words() {
        // gw > 128 exercises doubling steps larger than one word.
        let mut g = BitGrid::with_size(320, 4);
        g.set_rect(Cell::new(200, 1), 1, 1);
        for &(gw, gh) in &[(129, 1), (200, 2), (320, 1)] {
            assert_matches_scalar(&g, gw, gh);
        }
    }
}

//! Bitboard occupancy for the fixed 32×32 placement grid.
//!
//! The paper's discretization (§IV-D1) fixes the grid at [`GRID_SIZE`]` = 32`
//! cells per side, which makes one grid row exactly one `u32`: bit `x` of
//! [`BitGrid::row`]`(y)` is 1 iff cell `(x, y)` is occupied. Every occupancy
//! query the floorplan hot path performs then collapses to a handful of
//! word-level operations — the same representation chess engines use for move
//! generation:
//!
//! * **Footprint probe** ([`BitGrid::fits`]): a `gw`-wide footprint anchored
//!   at `x` covers the row mask `((1 << gw) - 1) << x`; the footprint fits iff
//!   that mask ANDs to zero against each of the `gh` covered rows — `gh` word
//!   ops instead of `gw × gh` cell probes.
//! * **Occupy / free** ([`BitGrid::try_occupy`], [`BitGrid::clear_rect`]):
//!   OR / AND-NOT of the same mask, with bounds + overlap checked from the
//!   very mask that is then written — a single pass, no per-cell walk.
//! * **Free-anchor map** ([`BitGrid::free_anchors`]): for every cell at once,
//!   "does a `gw × gh` footprint anchored here fit?". Horizontally, the
//!   classic run-of-`k` shift-AND doubling trick: starting from the free mask
//!   `m = !row`, repeatedly `m &= m >> s` with doubling step `s` builds, in
//!   ⌈log₂ gw⌉ steps, the mask of positions where `gw` consecutive free bits
//!   begin (anchors whose run would cross the right edge fall out naturally
//!   because the shift pulls in zeros). Vertically, the same doubling ANDs
//!   `gh` consecutive rows in ⌈log₂ gh⌉ passes. Total cost: O(32 · log) word
//!   ops per footprint, replacing up to `32² · gw · gh` cell probes.
//!
//! The anchor map is what the grid-realization snap search
//! ([`crate::sequence_pair::find_nearest_fit`]) and the RL positional masks
//! `f_p` ([`crate::masks::positional_mask`], paper §IV-D2 after MaskPlace \[4\])
//! are built from.

use serde::{Deserialize, Serialize};

use crate::grid::{Cell, GRID_SIZE};

/// Why a footprint cannot be occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupyError {
    /// The footprint extends past the 32×32 grid boundary.
    OutOfBounds,
    /// The footprint overlaps occupied cells.
    Overlap,
}

/// Row-mask bitboard over the fixed `GRID_SIZE × GRID_SIZE` placement grid.
///
/// `rows[y]` holds row `y`; bit `x` (LSB = column 0) is 1 iff cell `(x, y)`
/// is occupied. See the module docs for the word-level algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitGrid {
    rows: [u32; GRID_SIZE],
}

impl Default for BitGrid {
    fn default() -> Self {
        BitGrid::new()
    }
}

impl BitGrid {
    /// An empty grid.
    pub const fn new() -> Self {
        BitGrid {
            rows: [0; GRID_SIZE],
        }
    }

    /// The mask a `gw`-cell-wide footprint anchored at column `x` covers
    /// within one row. Requires `gw ≥ 1` and `x + gw ≤ 32` (the `u64`
    /// intermediate keeps `gw = 32` well-defined).
    #[inline]
    fn row_mask(x: usize, gw: usize) -> u32 {
        debug_assert!(gw >= 1 && x + gw <= GRID_SIZE);
        (((1u64 << gw) - 1) as u32) << x
    }

    /// Bit mask of row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> u32 {
        self.rows[y]
    }

    /// All 32 row masks, bottom row first.
    #[inline]
    pub fn rows(&self) -> &[u32; GRID_SIZE] {
        &self.rows
    }

    /// Returns `true` if the cell is occupied. `cell` must be on the grid.
    #[inline]
    pub fn get(&self, cell: Cell) -> bool {
        (self.rows[cell.y] >> cell.x) & 1 == 1
    }

    /// Clears every cell.
    pub fn clear(&mut self) {
        self.rows = [0; GRID_SIZE];
    }

    /// Number of occupied cells.
    pub fn count_occupied(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Returns `true` if a `gw × gh` footprint anchored at `cell` stays on
    /// the grid and overlaps no occupied cell: `gh` shift-AND row probes.
    #[inline]
    pub fn fits(&self, cell: Cell, gw: usize, gh: usize) -> bool {
        if cell.x + gw > GRID_SIZE || cell.y + gh > GRID_SIZE {
            return false;
        }
        let mask = Self::row_mask(cell.x, gw);
        self.rows[cell.y..cell.y + gh].iter().all(|&r| r & mask == 0)
    }

    /// Checks bounds and overlap and occupies the footprint, reusing the one
    /// row mask for both the probe and the write — the single-pass
    /// replacement for the bounds → `fits` → set-bits triple walk.
    pub fn try_occupy(&mut self, cell: Cell, gw: usize, gh: usize) -> Result<(), OccupyError> {
        if cell.x + gw > GRID_SIZE || cell.y + gh > GRID_SIZE {
            return Err(OccupyError::OutOfBounds);
        }
        let mask = Self::row_mask(cell.x, gw);
        let rows = &mut self.rows[cell.y..cell.y + gh];
        if rows.iter().any(|&r| r & mask != 0) {
            return Err(OccupyError::Overlap);
        }
        for r in rows {
            *r |= mask;
        }
        Ok(())
    }

    /// Occupies the footprint unconditionally (bounds must hold).
    pub fn set_rect(&mut self, cell: Cell, gw: usize, gh: usize) {
        let mask = Self::row_mask(cell.x, gw);
        for r in &mut self.rows[cell.y..cell.y + gh] {
            *r |= mask;
        }
    }

    /// Frees the footprint (AND-NOT of the row mask; bounds must hold).
    pub fn clear_rect(&mut self, cell: Cell, gw: usize, gh: usize) {
        let mask = Self::row_mask(cell.x, gw);
        for r in &mut self.rows[cell.y..cell.y + gh] {
            *r &= !mask;
        }
    }

    /// The free anchors of a single grid row: bit `x` of the result is 1 iff
    /// [`BitGrid::fits`]`(Cell::new(x, y), gw, gh)` — the one-row slice of
    /// [`BitGrid::free_anchors`], for searches that touch only a few rows
    /// (the snap search probes a 7-row band around its start cell). The `gh`
    /// covered rows are OR-combined first, so the horizontal run-of-`gw`
    /// doubling runs once on the union: `gh + ⌈log₂ gw⌉` word ops answer all
    /// 32 candidate columns of the row at once.
    pub fn row_anchors(&self, y: usize, gw: usize, gh: usize) -> u32 {
        if gw == 0 || gh == 0 || gw > GRID_SIZE || y + gh > GRID_SIZE {
            return 0;
        }
        let mut occupied = 0u32;
        for &row in &self.rows[y..y + gh] {
            occupied |= row;
        }
        let mut m = !occupied;
        let mut run = 1usize;
        while run < gw {
            let step = run.min(gw - run);
            m &= m >> step;
            run += step;
        }
        m
    }

    /// The free-anchor map for a `gw × gh` footprint: bit `x` of entry `y` is
    /// 1 iff [`BitGrid::fits`]`(Cell::new(x, y), gw, gh)` — computed for all
    /// 1024 cells at once with the run-of-`gw` shift-AND doubling trick
    /// horizontally and the same doubling over rows vertically (module docs).
    pub fn free_anchors(&self, gw: usize, gh: usize) -> [u32; GRID_SIZE] {
        let mut anchors = [0u32; GRID_SIZE];
        if gw == 0 || gh == 0 || gw > GRID_SIZE || gh > GRID_SIZE {
            return anchors;
        }
        // Horizontal pass: bit x survives iff bits x .. x+gw-1 are all free.
        // Right-edge anchors die because `>>` shifts zeros in from the top.
        for (anchor, &row) in anchors.iter_mut().zip(&self.rows) {
            let mut m = !row;
            let mut run = 1usize;
            while run < gw {
                let step = run.min(gw - run);
                m &= m >> step;
                run += step;
            }
            *anchor = m;
        }
        // Vertical pass: AND rows y .. y+gh-1 by doubling. Ascending `y`
        // reads `anchors[y + step]` before this round overwrites it, so each
        // round combines two runs of the previous round's length; rows whose
        // footprint would cross the top edge collapse to 0.
        let mut run = 1usize;
        while run < gh {
            let step = run.min(gh - run);
            for y in 0..GRID_SIZE {
                anchors[y] &= if y + step < GRID_SIZE {
                    anchors[y + step]
                } else {
                    0
                };
            }
            run += step;
        }
        anchors
    }
}

/// Finds, in a free-anchor map, the set anchor nearest to `start` under the
/// search order of the historical spiral scan: Chebyshev radius ascending,
/// then `Δy` from `-r` to `r`, then `Δx` ascending — so placements stay
/// bit-identical to the scalar path. Rows on the ring interior contribute
/// only `Δx = ±r`; the two boundary rows take the lowest set bit of their
/// `[x−r, x+r]` window via a trailing-zeros scan.
pub fn nearest_anchor(anchors: &[u32; GRID_SIZE], start: Cell) -> Option<Cell> {
    if (anchors[start.y] >> start.x) & 1 == 1 {
        return Some(start);
    }
    nearest_anchor_from(anchors, start, 1)
}

/// [`nearest_anchor`] restricted to Chebyshev radii `>= min_radius`: the
/// continuation used when smaller rings were already probed cell-by-cell
/// (see `find_nearest_fit`). Scan order within each ring is unchanged.
pub fn nearest_anchor_from(
    anchors: &[u32; GRID_SIZE],
    start: Cell,
    min_radius: usize,
) -> Option<Cell> {
    for radius in min_radius as isize..GRID_SIZE as isize {
        for dy in -radius..=radius {
            let y = start.y as isize + dy;
            if !(0..GRID_SIZE as isize).contains(&y) {
                continue;
            }
            let row = anchors[y as usize];
            if row == 0 {
                continue;
            }
            if dy.abs() == radius {
                // Full ring edge: lowest set bit in the clamped window
                // [x - r, x + r] is the smallest admissible Δx.
                let lo = (start.x as isize - radius).max(0) as usize;
                let hi = (start.x as isize + radius).min(GRID_SIZE as isize - 1) as usize;
                let window = BitGrid::row_mask(lo, hi - lo + 1);
                let hits = row & window;
                if hits != 0 {
                    return Some(Cell::new(hits.trailing_zeros() as usize, y as usize));
                }
            } else {
                // Ring side: only Δx = −r then Δx = +r are on the ring.
                let left = start.x as isize - radius;
                if left >= 0 && (row >> left) & 1 == 1 {
                    return Some(Cell::new(left as usize, y as usize));
                }
                let right = start.x as isize + radius;
                if right < GRID_SIZE as isize && (row >> right) & 1 == 1 {
                    return Some(Cell::new(right as usize, y as usize));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar oracle for `fits`.
    fn fits_scalar(g: &BitGrid, cell: Cell, gw: usize, gh: usize) -> bool {
        if cell.x + gw > GRID_SIZE || cell.y + gh > GRID_SIZE {
            return false;
        }
        (0..gh).all(|dy| (0..gw).all(|dx| !g.get(Cell::new(cell.x + dx, cell.y + dy))))
    }

    #[test]
    fn empty_grid_fits_everywhere_in_bounds() {
        let g = BitGrid::new();
        assert!(g.fits(Cell::new(0, 0), 32, 32));
        assert!(g.fits(Cell::new(31, 31), 1, 1));
        assert!(!g.fits(Cell::new(31, 31), 2, 1));
        assert!(!g.fits(Cell::new(0, 30), 1, 3));
        assert_eq!(g.count_occupied(), 0);
    }

    #[test]
    fn occupy_clear_roundtrip() {
        let mut g = BitGrid::new();
        g.try_occupy(Cell::new(3, 5), 4, 2).unwrap();
        assert_eq!(g.count_occupied(), 8);
        assert!(g.get(Cell::new(3, 5)));
        assert!(g.get(Cell::new(6, 6)));
        assert!(!g.get(Cell::new(7, 5)));
        assert_eq!(
            g.try_occupy(Cell::new(6, 6), 2, 2),
            Err(OccupyError::Overlap)
        );
        assert_eq!(
            g.try_occupy(Cell::new(30, 0), 3, 1),
            Err(OccupyError::OutOfBounds)
        );
        g.clear_rect(Cell::new(3, 5), 4, 2);
        assert_eq!(g, BitGrid::new());
    }

    #[test]
    fn failed_occupy_leaves_grid_unchanged() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(10, 10), 2, 2);
        let before = g;
        assert!(g.try_occupy(Cell::new(9, 9), 3, 3).is_err());
        assert_eq!(g, before);
    }

    #[test]
    fn free_anchors_match_fits_for_every_cell_and_footprint() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 7, 3);
        g.set_rect(Cell::new(20, 12), 5, 9);
        g.set_rect(Cell::new(9, 28), 12, 4);
        g.set_rect(Cell::new(31, 0), 1, 32);
        for &(gw, gh) in &[(1, 1), (2, 5), (5, 2), (7, 7), (32, 1), (1, 32), (32, 32)] {
            let anchors = g.free_anchors(gw, gh);
            for y in 0..GRID_SIZE {
                for x in 0..GRID_SIZE {
                    let cell = Cell::new(x, y);
                    let expected = fits_scalar(&g, cell, gw, gh);
                    assert_eq!(g.fits(cell, gw, gh), expected, "fits {gw}x{gh} at {x},{y}");
                    assert_eq!(
                        (anchors[y] >> x) & 1 == 1,
                        expected,
                        "anchor {gw}x{gh} at {x},{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_footprints_have_no_anchors() {
        let g = BitGrid::new();
        assert_eq!(g.free_anchors(0, 1), [0; GRID_SIZE]);
        assert_eq!(g.free_anchors(33, 1), [0; GRID_SIZE]);
    }

    #[test]
    fn row_anchors_match_the_full_anchor_map() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 7, 3);
        g.set_rect(Cell::new(20, 12), 5, 9);
        g.set_rect(Cell::new(9, 28), 12, 4);
        for &(gw, gh) in &[(1, 1), (2, 5), (5, 2), (7, 7), (32, 1), (1, 32)] {
            let anchors = g.free_anchors(gw, gh);
            for y in 0..GRID_SIZE {
                assert_eq!(
                    g.row_anchors(y, gw, gh),
                    anchors[y],
                    "row {y} diverges for {gw}x{gh}"
                );
            }
        }
        assert_eq!(g.row_anchors(0, 0, 1), 0);
        assert_eq!(g.row_anchors(31, 1, 2), 0, "top-edge crossing row is empty");
    }

    #[test]
    fn nearest_anchor_prefers_start_then_ring_order() {
        let mut g = BitGrid::new();
        // Block the start cell; nearest free anchors ring around it.
        g.set_rect(Cell::new(10, 10), 1, 1);
        let anchors = g.free_anchors(1, 1);
        assert_eq!(
            nearest_anchor(&anchors, Cell::new(10, 10)),
            // radius 1, dy = -1 row first, lowest x in window [9, 11].
            Some(Cell::new(9, 9))
        );
        assert_eq!(
            nearest_anchor(&anchors, Cell::new(4, 4)),
            Some(Cell::new(4, 4))
        );
    }

    #[test]
    fn nearest_anchor_exhausted_grid_is_none() {
        let mut g = BitGrid::new();
        g.set_rect(Cell::new(0, 0), 32, 32);
        let anchors = g.free_anchors(1, 1);
        assert_eq!(nearest_anchor(&anchors, Cell::new(16, 16)), None);
        assert_eq!(anchors, [0; GRID_SIZE]);
    }
}

//! Incremental floorplan state: which block sits where, on the grid and in µm.

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Shape};

use crate::grid::{Canvas, Cell, GRID_SIZE};
use crate::rect::Rect;

/// Errors returned when a placement action cannot be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The block footprint would extend past the grid boundary.
    OutOfBounds,
    /// The block footprint would overlap an already placed block.
    Overlap,
    /// The block has already been placed in this floorplan.
    AlreadyPlaced,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::OutOfBounds => write!(f, "placement extends past the grid boundary"),
            PlaceError::Overlap => write!(f, "placement overlaps an existing block"),
            PlaceError::AlreadyPlaced => write!(f, "block is already placed"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A block that has been placed on the floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedBlock {
    /// The placed block.
    pub block: BlockId,
    /// Index of the chosen candidate shape (0–2).
    pub shape_index: usize,
    /// The chosen shape in µm.
    pub shape: Shape,
    /// Lower-left grid cell of the placement.
    pub cell: Cell,
    /// Footprint width in grid cells.
    pub grid_w: usize,
    /// Footprint height in grid cells.
    pub grid_h: usize,
    /// Real (non-quantized) rectangle occupied by the block, in µm, anchored
    /// at the lower-left corner of `cell`.
    pub rect: Rect,
}

/// The evolving floorplan of one episode: grid occupancy plus the real-valued
/// rectangles of every placed block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    canvas: Canvas,
    occupancy: Vec<bool>,
    placed: Vec<PlacedBlock>,
}

impl Floorplan {
    /// Creates an empty floorplan over the given canvas.
    pub fn new(canvas: Canvas) -> Self {
        Floorplan {
            canvas,
            occupancy: vec![false; GRID_SIZE * GRID_SIZE],
            placed: Vec::new(),
        }
    }

    /// The underlying canvas.
    pub fn canvas(&self) -> &Canvas {
        &self.canvas
    }

    /// The blocks placed so far, in placement order.
    pub fn placed(&self) -> &[PlacedBlock] {
        &self.placed
    }

    /// Number of placed blocks.
    pub fn num_placed(&self) -> usize {
        self.placed.len()
    }

    /// Returns `true` if the given block has been placed.
    pub fn is_placed(&self, block: BlockId) -> bool {
        self.placed.iter().any(|p| p.block == block)
    }

    /// The placement record of a block, if placed.
    pub fn find(&self, block: BlockId) -> Option<&PlacedBlock> {
        self.placed.iter().find(|p| p.block == block)
    }

    /// Raw grid occupancy (row-major, `GRID_SIZE × GRID_SIZE`).
    pub fn occupancy(&self) -> &[bool] {
        &self.occupancy
    }

    /// Returns `true` if the cell is inside the grid and not occupied.
    pub fn is_free(&self, cell: Cell) -> bool {
        cell.x < GRID_SIZE && cell.y < GRID_SIZE && !self.occupancy[cell.index()]
    }

    /// The grid footprint of a shape on this floorplan's canvas.
    pub fn grid_footprint(&self, shape: &Shape) -> (usize, usize) {
        self.canvas.shape_to_cells(shape)
    }

    /// Returns `true` if a footprint of `grid_w × grid_h` cells anchored at
    /// `cell` stays on the grid and does not overlap occupied cells.
    pub fn fits(&self, cell: Cell, grid_w: usize, grid_h: usize) -> bool {
        if cell.x + grid_w > GRID_SIZE || cell.y + grid_h > GRID_SIZE {
            return false;
        }
        for dy in 0..grid_h {
            for dx in 0..grid_w {
                if self.occupancy[(cell.y + dy) * GRID_SIZE + cell.x + dx] {
                    return false;
                }
            }
        }
        true
    }

    /// Places a block with the given shape at the given lower-left cell.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] if the block is already placed, the footprint
    /// leaves the grid, or it overlaps an existing block.
    pub fn place(
        &mut self,
        block: BlockId,
        shape_index: usize,
        shape: Shape,
        cell: Cell,
    ) -> Result<(), PlaceError> {
        if self.is_placed(block) {
            return Err(PlaceError::AlreadyPlaced);
        }
        let (grid_w, grid_h) = self.grid_footprint(&shape);
        if cell.x + grid_w > GRID_SIZE || cell.y + grid_h > GRID_SIZE {
            return Err(PlaceError::OutOfBounds);
        }
        if !self.fits(cell, grid_w, grid_h) {
            return Err(PlaceError::Overlap);
        }
        for dy in 0..grid_h {
            for dx in 0..grid_w {
                self.occupancy[(cell.y + dy) * GRID_SIZE + cell.x + dx] = true;
            }
        }
        let (x_um, y_um) = self.canvas.cell_to_um(cell);
        self.placed.push(PlacedBlock {
            block,
            shape_index,
            shape,
            cell,
            grid_w,
            grid_h,
            rect: Rect::from_origin_size(x_um, y_um, shape.width_um, shape.height_um),
        });
        Ok(())
    }

    /// Removes the most recently placed block and returns its record.
    /// Used by mask construction to evaluate hypothetical placements cheaply.
    pub fn unplace_last(&mut self) -> Option<PlacedBlock> {
        let last = self.placed.pop()?;
        for dy in 0..last.grid_h {
            for dx in 0..last.grid_w {
                self.occupancy[(last.cell.y + dy) * GRID_SIZE + last.cell.x + dx] = false;
            }
        }
        Some(last)
    }

    /// Clears all placements and rebinds the canvas, reusing the occupancy
    /// and placed-block buffers — the allocation-free alternative to
    /// [`Floorplan::new`] for evaluation loops that realize thousands of
    /// candidate floorplans.
    pub fn reset(&mut self, canvas: Canvas) {
        self.canvas = canvas;
        self.occupancy.iter_mut().for_each(|c| *c = false);
        self.placed.clear();
    }

    /// Bounding box (µm) of all placed blocks, or `None` if nothing is placed.
    pub fn bounding_box(&self) -> Option<Rect> {
        Rect::bounding_box(self.placed.iter().map(|p| &p.rect))
    }

    /// Sum of the placed blocks' real areas in µm².
    pub fn placed_area_um2(&self) -> f64 {
        self.placed.iter().map(|p| p.rect.area()).sum()
    }

    /// Centre (µm) of a placed block, if placed.
    pub fn block_center(&self, block: BlockId) -> Option<(f64, f64)> {
        self.find(block).map(|p| p.rect.center())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> Canvas {
        Canvas::new(32.0, 32.0) // 1 µm per cell for easy arithmetic
    }

    #[test]
    fn place_and_query() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(3.0, 2.0), Cell::new(1, 1))
            .unwrap();
        assert!(fp.is_placed(BlockId(0)));
        assert_eq!(fp.num_placed(), 1);
        let p = fp.find(BlockId(0)).unwrap();
        assert_eq!((p.grid_w, p.grid_h), (3, 2));
        assert_eq!(p.rect, Rect::from_origin_size(1.0, 1.0, 3.0, 2.0));
        assert_eq!(fp.block_center(BlockId(0)), Some((2.5, 2.0)));
    }

    #[test]
    fn double_placement_rejected() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(2.0, 2.0), Cell::new(0, 0))
            .unwrap();
        let err = fp.place(BlockId(0), 1, Shape::new(2.0, 2.0), Cell::new(5, 5));
        assert_eq!(err, Err(PlaceError::AlreadyPlaced));
    }

    #[test]
    fn overlap_rejected_and_state_unchanged() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0))
            .unwrap();
        let before = fp.clone();
        let err = fp.place(BlockId(1), 0, Shape::new(2.0, 2.0), Cell::new(3, 3));
        assert_eq!(err, Err(PlaceError::Overlap));
        assert_eq!(fp, before);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut fp = Floorplan::new(canvas());
        let err = fp.place(BlockId(0), 0, Shape::new(5.0, 5.0), Cell::new(30, 0));
        assert_eq!(err, Err(PlaceError::OutOfBounds));
    }

    #[test]
    fn unplace_restores_occupancy() {
        let mut fp = Floorplan::new(canvas());
        let empty = fp.clone();
        fp.place(BlockId(0), 0, Shape::new(3.0, 3.0), Cell::new(2, 2))
            .unwrap();
        let removed = fp.unplace_last().unwrap();
        assert_eq!(removed.block, BlockId(0));
        assert_eq!(fp, empty);
        assert!(fp.unplace_last().is_none());
    }

    #[test]
    fn bounding_box_covers_all_blocks() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(2.0, 2.0), Cell::new(0, 0))
            .unwrap();
        fp.place(BlockId(1), 0, Shape::new(2.0, 2.0), Cell::new(10, 10))
            .unwrap();
        let bb = fp.bounding_box().unwrap();
        assert_eq!(bb, Rect::from_corners(0.0, 0.0, 12.0, 12.0));
        assert_eq!(fp.placed_area_um2(), 8.0);
    }

    #[test]
    fn touching_blocks_are_allowed() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0))
            .unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(4, 0))
            .unwrap();
        assert_eq!(fp.num_placed(), 2);
    }
}

//! Incremental floorplan state: which block sits where, on the grid and in µm.

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Shape};

use crate::bitgrid::{BitGrid, OccupyError};
use crate::grid::{Canvas, Cell, GRID_SIZE};
use crate::rect::Rect;

/// Errors returned when a placement action cannot be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceError {
    /// The block footprint would extend past the grid boundary.
    OutOfBounds,
    /// The block footprint would overlap an already placed block.
    Overlap,
    /// The block has already been placed in this floorplan.
    AlreadyPlaced,
}

impl From<OccupyError> for PlaceError {
    fn from(e: OccupyError) -> Self {
        match e {
            OccupyError::OutOfBounds => PlaceError::OutOfBounds,
            OccupyError::Overlap => PlaceError::Overlap,
        }
    }
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::OutOfBounds => write!(f, "placement extends past the grid boundary"),
            PlaceError::Overlap => write!(f, "placement overlaps an existing block"),
            PlaceError::AlreadyPlaced => write!(f, "block is already placed"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A block that has been placed on the floorplan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedBlock {
    /// The placed block.
    pub block: BlockId,
    /// Index of the chosen candidate shape (0–2).
    pub shape_index: usize,
    /// The chosen shape in µm.
    pub shape: Shape,
    /// Lower-left grid cell of the placement.
    pub cell: Cell,
    /// Footprint width in grid cells.
    pub grid_w: usize,
    /// Footprint height in grid cells.
    pub grid_h: usize,
    /// Real (non-quantized) rectangle occupied by the block, in µm, anchored
    /// at the lower-left corner of `cell`.
    pub rect: Rect,
}

/// Sentinel in the block → placement-slot index meaning "not placed".
const UNPLACED: u32 = u32::MAX;

/// The evolving floorplan of one episode: grid occupancy plus the real-valued
/// rectangles of every placed block.
///
/// Occupancy is a [`BitGrid`] (`u64` row words), so footprint probes,
/// placement and the free-anchor maps behind the snap search and the RL
/// positional masks are word-level bit operations. The grid defaults to the
/// paper's `GRID_SIZE × GRID_SIZE` discretization; [`Floorplan::with_grid_side`]
/// instantiates a finer grid over the same canvas for large-n workloads.
/// Per-block lookup ([`Floorplan::is_placed`], [`Floorplan::find`]) is O(1)
/// through a block-index → placement-slot table instead of a linear scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Floorplan {
    canvas: Canvas,
    /// Cell dimensions of `canvas`, cached so the placement hot path does
    /// not re-divide per block (bit-identical: same operands, one division).
    cell_w_um: f64,
    cell_h_um: f64,
    grid: BitGrid,
    placed: Vec<PlacedBlock>,
    /// `slot[block.index()]` is the index into `placed`, or [`UNPLACED`].
    /// Grown on demand; trailing entries may be missing for never-seen ids.
    /// Fully derivable from `placed` (and ignored by `PartialEq`); when the
    /// vendored serde stub is swapped for the real crate, this field should
    /// be skipped on serialize and rebuilt from `placed` on deserialize —
    /// the stub derive cannot express `#[serde(skip)]`.
    slot: Vec<u32>,
}

/// Equality ignores the capacity/length of the lazily grown slot table — two
/// floorplans are equal iff canvas, occupancy and placement history agree.
impl PartialEq for Floorplan {
    fn eq(&self, other: &Self) -> bool {
        self.canvas == other.canvas && self.grid == other.grid && self.placed == other.placed
    }
}

impl Floorplan {
    /// Creates an empty floorplan over the given canvas, on the paper's
    /// default `GRID_SIZE × GRID_SIZE` grid.
    pub fn new(canvas: Canvas) -> Self {
        Floorplan {
            canvas,
            cell_w_um: canvas.cell_width_um(),
            cell_h_um: canvas.cell_height_um(),
            grid: BitGrid::new(),
            placed: Vec::new(),
            slot: Vec::new(),
        }
    }

    /// Creates an empty floorplan over the given canvas on a `side × side`
    /// grid. At `side == GRID_SIZE` this is bit-identical to
    /// [`Floorplan::new`] (same cell-size division, same footprint ceiling);
    /// larger sides keep per-cell resolution sane for circuits whose block
    /// count would otherwise saturate the 32×32 discretization.
    pub fn with_grid_side(canvas: Canvas, side: usize) -> Self {
        Floorplan {
            canvas,
            cell_w_um: canvas.width_um / side as f64,
            cell_h_um: canvas.height_um / side as f64,
            grid: BitGrid::with_size(side, side),
            placed: Vec::new(),
            slot: Vec::new(),
        }
    }

    /// Cells per grid side for this floorplan (`GRID_SIZE` by default).
    pub fn grid_side(&self) -> usize {
        self.grid.width()
    }

    /// The underlying canvas.
    pub fn canvas(&self) -> &Canvas {
        &self.canvas
    }

    /// The blocks placed so far, in placement order.
    pub fn placed(&self) -> &[PlacedBlock] {
        &self.placed
    }

    /// Number of placed blocks.
    pub fn num_placed(&self) -> usize {
        self.placed.len()
    }

    /// Returns `true` if the given block has been placed. O(1).
    pub fn is_placed(&self, block: BlockId) -> bool {
        self.slot
            .get(block.index())
            .is_some_and(|&s| s != UNPLACED)
    }

    /// The placement record of a block, if placed. O(1).
    pub fn find(&self, block: BlockId) -> Option<&PlacedBlock> {
        match self.slot.get(block.index()) {
            Some(&s) if s != UNPLACED => self.placed.get(s as usize),
            _ => None,
        }
    }

    /// The occupancy bitboard: `u64` row words, bottom row first.
    pub fn grid(&self) -> &BitGrid {
        &self.grid
    }

    /// Row-major iterator over the `side × side` occupancy cells — the
    /// stable scalar view for serialization and feature maps.
    pub fn occupancy_cells(&self) -> impl Iterator<Item = bool> + '_ {
        let grid = &self.grid;
        (0..grid.height())
            .flat_map(move |y| (0..grid.width()).map(move |x| grid.get(Cell::new(x, y))))
    }

    /// Returns `true` if the cell is inside the grid and not occupied.
    pub fn is_free(&self, cell: Cell) -> bool {
        cell.x < self.grid.width() && cell.y < self.grid.height() && !self.grid.get(cell)
    }

    /// The grid footprint of a shape on this floorplan's canvas, using the
    /// paper's ceiling mapping at this floorplan's grid side (identical to
    /// [`Canvas::shape_to_cells`] on the default grid).
    pub fn grid_footprint(&self, shape: &Shape) -> (usize, usize) {
        let side = self.grid.width();
        if side == GRID_SIZE {
            return self.canvas.shape_to_cells(shape);
        }
        let wg = (shape.width_um * side as f64 / self.canvas.width_um).ceil() as usize;
        let hg = (shape.height_um * self.grid.height() as f64 / self.canvas.height_um).ceil() as usize;
        (wg.clamp(1, side), hg.clamp(1, self.grid.height()))
    }

    /// Returns `true` if a footprint of `grid_w × grid_h` cells anchored at
    /// `cell` stays on the grid and does not overlap occupied cells.
    pub fn fits(&self, cell: Cell, grid_w: usize, grid_h: usize) -> bool {
        self.grid.fits(cell, grid_w, grid_h)
    }

    /// Places a block with the given shape at the given lower-left cell.
    ///
    /// Bounds, overlap and the occupancy update share a single pass over the
    /// footprint's row masks ([`BitGrid::try_occupy`]).
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError`] if the block is already placed, the footprint
    /// leaves the grid, or it overlaps an existing block.
    pub fn place(
        &mut self,
        block: BlockId,
        shape_index: usize,
        shape: Shape,
        cell: Cell,
    ) -> Result<(), PlaceError> {
        let (grid_w, grid_h) = self.grid_footprint(&shape);
        self.place_prefit(block, shape_index, shape, cell, grid_w, grid_h)
    }

    /// [`Floorplan::place`] with the grid footprint already computed by the
    /// caller — the replay path of the incremental realization engine, which
    /// caches footprints and must not re-derive them (two divides + ceils per
    /// block). `grid_w`/`grid_h` must equal `self.grid_footprint(&shape)`.
    pub(crate) fn place_prefit(
        &mut self,
        block: BlockId,
        shape_index: usize,
        shape: Shape,
        cell: Cell,
        grid_w: usize,
        grid_h: usize,
    ) -> Result<(), PlaceError> {
        debug_assert_eq!((grid_w, grid_h), self.grid_footprint(&shape));
        if self.is_placed(block) {
            return Err(PlaceError::AlreadyPlaced);
        }
        self.grid.try_occupy(cell, grid_w, grid_h)?;
        if block.index() >= self.slot.len() {
            self.slot.resize(block.index() + 1, UNPLACED);
        }
        self.slot[block.index()] = self.placed.len() as u32;
        let (x_um, y_um) = (cell.x as f64 * self.cell_w_um, cell.y as f64 * self.cell_h_um);
        self.placed.push(PlacedBlock {
            block,
            shape_index,
            shape,
            cell,
            grid_w,
            grid_h,
            rect: Rect::from_origin_size(x_um, y_um, shape.width_um, shape.height_um),
        });
        Ok(())
    }

    /// Removes the most recently placed block and returns its record.
    /// Used by mask construction to evaluate hypothetical placements cheaply.
    pub fn unplace_last(&mut self) -> Option<PlacedBlock> {
        let last = self.placed.pop()?;
        self.grid.clear_rect(last.cell, last.grid_w, last.grid_h);
        self.slot[last.block.index()] = UNPLACED;
        Some(last)
    }

    /// Truncates the placement history to its first `keep` entries — the
    /// bulk counterpart of repeated [`Floorplan::unplace_last`] calls. When
    /// the dropped suffix outnumbers the kept prefix, the occupancy is
    /// rebuilt from the prefix instead of AND-NOTing every dropped footprint.
    pub fn truncate_placed(&mut self, keep: usize) {
        if keep >= self.placed.len() {
            return;
        }
        let dropped = self.placed.len() - keep;
        if dropped <= keep {
            for _ in 0..dropped {
                self.unplace_last();
            }
            return;
        }
        for p in &self.placed[keep..] {
            self.slot[p.block.index()] = UNPLACED;
        }
        self.placed.truncate(keep);
        self.grid.clear();
        for p in &self.placed {
            self.grid.set_rect(p.cell, p.grid_w, p.grid_h);
        }
    }

    /// Clears all placements and rebinds the canvas, reusing the placed-block
    /// and slot buffers — the allocation-free alternative to
    /// [`Floorplan::new`] for evaluation loops that realize thousands of
    /// candidate floorplans.
    pub fn reset(&mut self, canvas: Canvas) {
        self.canvas = canvas;
        self.cell_w_um = canvas.cell_width_um();
        self.cell_h_um = canvas.cell_height_um();
        self.grid.clear();
        self.placed.clear();
        self.slot.iter_mut().for_each(|s| *s = UNPLACED);
    }

    /// Bounding box (µm) of all placed blocks, or `None` if nothing is placed.
    pub fn bounding_box(&self) -> Option<Rect> {
        Rect::bounding_box(self.placed.iter().map(|p| &p.rect))
    }

    /// Sum of the placed blocks' real areas in µm².
    pub fn placed_area_um2(&self) -> f64 {
        self.placed.iter().map(|p| p.rect.area()).sum()
    }

    /// Centre (µm) of a placed block, if placed.
    pub fn block_center(&self, block: BlockId) -> Option<(f64, f64)> {
        self.find(block).map(|p| p.rect.center())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canvas() -> Canvas {
        Canvas::new(32.0, 32.0) // 1 µm per cell for easy arithmetic
    }

    #[test]
    fn place_and_query() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(3.0, 2.0), Cell::new(1, 1))
            .unwrap();
        assert!(fp.is_placed(BlockId(0)));
        assert_eq!(fp.num_placed(), 1);
        let p = fp.find(BlockId(0)).unwrap();
        assert_eq!((p.grid_w, p.grid_h), (3, 2));
        assert_eq!(p.rect, Rect::from_origin_size(1.0, 1.0, 3.0, 2.0));
        assert_eq!(fp.block_center(BlockId(0)), Some((2.5, 2.0)));
    }

    #[test]
    fn double_placement_rejected() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(2.0, 2.0), Cell::new(0, 0))
            .unwrap();
        let err = fp.place(BlockId(0), 1, Shape::new(2.0, 2.0), Cell::new(5, 5));
        assert_eq!(err, Err(PlaceError::AlreadyPlaced));
    }

    #[test]
    fn overlap_rejected_and_state_unchanged() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0))
            .unwrap();
        let before = fp.clone();
        let err = fp.place(BlockId(1), 0, Shape::new(2.0, 2.0), Cell::new(3, 3));
        assert_eq!(err, Err(PlaceError::Overlap));
        assert_eq!(fp, before);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut fp = Floorplan::new(canvas());
        let err = fp.place(BlockId(0), 0, Shape::new(5.0, 5.0), Cell::new(30, 0));
        assert_eq!(err, Err(PlaceError::OutOfBounds));
    }

    #[test]
    fn unplace_restores_occupancy() {
        let mut fp = Floorplan::new(canvas());
        let empty = fp.clone();
        fp.place(BlockId(0), 0, Shape::new(3.0, 3.0), Cell::new(2, 2))
            .unwrap();
        let removed = fp.unplace_last().unwrap();
        assert_eq!(removed.block, BlockId(0));
        assert_eq!(fp, empty);
        assert!(!fp.is_placed(BlockId(0)));
        assert!(fp.unplace_last().is_none());
    }

    #[test]
    fn find_is_correct_after_unplace_of_other_block() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(3), 0, Shape::new(2.0, 2.0), Cell::new(0, 0))
            .unwrap();
        fp.place(BlockId(1), 0, Shape::new(2.0, 2.0), Cell::new(10, 10))
            .unwrap();
        fp.unplace_last();
        assert!(fp.is_placed(BlockId(3)));
        assert!(!fp.is_placed(BlockId(1)));
        assert_eq!(fp.find(BlockId(3)).unwrap().cell, Cell::new(0, 0));
    }

    #[test]
    fn reset_clears_slots_and_grid() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(5), 0, Shape::new(4.0, 4.0), Cell::new(8, 8))
            .unwrap();
        fp.reset(canvas());
        assert_eq!(fp.num_placed(), 0);
        assert!(!fp.is_placed(BlockId(5)));
        assert_eq!(fp.grid().count_occupied(), 0);
        assert_eq!(fp, Floorplan::new(canvas()));
    }

    #[test]
    fn occupancy_cells_match_grid() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(2.0, 1.0), Cell::new(3, 4))
            .unwrap();
        let cells: Vec<bool> = fp.occupancy_cells().collect();
        assert_eq!(cells.len(), GRID_SIZE * GRID_SIZE);
        assert_eq!(cells.iter().filter(|&&c| c).count(), 2);
        assert!(cells[4 * GRID_SIZE + 3]);
        assert!(cells[4 * GRID_SIZE + 4]);
    }

    #[test]
    fn bounding_box_covers_all_blocks() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(2.0, 2.0), Cell::new(0, 0))
            .unwrap();
        fp.place(BlockId(1), 0, Shape::new(2.0, 2.0), Cell::new(10, 10))
            .unwrap();
        let bb = fp.bounding_box().unwrap();
        assert_eq!(bb, Rect::from_corners(0.0, 0.0, 12.0, 12.0));
        assert_eq!(fp.placed_area_um2(), 8.0);
    }

    #[test]
    fn touching_blocks_are_allowed() {
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0))
            .unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(4, 0))
            .unwrap();
        assert_eq!(fp.num_placed(), 2);
    }
}

//! Grid-based observation masks for the RL agent.
//!
//! The agent's state (paper §IV-A, §IV-D2) combines the R-GCN embeddings with
//! six 32×32 feature maps:
//!
//! * `f_g` — the binary grid view of the partial placement,
//! * `f_w` — the wire mask: normalized HPWL increase for placing the current
//!   block at each cell (after MaskPlace \[4\]),
//! * `f_ds` — the dead-space mask: normalized increase in empty space
//!   (the paper's extension over \[4\]),
//! * `f_p` — three positional masks, one per candidate shape, marking the
//!   cells where the block fits without overlap and keeps its constraints
//!   satisfiable; these also drive invalid-action masking.

use afp_circuit::{BlockId, Circuit, Shape, ShapeSet, SHAPES_PER_BLOCK};

use crate::constraints::constraint_mask;
use crate::grid::{Cell, GRID_SIZE};
use crate::metrics::{dead_space, hpwl};
use crate::placement::Floorplan;

/// A row-major `GRID_SIZE × GRID_SIZE` feature map.
pub type Mask = Vec<f32>;

/// Number of feature maps fed to the CNN state feature extractor
/// (`f_g`, `f_w`, `f_ds` and the three positional masks).
pub const STATE_CHANNELS: usize = 3 + SHAPES_PER_BLOCK;

/// The binary grid view `f_g`: 1 where a cell is occupied.
pub fn grid_view(floorplan: &Floorplan) -> Mask {
    floorplan
        .occupancy_cells()
        .map(|o| if o { 1.0 } else { 0.0 })
        .collect()
}

/// The positional mask for one candidate shape: 1 where the footprint fits
/// without overlap *and* the constraint mask allows it.
///
/// The fit side comes from one
/// [`BitGrid::free_anchors`](crate::bitgrid::BitGrid::free_anchors) pass —
/// a run-of-`gw` shift-AND over 32 row words instead of 1024 per-cell
/// footprint probes — and only the set anchor bits are checked against the
/// constraint mask.
pub fn positional_mask(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    shape: &Shape,
) -> Mask {
    let (gw, gh) = floorplan.grid_footprint(shape);
    let constraints = constraint_mask(circuit, floorplan, block, gw, gh);
    anchors_into_mask(floorplan, gw, gh, &constraints)
}

/// ANDs the free-anchor bitmask of a `gw × gh` footprint with a constraint
/// mask, producing the positional mask.
fn anchors_into_mask(
    floorplan: &Floorplan,
    gw: usize,
    gh: usize,
    constraints: &[f32],
) -> Mask {
    let anchors = floorplan.grid().free_anchors(gw, gh);
    let mut mask = vec![0.0f32; GRID_SIZE * GRID_SIZE];
    for y in 0..anchors.height() {
        for x in anchors.iter_row(y) {
            let idx = y * GRID_SIZE + x;
            if constraints[idx] == 1.0 {
                mask[idx] = 1.0;
            }
        }
    }
    mask
}

/// The three positional masks `f_p`, one per candidate shape.
///
/// Candidate shapes that quantize to the same grid footprint produce
/// identical masks (the constraint mask depends only on the footprint), so
/// the anchor/constraint pass runs once per distinct footprint.
pub fn positional_masks(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    shapes: &ShapeSet,
) -> [Mask; SHAPES_PER_BLOCK] {
    let mut footprints = [(0usize, 0usize); SHAPES_PER_BLOCK];
    let mut masks: [Option<Mask>; SHAPES_PER_BLOCK] = Default::default();
    for k in 0..SHAPES_PER_BLOCK {
        footprints[k] = floorplan.grid_footprint(&shapes.shape(k));
        let duplicate_of = (0..k).find(|&j| footprints[j] == footprints[k]);
        masks[k] = Some(match duplicate_of {
            Some(j) => masks[j].clone().expect("earlier mask is built"),
            None => positional_mask(circuit, floorplan, block, &shapes.shape(k)),
        });
    }
    masks.map(|m| m.expect("all masks are built"))
}

/// The wire mask `f_w`: for every admissible cell, the increase in HPWL that
/// placing `block` (with `shape`) there would cause, normalized to `[0, 1]`.
/// Inadmissible cells are set to the maximum value `1.0`.
pub fn wire_mask(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    shape: &Shape,
) -> Mask {
    delta_mask(circuit, floorplan, block, shape, |c, f| hpwl(c, f))
}

/// The dead-space mask `f_ds`: normalized increase in floorplan dead space for
/// placing `block` at each cell; occupied / invalid cells are set to `1.0`
/// (paper §IV-D2).
pub fn dead_space_mask(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    shape: &Shape,
) -> Mask {
    delta_mask(circuit, floorplan, block, shape, |_, f| dead_space(f))
}

/// Shared implementation of the wire / dead-space masks: evaluates a metric
/// delta for every admissible anchor cell and min-max normalizes it.
fn delta_mask<F>(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    shape: &Shape,
    metric: F,
) -> Mask
where
    F: Fn(&Circuit, &Floorplan) -> f64,
{
    let (gw, gh) = floorplan.grid_footprint(shape);
    let baseline = metric(circuit, floorplan);
    let mut deltas = vec![f64::NAN; GRID_SIZE * GRID_SIZE];
    let mut scratch = floorplan.clone();
    let mut min_delta = f64::MAX;
    let mut max_delta = f64::MIN;
    // One anchor pass marks every admissible cell; the metric is evaluated
    // only on set bits instead of probing all 1024 footprints.
    let anchors = floorplan.grid().free_anchors(gw, gh);
    for y in 0..anchors.height() {
        for x in anchors.iter_row(y) {
            let cell = Cell::new(x, y);
            if scratch.place(block, 0, *shape, cell).is_err() {
                continue;
            }
            let delta = metric(circuit, &scratch) - baseline;
            scratch.unplace_last();
            deltas[y * GRID_SIZE + x] = delta;
            min_delta = min_delta.min(delta);
            max_delta = max_delta.max(delta);
        }
    }
    let span = (max_delta - min_delta).max(1e-12);
    deltas
        .into_iter()
        .map(|d| {
            if d.is_nan() {
                1.0
            } else if max_delta <= min_delta {
                0.0
            } else {
                ((d - min_delta) / span) as f32
            }
        })
        .collect()
}

/// Bundles the six feature maps of the agent state for the current block.
#[derive(Debug, Clone, PartialEq)]
pub struct StateMasks {
    /// Binary partial-placement grid `f_g`.
    pub grid: Mask,
    /// Wire mask `f_w`.
    pub wire: Mask,
    /// Dead-space mask `f_ds`.
    pub dead_space: Mask,
    /// Positional masks `f_p`, one per candidate shape.
    pub positional: [Mask; SHAPES_PER_BLOCK],
}

impl StateMasks {
    /// Builds all six masks for the block about to be placed. The wire and
    /// dead-space masks are computed with the most-square candidate shape,
    /// since they are shape-agnostic guidance signals.
    pub fn build(
        circuit: &Circuit,
        floorplan: &Floorplan,
        block: BlockId,
        shapes: &ShapeSet,
    ) -> Self {
        let reference_shape = shapes.shape(shapes.most_square());
        StateMasks {
            grid: grid_view(floorplan),
            wire: wire_mask(circuit, floorplan, block, &reference_shape),
            dead_space: dead_space_mask(circuit, floorplan, block, &reference_shape),
            positional: positional_masks(circuit, floorplan, block, shapes),
        }
    }

    /// Flattens the masks into a single `[STATE_CHANNELS, 32, 32]`-shaped
    /// buffer (channel-major) ready for the CNN feature extractor.
    pub fn to_tensor_data(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(STATE_CHANNELS * GRID_SIZE * GRID_SIZE);
        out.extend_from_slice(&self.grid);
        out.extend_from_slice(&self.wire);
        out.extend_from_slice(&self.dead_space);
        for p in &self.positional {
            out.extend_from_slice(p);
        }
        out
    }

    /// Returns `true` if no candidate shape has any admissible cell — the
    /// episode is stuck and must be terminated with the violation penalty.
    pub fn is_dead_end(&self) -> bool {
        self.positional
            .iter()
            .all(|m| m.iter().all(|&v| v == 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Canvas;
    use afp_circuit::{generators, BlockKind, NetClass};

    fn small_circuit() -> Circuit {
        Circuit::builder("m")
            .block("A", BlockKind::CurrentMirror, 64.0, 3)
            .block("B", BlockKind::DifferentialPair, 64.0, 4)
            .net("ab", &[("A", "d"), ("B", "s")], NetClass::Signal)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_view_tracks_occupancy() {
        let c = small_circuit();
        let canvas = Canvas::new(32.0, 32.0);
        let mut fp = Floorplan::new(canvas);
        assert_eq!(grid_view(&fp).iter().sum::<f32>(), 0.0);
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        assert_eq!(grid_view(&fp).iter().sum::<f32>(), 16.0);
        let _ = &c;
    }

    #[test]
    fn positional_mask_excludes_occupied_cells() {
        let c = small_circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(8.0, 8.0), Cell::new(0, 0)).unwrap();
        let mask = positional_mask(&c, &fp, BlockId(1), &Shape::new(4.0, 4.0));
        // Anchor inside the occupied region is invalid.
        assert_eq!(mask[0], 0.0);
        assert_eq!(mask[2 * GRID_SIZE + 2], 0.0);
        // Far corner is valid.
        assert_eq!(mask[20 * GRID_SIZE + 20], 1.0);
    }

    #[test]
    fn wire_mask_prefers_cells_near_connected_blocks() {
        let c = small_circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        let wm = wire_mask(&c, &fp, BlockId(1), &Shape::new(4.0, 4.0));
        // Placing right next to block A increases HPWL less than placing at
        // the opposite corner.
        let near = wm[0 * GRID_SIZE + 4];
        let far = wm[27 * GRID_SIZE + 27];
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn dead_space_mask_marks_occupied_cells_as_max() {
        let c = small_circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(6.0, 6.0), Cell::new(10, 10)).unwrap();
        let ds = dead_space_mask(&c, &fp, BlockId(1), &Shape::new(4.0, 4.0));
        assert_eq!(ds[12 * GRID_SIZE + 12], 1.0);
        // Adjacent placement keeps dead space low.
        let adjacent = ds[10 * GRID_SIZE + 16];
        assert!(adjacent < 0.5, "adjacent={adjacent}");
    }

    #[test]
    fn state_masks_shape_and_dead_end_detection() {
        let circuit = generators::ota5();
        let canvas = Canvas::for_circuit(&circuit);
        let fp = Floorplan::new(canvas);
        let order = circuit.blocks_by_decreasing_area();
        let shapes = afp_circuit::shapes::shape_sets(&circuit);
        let first = order[0];
        let sm = StateMasks::build(&circuit, &fp, first, &shapes[first.index()]);
        assert_eq!(sm.to_tensor_data().len(), STATE_CHANNELS * GRID_SIZE * GRID_SIZE);
        assert!(!sm.is_dead_end());
        assert!(sm.grid.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn masks_values_are_normalized() {
        let c = small_circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(5, 5)).unwrap();
        for mask in [
            wire_mask(&c, &fp, BlockId(1), &Shape::new(4.0, 4.0)),
            dead_space_mask(&c, &fp, BlockId(1), &Shape::new(4.0, 4.0)),
        ] {
            assert!(mask.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}

//! Floorplan quality metrics and the paper's reward functions.
//!
//! * HPWL — half-perimeter wirelength over all nets (paper Eq. 3),
//! * dead space — `1 − Σ Aᵢ / F_area` with `F_area` the floorplan bounding
//!   box area,
//! * intermediate reward — `r_t = −(Δ dead-space + Δ HPWL)` (paper Eq. 4),
//! * episode reward — the weighted sum of area, HPWL and fixed-outline error
//!   with the paper's weights α=1, β=5, γ=5 and the −50 constraint-violation
//!   penalty (paper Eq. 5, §IV-D4).

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Circuit};

use crate::constraints::{has_violations, is_violated};
use crate::placement::Floorplan;

/// Snapshot of the quality metrics of a (possibly partial) floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorplanMetrics {
    /// Half-perimeter wirelength in µm, over nets with ≥ 2 placed blocks.
    pub hpwl_um: f64,
    /// Dead space fraction in `[0, 1)` of the current bounding box.
    pub dead_space: f64,
    /// Bounding-box area in µm².
    pub area_um2: f64,
    /// Bounding-box aspect ratio (width / height); 1.0 when empty.
    pub aspect_ratio: f64,
}

impl FloorplanMetrics {
    /// Metrics of an empty floorplan.
    pub fn empty() -> Self {
        FloorplanMetrics {
            hpwl_um: 0.0,
            dead_space: 0.0,
            area_um2: 0.0,
            aspect_ratio: 1.0,
        }
    }
}

/// Reusable per-block center cache for the HPWL sweeps, plus the per-term
/// state of the incremental metrics engine.
///
/// `Floorplan::block_center` is a linear scan over the placed list, and
/// `Net::blocks()` allocates a deduplicated vector — per pin, per net, per
/// evaluation. The scratch turns one HPWL evaluation into a single pass over
/// the placed blocks followed by direct center lookups per pin, which is what
/// lets the metaheuristics' cost function skip the unplaced-pin rescans.
///
/// # Incremental terms
///
/// On top of the center cache, the scratch can keep the per-net HPWL terms
/// and per-constraint violation flags of the floorplan it last evaluated.
/// [`metrics_incremental`] / [`episode_reward_incremental`] then recompute
/// only the terms incident to a dirty block set (typically the one
/// [`RealizeCache::dirty_blocks`] exposes) and re-reduce the cached terms in
/// the same order the full rescan uses — so the results are bit-identical to
/// [`metrics_with`] / [`episode_reward_with`] while touching O(dirty) nets
/// and constraints instead of all of them.
///
/// The incremental state is keyed to **one circuit**: the block → net /
/// constraint adjacency is fingerprinted by the circuit's block / net /
/// constraint counts, and any full center fill (a plain [`hpwl_with`] or
/// [`metrics_with`] call) drops the term state. One full-path entry does
/// **not** reliably fill: [`episode_reward_with`] returns its penalty before
/// touching the scratch — callers interleaving it with incremental
/// evaluations must call [`MetricsScratch::invalidate_terms`] after it (as
/// the metaheuristics' `CostCache` does). Reusing one scratch across
/// circuits that share all three counts but differ in connectivity is the
/// one misuse the fingerprint cannot catch — own one scratch per problem.
///
/// [`RealizeCache::dirty_blocks`]: crate::RealizeCache::dirty_blocks
#[derive(Debug, Clone, Default)]
pub struct MetricsScratch {
    /// `centers[b]` = center of block index `b`, or `None` while unplaced.
    centers: Vec<Option<(f64, f64)>>,
    /// Whether `centers` / `net_terms` / `constraint_violated` describe the
    /// floorplan of the previous incremental evaluation.
    inc_valid: bool,
    /// Cached half-perimeter per net (`None` = fewer than 2 placed pins).
    net_terms: Vec<Option<f64>>,
    /// CSR adjacency: `net_adj[net_adj_off[b]..net_adj_off[b + 1]]` are the
    /// net indices incident to block `b`.
    net_adj_off: Vec<u32>,
    net_adj: Vec<u32>,
    /// `block_con_mask[b]` = bitmask of constraint indices involving block
    /// `b`. Constraint and pending bookkeeping are [`DynMask`] bitsets — one
    /// inline `u64` word for every paper-scale circuit, spilled words past 64
    /// — so a penalized episode's bookkeeping is a handful of OR/AND-NOT ops
    /// at any circuit size.
    block_con_mask: Vec<DynMask>,
    /// Fingerprint the adjacency was built for: (blocks, nets, constraints).
    adj_key: Option<(usize, usize, usize)>,
    /// Nets whose cached term is stale (a pin's center changed since it was
    /// last computed). Recomputation is deferred until something reads the
    /// HPWL — penalized episodes never do, mirroring the full path's
    /// short-circuit — so the list accumulates across penalized episodes.
    net_stale: Vec<bool>,
    stale_nets: Vec<u32>,
    /// Cached violation flags, one bit per constraint; a bit is only
    /// meaningful while its `con_stale_mask` bit is clear.
    violated_mask: DynMask,
    /// Constraints whose cached flag is stale (a member was reported dirty).
    /// Also lazy: the violation gate first looks for a standing violation
    /// among non-stale constraints (one mask op) and only then rechecks,
    /// early-outing on the first violation — the rest stay stale and
    /// accumulate, exactly like the net terms.
    con_stale_mask: DynMask,
    /// The constraint the gate last found violated. Rechecked first on the
    /// next flush: violations persist across episodes, so this usually
    /// answers the gate with a single predicate evaluation.
    last_violated: Option<u32>,
    /// Blocks reported dirty since the center/term state was last resolved
    /// against a floorplan (a superset of the truly moved blocks).
    /// Penalized episodes only OR bits in here — the floorplan is not even
    /// read for them — and [`MetricsScratch::resolve_pending`] settles the
    /// accumulation when a feasible episode needs the wirelength.
    pending_mask: DynMask,
    /// Swap buffer for [`MetricsScratch::resolve_pending`], kept zeroed so
    /// the walk never reallocates spilled words.
    pending_scratch: DynMask,
    /// Incremental evaluations that had to abandon the incremental engine
    /// and re-derive every term with the full rescan because the scratch
    /// could not represent the circuit. The historical `u64` bookkeeping
    /// silently fell back past 64 blocks/constraints; with `DynMask`
    /// bitsets no such representation limit exists, so this counter reads 0
    /// at every circuit size — it is retained as the observable tripwire
    /// that would expose any future capacity cliff.
    pub fallback_rescans: u64,
}

/// Growable bitset with one inline word: bits 0–63 live in `head` (no heap
/// traffic for every paper-scale circuit), higher bits spill to `tail` words.
/// `tail` never shrinks, so a warm scratch's mask ops stay allocation-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct DynMask {
    head: u64,
    tail: Vec<u64>,
}

impl DynMask {
    /// Zeroes every bit, keeping spilled capacity.
    fn clear(&mut self) {
        self.head = 0;
        self.tail.iter_mut().for_each(|w| *w = 0);
    }

    #[inline]
    fn word(&self, wi: usize) -> u64 {
        if wi == 0 {
            self.head
        } else {
            self.tail.get(wi - 1).copied().unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, wi: usize) -> &mut u64 {
        if wi == 0 {
            &mut self.head
        } else {
            if self.tail.len() < wi {
                self.tail.resize(wi, 0);
            }
            &mut self.tail[wi - 1]
        }
    }

    #[inline]
    fn set(&mut self, bit: usize) {
        *self.word_mut(bit / 64) |= 1u64 << (bit % 64);
    }

    #[inline]
    fn clear_bit(&mut self, bit: usize) {
        *self.word_mut(bit / 64) &= !(1u64 << (bit % 64));
    }

    #[inline]
    fn get(&self, bit: usize) -> bool {
        (self.word(bit / 64) >> (bit % 64)) & 1 == 1
    }

    fn count_ones(&self) -> usize {
        self.head.count_ones() as usize
            + self.tail.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    }

    /// The lowest set bit, or `None` when empty.
    fn first_set(&self) -> Option<usize> {
        if self.head != 0 {
            return Some(self.head.trailing_zeros() as usize);
        }
        self.tail
            .iter()
            .position(|&w| w != 0)
            .map(|i| (i + 1) * 64 + self.tail[i].trailing_zeros() as usize)
    }

    /// `self |= other`, growing the spill as needed.
    fn or_assign(&mut self, other: &DynMask) {
        self.head |= other.head;
        if self.tail.len() < other.tail.len() {
            self.tail.resize(other.tail.len(), 0);
        }
        for (t, &o) in self.tail.iter_mut().zip(&other.tail) {
            *t |= o;
        }
    }

    /// Whether any bit is set in `self` but not in `other` — the
    /// "standing violation among non-stale constraints" gate.
    fn any_and_not(&self, other: &DynMask) -> bool {
        if self.head & !other.head != 0 {
            return true;
        }
        self.tail
            .iter()
            .enumerate()
            .any(|(i, &w)| w & !other.tail.get(i).copied().unwrap_or(0) != 0)
    }
}

/// The dirty-block interface between the incremental realization engine and
/// the incremental metrics layer: which blocks may have moved, appeared or
/// disappeared since the floorplan the scratch last evaluated.
#[derive(Debug, Clone, Copy)]
pub enum DirtySet<'a> {
    /// Every placement may have changed — recompute every term. Also the
    /// right answer whenever no reliable dirty information exists.
    Full,
    /// Only these block indices may have changed. Must be a superset of the
    /// blocks whose placement differs; blocks whose center turns out
    /// unchanged are skipped cheaply.
    Blocks(&'a [u32]),
}

impl MetricsScratch {
    /// Creates an empty scratch; the buffer grows on first use.
    pub fn new() -> Self {
        MetricsScratch::default()
    }

    /// Drops the incremental term state, forcing the next incremental
    /// evaluation onto a full refresh.
    ///
    /// Callers that interleave incremental evaluations with evaluations that
    /// do **not** maintain the term state must call this after each of the
    /// latter. A full center fill drops the state automatically, but the
    /// full-rescan reward path ([`episode_reward_with`]) returns its penalty
    /// *before* any fill runs, so a penalized full-path evaluation would
    /// otherwise leave stale terms behind for the next incremental call.
    pub fn invalidate_terms(&mut self) {
        self.inc_valid = false;
    }

    /// Fills the center cache from the floorplan's placed list. Any full
    /// fill invalidates the incremental term state: the caller is evaluating
    /// an arbitrary floorplan, so the cached terms no longer describe it.
    fn fill(&mut self, circuit: &Circuit, floorplan: &Floorplan) {
        self.inc_valid = false;
        self.centers.clear();
        self.centers.resize(circuit.num_blocks(), None);
        for placed in floorplan.placed() {
            let index = placed.block.index();
            if index < self.centers.len() {
                self.centers[index] = Some(placed.rect.center());
            }
        }
    }

    /// (Re)builds the block → net / constraint adjacency when the circuit
    /// shape changed; returns `true` if the term state was dropped. The
    /// [`DynMask`] bookkeeping grows with the constraint count, so any
    /// circuit size is representable.
    fn ensure_adjacency(&mut self, circuit: &Circuit) -> bool {
        let key = (
            circuit.num_blocks(),
            circuit.num_nets(),
            circuit.constraints.len(),
        );
        if self.adj_key == Some(key) {
            return false;
        }
        let (nb, nn, _nc) = key;
        let mut net_lists: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (ni, net) in circuit.nets.iter().enumerate() {
            for block in net.blocks() {
                if block.index() < nb {
                    net_lists[block.index()].push(ni as u32);
                }
            }
        }
        self.net_adj_off.clear();
        self.net_adj.clear();
        self.net_adj_off.push(0);
        for list in net_lists {
            self.net_adj.extend_from_slice(&list);
            self.net_adj_off.push(self.net_adj.len() as u32);
        }
        self.block_con_mask.clear();
        self.block_con_mask.resize(nb, DynMask::default());
        for (ci, constraint) in circuit.constraints.iter().enumerate() {
            for block in constraint.members() {
                if block.index() < nb {
                    self.block_con_mask[block.index()].set(ci);
                }
            }
        }
        self.net_stale.clear();
        self.net_stale.resize(nn, false);
        self.stale_nets.clear();
        self.violated_mask.clear();
        self.con_stale_mask.clear();
        self.last_violated = None;
        self.pending_mask.clear();
        self.adj_key = Some(key);
        self.inc_valid = false;
        true
    }

    /// Recomputes every term from scratch — the cold start (and the
    /// [`DirtySet::Full`] path) of the incremental engine.
    fn refresh_all_terms(&mut self, circuit: &Circuit, floorplan: &Floorplan) {
        self.fill(circuit, floorplan);
        self.net_terms.clear();
        self.net_terms.reserve(circuit.num_nets());
        for net in &circuit.nets {
            self.net_terms
                .push(net_bbox_halfperimeter(net, &self.centers));
        }
        for k in 0..self.stale_nets.len() {
            self.net_stale[self.stale_nets[k] as usize] = false;
        }
        self.stale_nets.clear();
        self.violated_mask.clear();
        for (ci, constraint) in circuit.constraints.iter().enumerate() {
            if is_violated(floorplan, constraint) {
                self.violated_mask.set(ci);
            }
        }
        self.con_stale_mask.clear();
        self.pending_mask.clear();
        self.inc_valid = true;
    }

    /// Notes a dirty block set: a few mask ORs per block — the floorplan is
    /// not read. Blocks join the pending accumulation (resolved by
    /// [`MetricsScratch::resolve_pending`] when HPWL is next needed) and
    /// their incident constraints go stale immediately, since the violation
    /// gate is consulted on every evaluation.
    fn note_dirty(&mut self, dirty: &[u32]) {
        let nb = self.block_con_mask.len();
        for &b in dirty {
            let bi = b as usize;
            if bi >= nb {
                continue;
            }
            self.pending_mask.set(bi);
            self.con_stale_mask.or_assign(&self.block_con_mask[bi]);
        }
    }

    /// Settles the pending dirty accumulation against the current floorplan:
    /// refreshes the placement records of blocks that actually changed and
    /// marks their incident nets stale for [`MetricsScratch::flush_stale_terms`].
    fn resolve_pending(&mut self, floorplan: &Floorplan) {
        // Walk through the zeroed swap buffer so the pending mask's spilled
        // words are retained (the walk leaves the buffer zero again).
        std::mem::swap(&mut self.pending_mask, &mut self.pending_scratch);
        while let Some(bi) = self.pending_scratch.first_set() {
            self.pending_scratch.clear_bit(bi);
            let center = floorplan.block_center(BlockId(bi));
            if center == self.centers[bi] {
                // Same center as when the terms were last resolved (or
                // unplaced throughout): no net term can have changed.
                continue;
            }
            self.centers[bi] = center;
            for k in self.net_adj_off[bi]..self.net_adj_off[bi + 1] {
                let ni = self.net_adj[k as usize];
                if !std::mem::replace(&mut self.net_stale[ni as usize], true) {
                    self.stale_nets.push(ni);
                }
            }
        }
    }

    /// Recomputes the accumulated stale net terms from the current centers.
    /// Deferred from [`MetricsScratch::apply_dirty`] so evaluations that end
    /// in the violation penalty never pay for HPWL terms they do not read.
    fn flush_stale_terms(&mut self, circuit: &Circuit) {
        for k in 0..self.stale_nets.len() {
            let ni = self.stale_nets[k] as usize;
            self.net_terms[ni] = net_bbox_halfperimeter(&circuit.nets[ni], &self.centers);
            self.net_stale[ni] = false;
        }
        self.stale_nets.clear();
    }

    /// Re-evaluates constraint `ci` against the floorplan, updating the
    /// masks; returns whether it is violated.
    fn recheck_constraint(&mut self, circuit: &Circuit, floorplan: &Floorplan, ci: u32) -> bool {
        let constraint = circuit
            .constraints
            .get(ci as usize)
            .expect("constraint index from adjacency mask");
        let violated = is_violated(floorplan, constraint);
        self.con_stale_mask.clear_bit(ci as usize);
        if violated {
            self.violated_mask.set(ci as usize);
            self.last_violated = Some(ci);
        } else {
            self.violated_mask.clear_bit(ci as usize);
        }
        violated
    }

    /// Whether any constraint is violated, resolving as little staleness as
    /// possible: a standing violation among unmoved constraints answers with
    /// one mask op; otherwise stale constraints are re-evaluated one by one
    /// (most recent offender first), early-outing on the first violation —
    /// the remainder stay stale and accumulate, exactly like the net terms.
    fn any_violation(&mut self, circuit: &Circuit, floorplan: &Floorplan) -> bool {
        if self.violated_mask.any_and_not(&self.con_stale_mask) {
            return true;
        }
        if let Some(lv) = self.last_violated {
            if self.con_stale_mask.get(lv as usize)
                && self.recheck_constraint(circuit, floorplan, lv)
            {
                return true;
            }
        }
        while let Some(ci) = self.con_stale_mask.first_set() {
            if self.recheck_constraint(circuit, floorplan, ci as u32) {
                return true;
            }
        }
        false
    }

    /// Resolves *all* stale constraints, making the violation count exact.
    fn flush_stale_constraints(&mut self, circuit: &Circuit, floorplan: &Floorplan) {
        while let Some(ci) = self.con_stale_mask.first_set() {
            let _ = self.recheck_constraint(circuit, floorplan, ci as u32);
        }
    }
}

/// Half-perimeter bounding box of one net over cached centers. Duplicate pins
/// on one block are harmless: they collapse to the same point, so the bounding
/// box (and the `≥ 2` placed-pin gate) matches the deduplicated definition.
#[inline]
fn net_bbox_halfperimeter(net: &afp_circuit::Net, centers: &[Option<(f64, f64)>]) -> Option<f64> {
    let mut min_x = f64::MAX;
    let mut max_x = f64::MIN;
    let mut min_y = f64::MAX;
    let mut max_y = f64::MIN;
    let mut placed_pins = 0;
    for pin in &net.pins {
        let index = pin.block.index();
        if let Some(Some((cx, cy))) = centers.get(index) {
            min_x = min_x.min(*cx);
            max_x = max_x.max(*cx);
            min_y = min_y.min(*cy);
            max_y = max_y.max(*cy);
            placed_pins += 1;
        }
    }
    (placed_pins >= 2).then(|| (max_x - min_x) + (max_y - min_y))
}

/// Computes the half-perimeter wirelength (paper Eq. 3) of the placed part of
/// the floorplan. Nets with fewer than two placed blocks contribute nothing.
/// Each net counts once, unweighted, matching the paper's definition.
pub fn hpwl(circuit: &Circuit, floorplan: &Floorplan) -> f64 {
    hpwl_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`hpwl`] with a caller-held [`MetricsScratch`]; allocation-free once warm.
pub fn hpwl_with(circuit: &Circuit, floorplan: &Floorplan, scratch: &mut MetricsScratch) -> f64 {
    scratch.fill(circuit, floorplan);
    circuit
        .nets
        .iter()
        .filter_map(|net| net_bbox_halfperimeter(net, &scratch.centers))
        .sum()
}

/// Net-class-weighted HPWL, used by the metaheuristic baselines' cost
/// functions (critical nets count double, supplies half).
pub fn weighted_hpwl(circuit: &Circuit, floorplan: &Floorplan) -> f64 {
    weighted_hpwl_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`weighted_hpwl`] with a caller-held [`MetricsScratch`].
pub fn weighted_hpwl_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
) -> f64 {
    scratch.fill(circuit, floorplan);
    circuit
        .nets
        .iter()
        .filter_map(|net| {
            net_bbox_halfperimeter(net, &scratch.centers).map(|hp| net.weight() * hp)
        })
        .sum()
}

/// Dead space of the current floorplan: `1 − Σ placed area / bounding-box
/// area`. Returns `0.0` while nothing is placed.
pub fn dead_space(floorplan: &Floorplan) -> f64 {
    match floorplan.bounding_box() {
        Some(bb) if bb.area() > 0.0 => {
            (1.0 - floorplan.placed_area_um2() / bb.area()).clamp(0.0, 1.0)
        }
        _ => 0.0,
    }
}

/// Computes the full metric snapshot of a floorplan.
pub fn metrics(circuit: &Circuit, floorplan: &Floorplan) -> FloorplanMetrics {
    metrics_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`metrics`] with a caller-held [`MetricsScratch`]; allocation-free once
/// warm, for evaluation loops that score thousands of floorplans.
pub fn metrics_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
) -> FloorplanMetrics {
    let bb = floorplan.bounding_box();
    FloorplanMetrics {
        hpwl_um: hpwl_with(circuit, floorplan, scratch),
        dead_space: dead_space(floorplan),
        area_um2: bb.map(|r| r.area()).unwrap_or(0.0),
        aspect_ratio: bb.map(|r| r.aspect()).unwrap_or(1.0),
    }
}

/// Weights of the episode reward (paper §IV-D4: α=1, β=5, γ=5, −50 penalty).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight of the area ratio term.
    pub alpha: f64,
    /// Weight of the normalized HPWL term.
    pub beta: f64,
    /// Weight of the squared aspect-ratio error term.
    pub gamma: f64,
    /// Reward assigned when any constraint is violated.
    pub violation_penalty: f64,
}

impl Default for RewardWeights {
    fn default() -> Self {
        RewardWeights {
            alpha: 1.0,
            beta: 5.0,
            gamma: 5.0,
            violation_penalty: -50.0,
        }
    }
}

/// Intermediate (per-step) reward, paper Eq. 4:
/// `r_t = −(Δ dead-space + Δ HPWL / hpwl_norm)`.
///
/// The HPWL delta is normalized by `hpwl_norm` (an estimate of the circuit's
/// minimum achievable HPWL) so both terms share the same scale; pass `1.0` to
/// reproduce the raw formulation.
pub fn intermediate_reward(
    previous: &FloorplanMetrics,
    current: &FloorplanMetrics,
    hpwl_norm: f64,
) -> f64 {
    let delta_ds = current.dead_space - previous.dead_space;
    let delta_hpwl = (current.hpwl_um - previous.hpwl_um) / hpwl_norm.max(1e-9);
    -(delta_ds + delta_hpwl)
}

/// Episode (terminal) reward, paper Eq. 5:
///
/// `R = −(α · F_area / Σ Aᵢ + β · HPWL / HPWL_min + γ · (R* − R)²)`,
///
/// plus the −50 penalty whenever the finished floorplan violates a positional
/// constraint or does not contain every block.
pub fn episode_reward(
    circuit: &Circuit,
    floorplan: &Floorplan,
    hpwl_min: f64,
    weights: &RewardWeights,
) -> f64 {
    episode_reward_with(circuit, floorplan, hpwl_min, weights, &mut MetricsScratch::new())
}

/// [`episode_reward`] with a caller-held [`MetricsScratch`] — the full-rescan
/// evaluation of the metaheuristics' cached cost function, and the oracle the
/// incremental path ([`episode_reward_incremental`]) is differential-tested
/// against.
pub fn episode_reward_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    hpwl_min: f64,
    weights: &RewardWeights,
    scratch: &mut MetricsScratch,
) -> f64 {
    if floorplan.num_placed() < circuit.num_blocks() || has_violations(circuit, floorplan) {
        return weights.violation_penalty;
    }
    let m = metrics_with(circuit, floorplan, scratch);
    combine_reward(circuit, &m, hpwl_min, weights)
}

/// The weighted combination of Eq. 5 from an already computed metric
/// snapshot — shared verbatim by the full and incremental reward paths so
/// their results cannot drift.
fn combine_reward(
    circuit: &Circuit,
    m: &FloorplanMetrics,
    hpwl_min: f64,
    weights: &RewardWeights,
) -> f64 {
    let total_area = circuit.total_block_area().max(1e-9);
    let area_term = weights.alpha * m.area_um2 / total_area;
    let hpwl_term = weights.beta * m.hpwl_um / hpwl_min.max(1e-9);
    let outline_term = match circuit.target_aspect_ratio {
        Some(target) => weights.gamma * (target - m.aspect_ratio).powi(2),
        None => 0.0,
    };
    -(area_term + hpwl_term + outline_term)
}

/// Incremental counterpart of [`metrics_with`] + [`count_violations`](crate::constraints::count_violations):
/// returns the metric snapshot and the violation count, recomputing only the
/// per-net HPWL terms and per-constraint flags incident to `dirty` (see
/// [`MetricsScratch`], *Incremental terms*).
///
/// The HPWL is re-reduced from the cached terms in net order — the same
/// addition sequence the full rescan performs — and every recomputed term
/// runs the same function on the same inputs, so the snapshot is
/// bit-identical to [`metrics_with`] and the count to [`count_violations`](crate::constraints::count_violations)
/// (differential-tested in `tests/properties.rs`). Bounding-box quantities
/// (area, dead space, aspect) are O(placed) and recomputed directly.
///
/// Pass [`DirtySet::Full`] (or call with a cold scratch) to fall back to a
/// full term refresh; the dirty path engages only while the scratch's term
/// state is warm and the circuit shape is unchanged.
pub fn metrics_incremental(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
    dirty: DirtySet<'_>,
) -> (FloorplanMetrics, usize) {
    update_terms(circuit, floorplan, scratch, dirty);
    scratch.flush_stale_constraints(circuit, floorplan);
    scratch.resolve_pending(floorplan);
    scratch.flush_stale_terms(circuit);
    let violations = scratch.violated_mask.count_ones();
    (reduce_metrics(floorplan, scratch), violations)
}

/// Brings the scratch's dirty bookkeeping up to date with `floorplan` — the
/// shared first phase of the incremental entry points. Everything that reads
/// the floorplan is deferred to the resolve/flush methods.
fn update_terms(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
    dirty: DirtySet<'_>,
) {
    let rebuilt = scratch.ensure_adjacency(circuit);
    match dirty {
        DirtySet::Blocks(blocks) if scratch.inc_valid && !rebuilt => {
            scratch.note_dirty(blocks);
        }
        _ => scratch.refresh_all_terms(circuit, floorplan),
    }
}

/// Reduces the cached terms to a metric snapshot. The HPWL reduction visits
/// the cached per-net terms in net order, skipping unplaced nets — the same
/// addition sequence as `hpwl_with`.
fn reduce_metrics(floorplan: &Floorplan, scratch: &MetricsScratch) -> FloorplanMetrics {
    let hpwl_um: f64 = scratch.net_terms.iter().copied().flatten().sum();
    let bb = floorplan.bounding_box();
    FloorplanMetrics {
        hpwl_um,
        dead_space: dead_space(floorplan),
        area_um2: bb.map(|r| r.area()).unwrap_or(0.0),
        aspect_ratio: bb.map(|r| r.aspect()).unwrap_or(1.0),
    }
}

/// [`episode_reward_with`] through the incremental term state: bit-identical
/// rewards, but only the nets and constraints incident to `dirty` are
/// re-evaluated. This is the metrics half of the incremental cost pipeline;
/// the dirty set comes from the realization half
/// ([`RealizeCache::dirty_blocks`](crate::RealizeCache::dirty_blocks)).
///
/// Unlike the full path, the center cache and violation flags are updated
/// even when the penalty short-circuit fires — the next call's dirty set is
/// relative to this floorplan, so the cached state must track it. HPWL term
/// recomputation and the reductions (HPWL sum, bounding box, dead space) are
/// deferred exactly as the full path skips them: stale nets accumulate across
/// penalized episodes and are recomputed only when a feasible episode reads
/// the wirelength, which matters on walks that spend most episodes in the
/// penalty.
pub fn episode_reward_incremental(
    circuit: &Circuit,
    floorplan: &Floorplan,
    hpwl_min: f64,
    weights: &RewardWeights,
    scratch: &mut MetricsScratch,
    dirty: DirtySet<'_>,
) -> f64 {
    update_terms(circuit, floorplan, scratch, dirty);
    if floorplan.num_placed() < circuit.num_blocks()
        || scratch.any_violation(circuit, floorplan)
    {
        // Pending blocks and stale terms stay accumulated — nothing read
        // them; this episode cost a few mask ops plus the gate only.
        return weights.violation_penalty;
    }
    scratch.resolve_pending(floorplan);
    scratch.flush_stale_terms(circuit);
    let m = reduce_metrics(floorplan, scratch);
    combine_reward(circuit, &m, hpwl_min, weights)
}

/// A crude but fast lower-bound estimate of the achievable HPWL used to
/// normalize rewards (`HPWL_min` in Eq. 5): every net is assumed to span at
/// least the side of the square that would hold its blocks packed perfectly.
pub fn hpwl_lower_bound(circuit: &Circuit) -> f64 {
    let mut total = 0.0;
    for net in &circuit.nets {
        let blocks = net.blocks();
        if blocks.len() < 2 {
            continue;
        }
        let net_area: f64 = blocks
            .iter()
            .filter_map(|b| circuit.block(*b))
            .map(|b| b.area_um2)
            .sum();
        // Packed side of the involved blocks, halved: adjacent blocks can
        // always come closer than their joint square side.
        total += net_area.sqrt();
    }
    total.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Canvas, Cell};
    use afp_circuit::{BlockId, BlockKind, NetClass, Shape};

    fn circuit() -> Circuit {
        Circuit::builder("m")
            .block("A", BlockKind::CurrentMirror, 16.0, 3)
            .block("B", BlockKind::DifferentialPair, 16.0, 4)
            .block("C", BlockKind::CurrentSource, 16.0, 2)
            .net("ab", &[("A", "d"), ("B", "s")], NetClass::Signal)
            .net("bc", &[("B", "d"), ("C", "g")], NetClass::Critical)
            .build()
            .unwrap()
    }

    fn place_all(gap: usize) -> (Circuit, Floorplan) {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(4 + gap, 0)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(8 + 2 * gap, 0)).unwrap();
        (c, fp)
    }

    #[test]
    fn hpwl_matches_manual_computation() {
        let (c, fp) = place_all(0);
        // Centers at x = 2, 6, 10; same y ⇒ HPWL = 4 + 4 = 8.
        assert!((hpwl(&c, &fp) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_hpwl_counts_critical_nets_more() {
        let (c, fp) = place_all(0);
        assert!(weighted_hpwl(&c, &fp) > hpwl(&c, &fp));
    }

    #[test]
    fn dead_space_zero_for_perfect_packing() {
        let (_, fp) = place_all(0);
        assert!(dead_space(&fp) < 1e-9);
    }

    #[test]
    fn dead_space_grows_with_gaps() {
        let (_, tight) = place_all(0);
        let (_, loose) = place_all(2);
        assert!(dead_space(&loose) > dead_space(&tight));
    }

    #[test]
    fn partial_hpwl_only_counts_placed_nets() {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        assert_eq!(hpwl(&c, &fp), 0.0);
        assert_eq!(metrics(&c, &fp).hpwl_um, 0.0);
    }

    #[test]
    fn intermediate_reward_penalizes_growth() {
        let (c, fp0) = place_all(0);
        let (_, fp1) = place_all(2);
        let m0 = metrics(&c, &fp0);
        let m1 = metrics(&c, &fp1);
        // Moving from the tight to the loose plan should be penalized.
        let r = intermediate_reward(&m0, &m1, 1.0);
        assert!(r < 0.0);
        // The reverse direction is rewarded.
        assert!(intermediate_reward(&m1, &m0, 1.0) > 0.0);
    }

    #[test]
    fn episode_reward_prefers_tighter_floorplans() {
        let (c, tight) = place_all(0);
        let (_, loose) = place_all(2);
        let w = RewardWeights::default();
        let hpwl_min = hpwl_lower_bound(&c);
        let r_tight = episode_reward(&c, &tight, hpwl_min, &w);
        let r_loose = episode_reward(&c, &loose, hpwl_min, &w);
        assert!(r_tight > r_loose, "{r_tight} vs {r_loose}");
        assert!(r_tight < 0.0);
    }

    #[test]
    fn incomplete_floorplan_gets_penalty() {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        let r = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        assert_eq!(r, -50.0);
    }

    #[test]
    fn fixed_outline_term_is_applied() {
        let mut c = circuit();
        c.target_aspect_ratio = Some(1.0);
        let (_, fp) = place_all(0);
        let with_outline = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        c.target_aspect_ratio = None;
        let without = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        // The placed row is 12×4, far from square ⇒ outline penalty applies.
        assert!(with_outline < without);
    }

    /// A constrained circuit so the incremental tests exercise the
    /// per-constraint flags, not just the per-net terms.
    fn constrained_circuit() -> Circuit {
        Circuit::builder("inc")
            .block("L", BlockKind::CurrentMirror, 16.0, 3)
            .block("R", BlockKind::CurrentMirror, 16.0, 3)
            .block("T", BlockKind::CurrentSource, 16.0, 2)
            .net("lr", &[("L", "d"), ("R", "d")], NetClass::Signal)
            .net("rt", &[("R", "s"), ("T", "g")], NetClass::Critical)
            .symmetry_v(&[("L", "R")])
            .build()
            .unwrap()
    }

    /// Asserts the incremental snapshot equals the full rescan bit-for-bit.
    fn assert_incremental_matches(
        circuit: &Circuit,
        fp: &Floorplan,
        scratch: &mut MetricsScratch,
        dirty: DirtySet<'_>,
    ) {
        let (m, violations) = metrics_incremental(circuit, fp, scratch, dirty);
        assert_eq!(m, metrics(circuit, fp), "metric snapshot diverged");
        assert_eq!(
            violations,
            crate::constraints::count_violations(circuit, fp),
            "violation count diverged"
        );
        let w = RewardWeights::default();
        let hpwl_min = hpwl_lower_bound(circuit);
        // Reward through a *separate* warm scratch walked by the same dirty
        // sets (metrics_incremental above already consumed this one's state).
        assert_eq!(
            episode_reward_incremental(circuit, fp, hpwl_min, &w, scratch, DirtySet::Blocks(&[])),
            episode_reward(circuit, fp, hpwl_min, &w),
            "episode reward diverged"
        );
    }

    #[test]
    fn incremental_metrics_track_single_block_moves() {
        let c = constrained_circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 10)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(10, 0)).unwrap();
        let mut scratch = MetricsScratch::new();
        assert_incremental_matches(&c, &fp, &mut scratch, DirtySet::Full);

        // Move block T: only its incident net ("rt") and no constraint are
        // re-evaluated; results still match the full rescan.
        fp.unplace_last();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        assert_incremental_matches(&c, &fp, &mut scratch, DirtySet::Blocks(&[2]));

        // Move R off the symmetry row: the constraint flag must flip to
        // violated through the dirty path (reward becomes the penalty).
        let placed_r = fp.placed().iter().position(|p| p.block == BlockId(1)).unwrap();
        assert_eq!(placed_r, 1);
        // Rebuild without R at a broken position.
        let mut fp2 = Floorplan::new(Canvas::new(32.0, 32.0));
        fp2.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        fp2.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 14)).unwrap();
        fp2.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        let mut scratch2 = MetricsScratch::new();
        assert_incremental_matches(&c, &fp2, &mut scratch2, DirtySet::Full);
        let (_, violations) = metrics_incremental(&c, &fp2, &mut scratch2, DirtySet::Blocks(&[]));
        assert_eq!(violations, 1, "broken symmetry must be flagged");
    }

    #[test]
    fn incremental_terms_stay_current_through_penalty_evaluations() {
        // Unlike the full path, the incremental path must update its term
        // state even when it returns the violation penalty, because the next
        // dirty set is relative to the penalized floorplan.
        let c = constrained_circuit();
        let w = RewardWeights::default();
        let hpwl_min = hpwl_lower_bound(&c);
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        let mut scratch = MetricsScratch::new();
        let r = episode_reward_incremental(&c, &fp, hpwl_min, &w, &mut scratch, DirtySet::Full);
        assert_eq!(r, w.violation_penalty, "incomplete floorplan must be penalized");

        // Complete the floorplan; only the newly placed blocks are dirty.
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 10)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(10, 0)).unwrap();
        let r = episode_reward_incremental(
            &c, &fp, hpwl_min, &w, &mut scratch, DirtySet::Blocks(&[1, 2]),
        );
        assert_eq!(r, episode_reward(&c, &fp, hpwl_min, &w));
        assert!(r > w.violation_penalty);
    }

    #[test]
    fn full_fill_invalidates_incremental_state() {
        // Interleaving a plain scratch evaluation of a *different* floorplan
        // must not leave stale terms behind: the next incremental call falls
        // back to a full refresh.
        let c = constrained_circuit();
        let (mut fp_a, mut fp_b) = (
            Floorplan::new(Canvas::new(32.0, 32.0)),
            Floorplan::new(Canvas::new(32.0, 32.0)),
        );
        for (fp, x) in [(&mut fp_a, 20usize), (&mut fp_b, 24)] {
            fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
            fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(x, 10)).unwrap();
            fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(10, 0)).unwrap();
        }
        let mut scratch = MetricsScratch::new();
        let _ = metrics_incremental(&c, &fp_a, &mut scratch, DirtySet::Full);
        // Full fill against fp_b through the same scratch...
        let _ = hpwl_with(&c, &fp_b, &mut scratch);
        assert!(!scratch.inc_valid, "full fill must invalidate the term state");
        // ...then an incremental call claiming "nothing dirty" against fp_b
        // must still be correct (falls back to a refresh).
        assert_incremental_matches(&c, &fp_b, &mut scratch, DirtySet::Blocks(&[]));
    }

    #[test]
    fn large_circuits_run_incrementally_with_zero_fallbacks() {
        // The incremental bookkeeping is spillable bitsets; circuits beyond
        // 64 blocks run the same dirty-tracking path as small ones, with no
        // silent full-rescan cliff. `fallback_rescans` is the tripwire.
        let mut builder = Circuit::builder("big");
        for i in 0..70 {
            builder = builder.block(&format!("B{i}"), BlockKind::CurrentMirror, 4.0, 2);
        }
        for i in 0..69 {
            builder = builder.net(
                &format!("n{i}"),
                &[(&format!("B{i}") as &str, "d"), (&format!("B{}", i + 1) as &str, "s")],
                NetClass::Signal,
            );
        }
        let c = builder.build().unwrap();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        for i in 0..70 {
            fp.place(BlockId(i), 0, Shape::new(2.0, 2.0), Cell::new((i % 16) * 2, (i / 16) * 2))
                .unwrap();
        }
        let mut scratch = MetricsScratch::new();
        let (m, violations) = metrics_incremental(&c, &fp, &mut scratch, DirtySet::Full);
        assert_eq!(m, metrics(&c, &fp));
        assert_eq!(violations, 0);
        // Move a block past the 64-bit boundary index and verify the warm
        // dirty path stays exact.
        let mut fp2 = Floorplan::new(Canvas::new(32.0, 32.0));
        for i in 0..70 {
            let cell = if i == 67 {
                Cell::new(24, 20)
            } else {
                Cell::new((i % 16) * 2, (i / 16) * 2)
            };
            fp2.place(BlockId(i), 0, Shape::new(2.0, 2.0), cell).unwrap();
        }
        let (m2, v2) = metrics_incremental(&c, &fp2, &mut scratch, DirtySet::Blocks(&[67]));
        assert_eq!(m2, metrics(&c, &fp2));
        assert_eq!(v2, crate::constraints::count_violations(&c, &fp2));
        let w = RewardWeights::default();
        let hpwl_min = hpwl_lower_bound(&c);
        assert_eq!(
            episode_reward_incremental(&c, &fp2, hpwl_min, &w, &mut scratch, DirtySet::Blocks(&[])),
            episode_reward(&c, &fp2, hpwl_min, &w),
        );
        assert_eq!(scratch.fallback_rescans, 0, "no fallback at any size");
    }

    #[test]
    fn hpwl_lower_bound_positive_and_below_actual() {
        let (c, fp) = place_all(2);
        let lb = hpwl_lower_bound(&c);
        assert!(lb > 0.0);
        assert!(lb <= hpwl(&c, &fp) * 2.0); // sanity scale check
    }
}

//! Floorplan quality metrics and the paper's reward functions.
//!
//! * HPWL — half-perimeter wirelength over all nets (paper Eq. 3),
//! * dead space — `1 − Σ Aᵢ / F_area` with `F_area` the floorplan bounding
//!   box area,
//! * intermediate reward — `r_t = −(Δ dead-space + Δ HPWL)` (paper Eq. 4),
//! * episode reward — the weighted sum of area, HPWL and fixed-outline error
//!   with the paper's weights α=1, β=5, γ=5 and the −50 constraint-violation
//!   penalty (paper Eq. 5, §IV-D4).

use serde::{Deserialize, Serialize};

use afp_circuit::Circuit;

use crate::constraints::count_violations;
use crate::placement::Floorplan;

/// Snapshot of the quality metrics of a (possibly partial) floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorplanMetrics {
    /// Half-perimeter wirelength in µm, over nets with ≥ 2 placed blocks.
    pub hpwl_um: f64,
    /// Dead space fraction in `[0, 1)` of the current bounding box.
    pub dead_space: f64,
    /// Bounding-box area in µm².
    pub area_um2: f64,
    /// Bounding-box aspect ratio (width / height); 1.0 when empty.
    pub aspect_ratio: f64,
}

impl FloorplanMetrics {
    /// Metrics of an empty floorplan.
    pub fn empty() -> Self {
        FloorplanMetrics {
            hpwl_um: 0.0,
            dead_space: 0.0,
            area_um2: 0.0,
            aspect_ratio: 1.0,
        }
    }
}

/// Reusable per-block center cache for the HPWL sweeps.
///
/// `Floorplan::block_center` is a linear scan over the placed list, and
/// `Net::blocks()` allocates a deduplicated vector — per pin, per net, per
/// evaluation. The scratch turns one HPWL evaluation into a single pass over
/// the placed blocks followed by direct center lookups per pin, which is what
/// lets the metaheuristics' cost function skip the unplaced-pin rescans.
#[derive(Debug, Clone, Default)]
pub struct MetricsScratch {
    /// `centers[b]` = center of block index `b`, or `None` while unplaced.
    centers: Vec<Option<(f64, f64)>>,
}

impl MetricsScratch {
    /// Creates an empty scratch; the buffer grows on first use.
    pub fn new() -> Self {
        MetricsScratch::default()
    }

    /// Fills the center cache from the floorplan's placed list.
    fn fill(&mut self, circuit: &Circuit, floorplan: &Floorplan) {
        self.centers.clear();
        self.centers.resize(circuit.num_blocks(), None);
        for placed in floorplan.placed() {
            let index = placed.block.index();
            if index < self.centers.len() {
                self.centers[index] = Some(placed.rect.center());
            }
        }
    }
}

/// Half-perimeter bounding box of one net over cached centers. Duplicate pins
/// on one block are harmless: they collapse to the same point, so the bounding
/// box (and the `≥ 2` placed-pin gate) matches the deduplicated definition.
#[inline]
fn net_bbox_halfperimeter(net: &afp_circuit::Net, centers: &[Option<(f64, f64)>]) -> Option<f64> {
    let mut min_x = f64::MAX;
    let mut max_x = f64::MIN;
    let mut min_y = f64::MAX;
    let mut max_y = f64::MIN;
    let mut placed_pins = 0;
    for pin in &net.pins {
        let index = pin.block.index();
        if let Some(Some((cx, cy))) = centers.get(index) {
            min_x = min_x.min(*cx);
            max_x = max_x.max(*cx);
            min_y = min_y.min(*cy);
            max_y = max_y.max(*cy);
            placed_pins += 1;
        }
    }
    (placed_pins >= 2).then(|| (max_x - min_x) + (max_y - min_y))
}

/// Computes the half-perimeter wirelength (paper Eq. 3) of the placed part of
/// the floorplan. Nets with fewer than two placed blocks contribute nothing.
/// Each net counts once, unweighted, matching the paper's definition.
pub fn hpwl(circuit: &Circuit, floorplan: &Floorplan) -> f64 {
    hpwl_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`hpwl`] with a caller-held [`MetricsScratch`]; allocation-free once warm.
pub fn hpwl_with(circuit: &Circuit, floorplan: &Floorplan, scratch: &mut MetricsScratch) -> f64 {
    scratch.fill(circuit, floorplan);
    circuit
        .nets
        .iter()
        .filter_map(|net| net_bbox_halfperimeter(net, &scratch.centers))
        .sum()
}

/// Net-class-weighted HPWL, used by the metaheuristic baselines' cost
/// functions (critical nets count double, supplies half).
pub fn weighted_hpwl(circuit: &Circuit, floorplan: &Floorplan) -> f64 {
    weighted_hpwl_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`weighted_hpwl`] with a caller-held [`MetricsScratch`].
pub fn weighted_hpwl_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
) -> f64 {
    scratch.fill(circuit, floorplan);
    circuit
        .nets
        .iter()
        .filter_map(|net| {
            net_bbox_halfperimeter(net, &scratch.centers).map(|hp| net.weight() * hp)
        })
        .sum()
}

/// Dead space of the current floorplan: `1 − Σ placed area / bounding-box
/// area`. Returns `0.0` while nothing is placed.
pub fn dead_space(floorplan: &Floorplan) -> f64 {
    match floorplan.bounding_box() {
        Some(bb) if bb.area() > 0.0 => {
            (1.0 - floorplan.placed_area_um2() / bb.area()).clamp(0.0, 1.0)
        }
        _ => 0.0,
    }
}

/// Computes the full metric snapshot of a floorplan.
pub fn metrics(circuit: &Circuit, floorplan: &Floorplan) -> FloorplanMetrics {
    metrics_with(circuit, floorplan, &mut MetricsScratch::new())
}

/// [`metrics`] with a caller-held [`MetricsScratch`]; allocation-free once
/// warm, for evaluation loops that score thousands of floorplans.
pub fn metrics_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    scratch: &mut MetricsScratch,
) -> FloorplanMetrics {
    let bb = floorplan.bounding_box();
    FloorplanMetrics {
        hpwl_um: hpwl_with(circuit, floorplan, scratch),
        dead_space: dead_space(floorplan),
        area_um2: bb.map(|r| r.area()).unwrap_or(0.0),
        aspect_ratio: bb.map(|r| r.aspect()).unwrap_or(1.0),
    }
}

/// Weights of the episode reward (paper §IV-D4: α=1, β=5, γ=5, −50 penalty).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight of the area ratio term.
    pub alpha: f64,
    /// Weight of the normalized HPWL term.
    pub beta: f64,
    /// Weight of the squared aspect-ratio error term.
    pub gamma: f64,
    /// Reward assigned when any constraint is violated.
    pub violation_penalty: f64,
}

impl Default for RewardWeights {
    fn default() -> Self {
        RewardWeights {
            alpha: 1.0,
            beta: 5.0,
            gamma: 5.0,
            violation_penalty: -50.0,
        }
    }
}

/// Intermediate (per-step) reward, paper Eq. 4:
/// `r_t = −(Δ dead-space + Δ HPWL / hpwl_norm)`.
///
/// The HPWL delta is normalized by `hpwl_norm` (an estimate of the circuit's
/// minimum achievable HPWL) so both terms share the same scale; pass `1.0` to
/// reproduce the raw formulation.
pub fn intermediate_reward(
    previous: &FloorplanMetrics,
    current: &FloorplanMetrics,
    hpwl_norm: f64,
) -> f64 {
    let delta_ds = current.dead_space - previous.dead_space;
    let delta_hpwl = (current.hpwl_um - previous.hpwl_um) / hpwl_norm.max(1e-9);
    -(delta_ds + delta_hpwl)
}

/// Episode (terminal) reward, paper Eq. 5:
///
/// `R = −(α · F_area / Σ Aᵢ + β · HPWL / HPWL_min + γ · (R* − R)²)`,
///
/// plus the −50 penalty whenever the finished floorplan violates a positional
/// constraint or does not contain every block.
pub fn episode_reward(
    circuit: &Circuit,
    floorplan: &Floorplan,
    hpwl_min: f64,
    weights: &RewardWeights,
) -> f64 {
    episode_reward_with(circuit, floorplan, hpwl_min, weights, &mut MetricsScratch::new())
}

/// [`episode_reward`] with a caller-held [`MetricsScratch`] — the entry point
/// of the metaheuristics' cached cost function.
pub fn episode_reward_with(
    circuit: &Circuit,
    floorplan: &Floorplan,
    hpwl_min: f64,
    weights: &RewardWeights,
    scratch: &mut MetricsScratch,
) -> f64 {
    if floorplan.num_placed() < circuit.num_blocks()
        || count_violations(circuit, floorplan) > 0
    {
        return weights.violation_penalty;
    }
    let m = metrics_with(circuit, floorplan, scratch);
    let total_area = circuit.total_block_area().max(1e-9);
    let area_term = weights.alpha * m.area_um2 / total_area;
    let hpwl_term = weights.beta * m.hpwl_um / hpwl_min.max(1e-9);
    let outline_term = match circuit.target_aspect_ratio {
        Some(target) => weights.gamma * (target - m.aspect_ratio).powi(2),
        None => 0.0,
    };
    -(area_term + hpwl_term + outline_term)
}

/// A crude but fast lower-bound estimate of the achievable HPWL used to
/// normalize rewards (`HPWL_min` in Eq. 5): every net is assumed to span at
/// least the side of the square that would hold its blocks packed perfectly.
pub fn hpwl_lower_bound(circuit: &Circuit) -> f64 {
    let mut total = 0.0;
    for net in &circuit.nets {
        let blocks = net.blocks();
        if blocks.len() < 2 {
            continue;
        }
        let net_area: f64 = blocks
            .iter()
            .filter_map(|b| circuit.block(*b))
            .map(|b| b.area_um2)
            .sum();
        // Packed side of the involved blocks, halved: adjacent blocks can
        // always come closer than their joint square side.
        total += net_area.sqrt();
    }
    total.max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{Canvas, Cell};
    use afp_circuit::{BlockId, BlockKind, NetClass, Shape};

    fn circuit() -> Circuit {
        Circuit::builder("m")
            .block("A", BlockKind::CurrentMirror, 16.0, 3)
            .block("B", BlockKind::DifferentialPair, 16.0, 4)
            .block("C", BlockKind::CurrentSource, 16.0, 2)
            .net("ab", &[("A", "d"), ("B", "s")], NetClass::Signal)
            .net("bc", &[("B", "d"), ("C", "g")], NetClass::Critical)
            .build()
            .unwrap()
    }

    fn place_all(gap: usize) -> (Circuit, Floorplan) {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(4 + gap, 0)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(8 + 2 * gap, 0)).unwrap();
        (c, fp)
    }

    #[test]
    fn hpwl_matches_manual_computation() {
        let (c, fp) = place_all(0);
        // Centers at x = 2, 6, 10; same y ⇒ HPWL = 4 + 4 = 8.
        assert!((hpwl(&c, &fp) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_hpwl_counts_critical_nets_more() {
        let (c, fp) = place_all(0);
        assert!(weighted_hpwl(&c, &fp) > hpwl(&c, &fp));
    }

    #[test]
    fn dead_space_zero_for_perfect_packing() {
        let (_, fp) = place_all(0);
        assert!(dead_space(&fp) < 1e-9);
    }

    #[test]
    fn dead_space_grows_with_gaps() {
        let (_, tight) = place_all(0);
        let (_, loose) = place_all(2);
        assert!(dead_space(&loose) > dead_space(&tight));
    }

    #[test]
    fn partial_hpwl_only_counts_placed_nets() {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        assert_eq!(hpwl(&c, &fp), 0.0);
        assert_eq!(metrics(&c, &fp).hpwl_um, 0.0);
    }

    #[test]
    fn intermediate_reward_penalizes_growth() {
        let (c, fp0) = place_all(0);
        let (_, fp1) = place_all(2);
        let m0 = metrics(&c, &fp0);
        let m1 = metrics(&c, &fp1);
        // Moving from the tight to the loose plan should be penalized.
        let r = intermediate_reward(&m0, &m1, 1.0);
        assert!(r < 0.0);
        // The reverse direction is rewarded.
        assert!(intermediate_reward(&m1, &m0, 1.0) > 0.0);
    }

    #[test]
    fn episode_reward_prefers_tighter_floorplans() {
        let (c, tight) = place_all(0);
        let (_, loose) = place_all(2);
        let w = RewardWeights::default();
        let hpwl_min = hpwl_lower_bound(&c);
        let r_tight = episode_reward(&c, &tight, hpwl_min, &w);
        let r_loose = episode_reward(&c, &loose, hpwl_min, &w);
        assert!(r_tight > r_loose, "{r_tight} vs {r_loose}");
        assert!(r_tight < 0.0);
    }

    #[test]
    fn incomplete_floorplan_gets_penalty() {
        let c = circuit();
        let mut fp = Floorplan::new(Canvas::new(32.0, 32.0));
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        let r = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        assert_eq!(r, -50.0);
    }

    #[test]
    fn fixed_outline_term_is_applied() {
        let mut c = circuit();
        c.target_aspect_ratio = Some(1.0);
        let (_, fp) = place_all(0);
        let with_outline = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        c.target_aspect_ratio = None;
        let without = episode_reward(&c, &fp, 1.0, &RewardWeights::default());
        // The placed row is 12×4, far from square ⇒ outline penalty applies.
        assert!(with_outline < without);
    }

    #[test]
    fn hpwl_lower_bound_positive_and_below_actual() {
        let (c, fp) = place_all(2);
        let lb = hpwl_lower_bound(&c);
        assert!(lb > 0.0);
        assert!(lb <= hpwl(&c, &fp) * 2.0); // sanity scale check
    }
}

//! FAST-SP: O(n log n) sequence-pair evaluation via weighted longest common
//! subsequences (Tang–Wong).
//!
//! # Algorithm
//!
//! A sequence pair `(s⁺, s⁻)` encodes the horizontal/vertical relations of
//! `n` blocks: `a` is **left of** `b` iff `a` precedes `b` in both sequences,
//! and `a` is **below** `b` iff `a` follows `b` in `s⁺` but precedes it in
//! `s⁻`. Packing the pair means computing, for every block, the longest
//! weighted path of predecessors under each relation:
//!
//! ```text
//! x[b] = max { x[a] + w[a] : a left of b }        (0 when no predecessor)
//! y[b] = max { y[a] + h[a] : a below  b }
//! ```
//!
//! Tang and Wong observed that these longest paths are *weighted longest
//! common subsequence* computations over the two sequences and can be
//! evaluated in a single sweep with a prefix-max structure:
//!
//! * **x-pass** — visit blocks in `s⁺` order. When block `b` (at position
//!   `p = s⁻(b)`) is visited, every already-visited block `a` satisfies
//!   `s⁺(a) < s⁺(b)`, so `a` is left of `b` exactly when `s⁻(a) < p`.
//!   Hence `x[b]` is the maximum of `x[a] + w[a]` over `s⁻` positions
//!   `< p` — a prefix-max query — after which `x[b] + w[b]` is inserted at
//!   position `p`.
//! * **y-pass** — identical, but visiting blocks in *reverse* `s⁺` order so
//!   that already-visited blocks satisfy `s⁺(a) > s⁺(b)`, making the prefix
//!   condition `s⁻(a) < p` equivalent to "`a` below `b`".
//!
//! With a Fenwick (binary-indexed) tree over `s⁻` positions both passes cost
//! O(n log n) total, replacing the seed's O(n³) repeated-relaxation solver.
//! Because each coordinate is produced by the *same* recurrence (`f64` max
//! over `x[a] + w[a]` terms) that the relaxation solver iterates to a fixed
//! point, the computed positions are bit-identical to the legacy packer's —
//! property-tested in `tests/properties.rs` against the
//! `legacy-pack`-gated oracle.
//!
//! # Scratch reuse
//!
//! Metaheuristic inner loops evaluate millions of candidate packings;
//! [`PackScratch`] owns every buffer the sweep needs so repeated calls
//! allocate nothing once warm. [`SequencePair::pack`] remains the
//! allocation-per-call convenience entry point; hot paths should hold a
//! `PackScratch` and call [`SequencePair::pack_into`].
//!
//! # Incremental packing
//!
//! A metaheuristic perturbation changes one or two sequence positions (or one
//! block's shape); the rest of the sweep recomputes values it produced the
//! evaluation before. [`PackCache`] remembers the previous evaluation's
//! per-position state, and [`pack_coords_cached`] diffs the new input against
//! it:
//!
//! * the **x-pass** visits blocks in `s⁺` order, so the longest unchanged
//!   `s⁺` *prefix* (same block, same `s⁻` position, same width per position)
//!   has unchanged `x` values — its Fenwick/aux writes are **replayed** as one
//!   store per position (no prefix-max queries) and the sweep resumes at the
//!   first changed position;
//! * the **y-pass** visits blocks in *reverse* `s⁺` order, so the mirror
//!   argument holds for the longest unchanged `s⁺` *suffix* (with heights in
//!   place of widths).
//!
//! A replayed write is the same `(slot, value)` pair the full sweep would
//! produce, and prefix-max is a max over non-negative finite `f64`s — a
//! commutative, associative reduction — so the resumed sweep reads exactly
//! the state the full sweep would have built: coordinates are bit-identical
//! (differential-tested in `tests/properties.rs` on random perturbation
//! walks). A swap of `s⁺` positions `i < j` re-sweeps `n − i` x-positions and
//! `j + 1` y-positions instead of `2n`; a shape change at position `q` costs
//! `(n − q) + (q + 1) = n + 1`.
//!
//! [`SequencePair::pack`]: crate::SequencePair::pack
//! [`SequencePair::pack_into`]: crate::SequencePair::pack_into

use afp_circuit::Shape;

/// Reusable buffers for FAST-SP packing sweeps.
///
/// Holding one `PackScratch` per optimizer run makes every pack evaluation
/// allocation-free after the first call at a given problem size.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    /// `neg_index[b]` = position of block `b` in `s⁻`.
    neg_index: Vec<usize>,
    /// Fenwick tree over `s⁻` positions holding prefix maxima (1-indexed).
    tree: Vec<f64>,
    /// Coordinate buffers loaned out to [`SequencePair::pack_into`].
    ///
    /// [`SequencePair::pack_into`]: crate::SequencePair::pack_into
    coords: (Vec<f64>, Vec<f64>),
    /// Placement-order buffer loaned out to `realize_floorplan`.
    order: Vec<usize>,
}

impl PackScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PackScratch::default()
    }

    /// Creates a scratch pre-sized for `n` blocks.
    pub fn with_capacity(n: usize) -> Self {
        PackScratch {
            neg_index: Vec::with_capacity(n),
            tree: Vec::with_capacity(n + 1),
            coords: (Vec::with_capacity(n), Vec::with_capacity(n)),
            order: Vec::with_capacity(n),
        }
    }

    /// Loans the coordinate buffers out so `pack_coords` can borrow the
    /// scratch mutably at the same time.
    pub(crate) fn take_coords(&mut self) -> (Vec<f64>, Vec<f64>) {
        std::mem::take(&mut self.coords)
    }

    /// Returns loaned coordinate buffers for reuse by the next pack.
    pub(crate) fn store_coords(&mut self, xs: Vec<f64>, ys: Vec<f64>) {
        self.coords = (xs, ys);
    }

    /// Loans the placement-order buffer out.
    pub(crate) fn take_order(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.order)
    }

    /// Returns the loaned placement-order buffer.
    pub(crate) fn store_order(&mut self, order: Vec<usize>) {
        self.order = order;
    }

    fn prepare(&mut self, n: usize) {
        self.neg_index.clear();
        self.neg_index.resize(n, 0);
        self.tree.clear();
        self.tree.resize(n + 1, 0.0);
    }

    /// Resets the Fenwick tree between the x- and y-passes.
    fn reset_tree(&mut self) {
        for v in &mut self.tree {
            *v = 0.0;
        }
    }

    /// Maximum of the values inserted at tree positions `< upto` (0-indexed
    /// exclusive bound), or `0.0` when none.
    #[inline]
    fn prefix_max(&self, upto: usize) -> f64 {
        let mut i = upto; // 1-indexed prefix [1, upto]
        let mut best = 0.0f64;
        while i > 0 {
            best = best.max(self.tree[i]);
            i &= i - 1;
        }
        best
    }

    /// Raises the value at 0-indexed position `at` to at least `value`.
    #[inline]
    fn insert(&mut self, at: usize, value: f64) {
        let n = self.tree.len() - 1;
        let mut i = at + 1;
        while i <= n {
            if self.tree[i] < value {
                self.tree[i] = value;
            }
            i += i & i.wrapping_neg();
        }
    }
}

/// Computes packed lower-left coordinates for a sequence pair.
///
/// Writes `x`/`y` (resized to `n`) and returns the enclosing `(width,
/// height)`. This is the allocation-free core shared by every public packing
/// entry point.
///
/// # Panics
///
/// Panics if `positive`, `negative` and `shapes` have different lengths or if
/// the sequences are not permutations of `0..n` (debug assertions).
pub fn pack_coords(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    scratch: &mut PackScratch,
    x: &mut Vec<f64>,
    y: &mut Vec<f64>,
) -> (f64, f64) {
    let n = shapes.len();
    assert_eq!(positive.len(), n, "positive sequence length mismatch");
    assert_eq!(negative.len(), n, "negative sequence length mismatch");
    x.clear();
    x.resize(n, 0.0);
    y.clear();
    y.resize(n, 0.0);
    if n == 0 {
        return (0.0, 0.0);
    }
    scratch.prepare(n);
    debug_assert!(
        positive.iter().all(|&b| b < n),
        "block index out of range in s+"
    );
    for (i, &b) in negative.iter().enumerate() {
        debug_assert!(b < n, "block index out of range in s-");
        scratch.neg_index[b] = i;
    }

    // Every prefix max is a max over non-negative finite f64s — a commutative
    // and associative reduction — so the Fenwick tree and a linear scan
    // produce bit-identical coordinates; below `LINEAR_SCAN_MAX` blocks the
    // branch-free scan over a flat array wins on constants (the paper's
    // circuits are ≤ 19 blocks).
    if n <= LINEAR_SCAN_MAX {
        // x-pass: s⁺ order; aux[p] holds x[a] + w[a] of the visited block at
        // s⁻ position p (0.0 while unvisited, which never changes a max of
        // non-negative values).
        for &b in positive {
            let p = scratch.neg_index[b];
            let xb = linear_prefix_max(&scratch.tree[..p]);
            x[b] = xb;
            scratch.tree[p] = xb + shapes[b].width_um;
        }
        let width = linear_prefix_max(&scratch.tree[..n]);

        // y-pass: reverse s⁺ order.
        scratch.reset_tree();
        for &b in positive.iter().rev() {
            let p = scratch.neg_index[b];
            let yb = linear_prefix_max(&scratch.tree[..p]);
            y[b] = yb;
            scratch.tree[p] = yb + shapes[b].height_um;
        }
        let height = linear_prefix_max(&scratch.tree[..n]);
        return (width, height);
    }

    // x-pass: s⁺ order, prefix over s⁻ positions.
    for &b in positive {
        let p = scratch.neg_index[b];
        let xb = scratch.prefix_max(p);
        x[b] = xb;
        scratch.insert(p, xb + shapes[b].width_um);
    }
    let width = scratch.prefix_max(n);

    // y-pass: reverse s⁺ order, prefix over s⁻ positions.
    scratch.reset_tree();
    for &b in positive.iter().rev() {
        let p = scratch.neg_index[b];
        let yb = scratch.prefix_max(p);
        y[b] = yb;
        scratch.insert(p, yb + shapes[b].height_um);
    }
    let height = scratch.prefix_max(n);

    (width, height)
}

/// Block count below which the linear prefix-max scan replaces the Fenwick
/// tree (same values bit-for-bit; better constants and vectorizable). The
/// crossover sits between the paper's circuits (≤ 19 blocks, scan wins) and
/// the 50-block scaling tier (Fenwick wins).
const LINEAR_SCAN_MAX: usize = 32;

/// Maximum of a slice of non-negative f64s, 0.0 when empty.
#[inline]
fn linear_prefix_max(values: &[f64]) -> f64 {
    let mut best = 0.0f64;
    for &v in values {
        if v > best {
            best = v;
        }
    }
    best
}

/// Per-position LCS state of the previous [`pack_coords_cached`] evaluation —
/// the incremental FAST-SP engine's memory (module docs, *Incremental
/// packing*).
///
/// For each `s⁺` position `i` the cache keeps the block that sat there, its
/// `s⁻` position, its weights (width for the x-pass, height for the y-pass)
/// and the coordinates the sweeps produced. Diffing a new input against this
/// state yields the longest unchanged prefix (x) and suffix (y), whose
/// positions replay as single prefix-structure writes instead of full
/// query-and-insert steps.
///
/// The public counters partition every position across all evaluations into
/// replayed and swept work, per pass — the observability hook the perf
/// snapshot reports.
#[derive(Debug, Clone, Default)]
pub struct PackCache {
    /// Whether the per-position arrays describe a previous evaluation.
    valid: bool,
    /// Block index at each `s⁺` position.
    blocks: Vec<u32>,
    /// `s⁻` position of `blocks[i]`.
    neg_pos: Vec<u32>,
    /// Width of `blocks[i]` — the x-pass weight.
    w: Vec<f64>,
    /// Height of `blocks[i]` — the y-pass weight.
    h: Vec<f64>,
    /// Packed x of `blocks[i]`.
    x: Vec<f64>,
    /// Packed y of `blocks[i]`.
    y: Vec<f64>,
    /// Enclosing width of the cached packing.
    width: f64,
    /// Enclosing height of the cached packing.
    height: f64,
    /// Evaluations served through this cache.
    pub evaluations: u64,
    /// x-pass positions replayed from the cached prefix (one store each).
    pub x_replayed: u64,
    /// x-pass positions that ran the full query-and-insert step.
    pub x_swept: u64,
    /// y-pass positions replayed from the cached suffix.
    pub y_replayed: u64,
    /// y-pass positions that ran the full query-and-insert step.
    pub y_swept: u64,
}

impl PackCache {
    /// Creates an empty cache; the first evaluation is a full sweep.
    pub fn new() -> Self {
        PackCache::default()
    }

    /// Drops the cached evaluation, forcing the next call onto a full sweep.
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Fraction of pass-positions across all evaluations that were replayed
    /// instead of swept, or 0.0 before the first evaluation.
    pub fn replay_rate(&self) -> f64 {
        let total = self.x_replayed + self.x_swept + self.y_replayed + self.y_swept;
        if total == 0 {
            return 0.0;
        }
        (self.x_replayed + self.y_replayed) as f64 / total as f64
    }
}

/// [`pack_coords`] through a [`PackCache`]: bit-identical coordinates and
/// enclosing dimensions, but `s⁺` positions whose inputs are unchanged from
/// the previous evaluation replay their prefix-structure write instead of
/// re-running the prefix-max query (module docs, *Incremental packing*).
///
/// The cache diffs on every call; callers never invalidate it across
/// perturbations, undo or crossover — any input change is detected
/// positionally. [`PackCache::invalidate`] exists for symmetry with the other
/// incremental layers only.
///
/// # Panics
///
/// Panics if `positive`, `negative` and `shapes` have different lengths
/// (debug assertions check that the sequences are permutations of `0..n`).
#[allow(clippy::too_many_arguments)]
pub fn pack_coords_cached(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    scratch: &mut PackScratch,
    cache: &mut PackCache,
    x: &mut Vec<f64>,
    y: &mut Vec<f64>,
) -> (f64, f64) {
    let n = shapes.len();
    assert_eq!(positive.len(), n, "positive sequence length mismatch");
    assert_eq!(negative.len(), n, "negative sequence length mismatch");
    x.clear();
    x.resize(n, 0.0);
    y.clear();
    y.resize(n, 0.0);
    if n == 0 {
        cache.invalidate();
        return (0.0, 0.0);
    }
    cache.evaluations += 1;
    scratch.prepare(n);
    debug_assert!(
        positive.iter().all(|&b| b < n),
        "block index out of range in s+"
    );
    for (i, &b) in negative.iter().enumerate() {
        debug_assert!(b < n, "block index out of range in s-");
        scratch.neg_index[b] = i;
    }

    // Diff against the cached evaluation *before* touching its arrays: the
    // x-pass overwrites per-position state the y-pass suffix check reads.
    let structural = cache.valid && cache.blocks.len() == n;
    let (mut kx, mut ky) = (0usize, 0usize);
    if structural {
        // Longest s⁺ prefix with unchanged x-pass inputs.
        while kx < n {
            let b = positive[kx];
            if cache.blocks[kx] != b as u32
                || cache.neg_pos[kx] as usize != scratch.neg_index[b]
                || cache.w[kx] != shapes[b].width_um
            {
                break;
            }
            kx += 1;
        }
        // Longest s⁺ suffix with unchanged y-pass inputs.
        while ky < n {
            let i = n - 1 - ky;
            let b = positive[i];
            if cache.blocks[i] != b as u32
                || cache.neg_pos[i] as usize != scratch.neg_index[b]
                || cache.h[i] != shapes[b].height_um
            {
                break;
            }
            ky += 1;
        }
    } else {
        // Cold or size-mismatched cache: size every per-position array; the
        // full sweeps below (kx = ky = 0) overwrite all of them.
        cache.blocks.clear();
        cache.blocks.resize(n, 0);
        cache.neg_pos.clear();
        cache.neg_pos.resize(n, 0);
        cache.w.clear();
        cache.w.resize(n, 0.0);
        cache.h.clear();
        cache.h.resize(n, 0.0);
        cache.x.clear();
        cache.x.resize(n, 0.0);
        cache.y.clear();
        cache.y.resize(n, 0.0);
    }
    // Fully unchanged input: both passes replay outright and the committed
    // state is already exact.
    if structural && kx == n && ky == n {
        for (i, &b) in positive.iter().enumerate() {
            x[b] = cache.x[i];
            y[b] = cache.y[i];
        }
        cache.x_replayed += n as u64;
        cache.y_replayed += n as u64;
        return (cache.width, cache.height);
    }
    let linear = n <= LINEAR_SCAN_MAX;

    // x-pass: s⁺ order. Positions < kx replay their cached write (same slot,
    // same value as the full sweep's — prefix blocks have unchanged x and
    // width); positions ≥ kx run the normal query-and-insert step. The two
    // prefix-max engines are kept as separate loops, mirroring `pack_coords`.
    let width = if structural && kx == n {
        for (i, &b) in positive.iter().enumerate() {
            x[b] = cache.x[i];
        }
        cache.x_replayed += n as u64;
        cache.width
    } else {
        // The swept region is also the only region whose structural state
        // (block, s⁻ position, width) can have changed — a mismatch at `i`
        // forces `kx ≤ i` — so committing it inside the sweep keeps the whole
        // cache exact without an O(n) rewrite.
        if linear {
            for i in 0..kx {
                x[positive[i]] = cache.x[i];
                scratch.tree[cache.neg_pos[i] as usize] = cache.x[i] + cache.w[i];
            }
            for i in kx..n {
                let b = positive[i];
                let p = scratch.neg_index[b];
                let w = shapes[b].width_um;
                let xb = linear_prefix_max(&scratch.tree[..p]);
                x[b] = xb;
                cache.blocks[i] = b as u32;
                cache.neg_pos[i] = p as u32;
                cache.w[i] = w;
                cache.x[i] = xb;
                scratch.tree[p] = xb + w;
            }
        } else {
            for i in 0..kx {
                x[positive[i]] = cache.x[i];
                scratch.insert(cache.neg_pos[i] as usize, cache.x[i] + cache.w[i]);
            }
            for i in kx..n {
                let b = positive[i];
                let p = scratch.neg_index[b];
                let w = shapes[b].width_um;
                let xb = scratch.prefix_max(p);
                x[b] = xb;
                cache.blocks[i] = b as u32;
                cache.neg_pos[i] = p as u32;
                cache.w[i] = w;
                cache.x[i] = xb;
                scratch.insert(p, xb + w);
            }
        }
        cache.x_replayed += kx as u64;
        cache.x_swept += (n - kx) as u64;
        if linear {
            linear_prefix_max(&scratch.tree[..n])
        } else {
            scratch.prefix_max(n)
        }
    };

    // y-pass: reverse s⁺ order, so the unchanged *suffix* replays. Cached y
    // values of suffix positions are exact: a position's y depends only on
    // the writes of later s⁺ positions, all of which are in the suffix.
    let height = if structural && ky == n {
        for (i, &b) in positive.iter().enumerate() {
            y[b] = cache.y[i];
        }
        cache.y_replayed += n as u64;
        cache.height
    } else {
        // Height changes can only sit in the swept region (a mismatch at `i`
        // forces `i < n − ky`), and any structural change was already
        // committed by the x-pass, so committing `h` here suffices.
        scratch.reset_tree();
        if linear {
            for i in ((n - ky)..n).rev() {
                y[positive[i]] = cache.y[i];
                scratch.tree[cache.neg_pos[i] as usize] = cache.y[i] + cache.h[i];
            }
            for i in (0..n - ky).rev() {
                let b = positive[i];
                let p = scratch.neg_index[b];
                let h = shapes[b].height_um;
                let yb = linear_prefix_max(&scratch.tree[..p]);
                y[b] = yb;
                cache.h[i] = h;
                cache.y[i] = yb;
                scratch.tree[p] = yb + h;
            }
        } else {
            for i in ((n - ky)..n).rev() {
                y[positive[i]] = cache.y[i];
                scratch.insert(cache.neg_pos[i] as usize, cache.y[i] + cache.h[i]);
            }
            for i in (0..n - ky).rev() {
                let b = positive[i];
                let p = scratch.neg_index[b];
                let h = shapes[b].height_um;
                let yb = scratch.prefix_max(p);
                y[b] = yb;
                cache.h[i] = h;
                cache.y[i] = yb;
                scratch.insert(p, yb + h);
            }
        }
        cache.y_replayed += ky as u64;
        cache.y_swept += (n - ky) as u64;
        if linear {
            linear_prefix_max(&scratch.tree[..n])
        } else {
            scratch.prefix_max(n)
        }
    };

    cache.width = width;
    cache.height = height;
    cache.valid = true;
    (width, height)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(w: f64, h: f64) -> Shape {
        Shape::new(w, h)
    }

    #[test]
    fn empty_input() {
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) = pack_coords(&[], &[], &[], &mut scratch, &mut x, &mut y);
        assert_eq!((w, h), (0.0, 0.0));
        assert!(x.is_empty() && y.is_empty());
    }

    #[test]
    fn row_packing() {
        let shapes = vec![shape(2.0, 3.0), shape(3.0, 3.0), shape(4.0, 3.0)];
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) = pack_coords(&[0, 1, 2], &[0, 1, 2], &shapes, &mut scratch, &mut x, &mut y);
        assert_eq!(x, vec![0.0, 2.0, 5.0]);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        assert_eq!((w, h), (9.0, 3.0));
    }

    #[test]
    fn column_packing() {
        let shapes = vec![shape(2.0, 3.0), shape(3.0, 4.0), shape(4.0, 5.0)];
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        // Reversed negative sequence stacks blocks bottom-to-top.
        let (w, h) = pack_coords(&[0, 1, 2], &[2, 1, 0], &shapes, &mut scratch, &mut x, &mut y);
        assert_eq!(y, vec![9.0, 5.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0, 0.0]);
        assert_eq!((w, h), (4.0, 12.0));
    }

    /// `pack_coords_cached` against fresh `pack_coords` on the same input.
    fn assert_cached_matches(
        positive: &[usize],
        negative: &[usize],
        shapes: &[Shape],
        scratch: &mut PackScratch,
        cache: &mut PackCache,
    ) {
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) = pack_coords_cached(positive, negative, shapes, scratch, cache, &mut x, &mut y);
        let mut fresh_scratch = PackScratch::new();
        let (mut fx, mut fy) = (Vec::new(), Vec::new());
        let (fw, fh) = pack_coords(positive, negative, shapes, &mut fresh_scratch, &mut fx, &mut fy);
        assert_eq!(x, fx, "x coordinates diverged");
        assert_eq!(y, fy, "y coordinates diverged");
        assert_eq!((w, h), (fw, fh), "enclosing dimensions diverged");
    }

    #[test]
    fn cached_pack_replays_unchanged_positions_on_a_late_swap() {
        let n = 8;
        let shapes: Vec<Shape> = (0..n).map(|i| shape(2.0 + i as f64, 3.0 + i as f64)).collect();
        let mut positive: Vec<usize> = (0..n).collect();
        let negative: Vec<usize> = (0..n).collect();
        let mut scratch = PackScratch::new();
        let mut cache = PackCache::new();
        assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);
        assert_eq!(cache.x_swept, n as u64, "first evaluation must sweep fully");

        // Swapping the last two s⁺ positions leaves positions 0..6 as an
        // unchanged x-prefix; the y-pass suffix breaks at the swap.
        positive.swap(6, 7);
        assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);
        assert_eq!(cache.x_replayed, 6, "unchanged x-prefix must replay");
        assert_eq!(cache.x_swept, (n + 2) as u64);
        assert_eq!(cache.y_swept, (2 * n) as u64, "y resweeps from the swap down");

        // An identical evaluation replays every position in both passes.
        assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);
        assert_eq!(cache.x_replayed, 6 + n as u64);
        assert_eq!(cache.y_replayed, n as u64);
        assert!(cache.replay_rate() > 0.0);
    }

    #[test]
    fn cached_pack_shape_change_splits_the_passes() {
        let n = 6;
        let mut shapes: Vec<Shape> = (0..n).map(|_| shape(4.0, 4.0)).collect();
        let positive: Vec<usize> = (0..n).collect();
        let negative: Vec<usize> = vec![2, 0, 4, 1, 5, 3];
        let mut scratch = PackScratch::new();
        let mut cache = PackCache::new();
        assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);

        // Reshaping the block at s⁺ position 3: x resumes there (n − 3 swept),
        // y resumes from it downward (3 + 1 swept).
        shapes[positive[3]] = Shape::new(7.0, 2.0);
        assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);
        assert_eq!(cache.x_replayed, 3);
        assert_eq!(cache.y_replayed, 2);
        assert_eq!(cache.x_swept, (n + n - 3) as u64);
        assert_eq!(cache.y_swept, (n + 4) as u64);
    }

    #[test]
    fn cached_pack_matches_on_random_walks_across_both_engines() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x9ACC);
        // 20 blocks exercises the linear engine, 40 the Fenwick engine.
        for n in [20usize, 40] {
            let mut shapes: Vec<Shape> = (0..n)
                .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
                .collect();
            let mut positive: Vec<usize> = (0..n).collect();
            let mut negative: Vec<usize> = (0..n).collect();
            positive.shuffle(&mut rng);
            negative.shuffle(&mut rng);
            let mut scratch = PackScratch::new();
            let mut cache = PackCache::new();
            for _ in 0..120 {
                match rng.gen_range(0..4) {
                    0 => {
                        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                        positive.swap(i, j);
                    }
                    1 => {
                        let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                        negative.swap(i, j);
                    }
                    2 => {
                        let b = rng.gen_range(0..n);
                        shapes[b] =
                            Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0));
                    }
                    _ => {} // identical evaluation: full replay
                }
                assert_cached_matches(&positive, &negative, &shapes, &mut scratch, &mut cache);
            }
            assert!(cache.x_replayed + cache.y_replayed > 0, "cache never replayed");
        }
    }

    #[test]
    fn cached_pack_survives_size_changes_and_invalidation() {
        let mut scratch = PackScratch::new();
        let mut cache = PackCache::new();
        let big: Vec<Shape> = (0..8).map(|i| shape(1.0 + i as f64, 2.0)).collect();
        let perm: Vec<usize> = (0..8).collect();
        assert_cached_matches(&perm, &perm, &big, &mut scratch, &mut cache);
        // Shrinking re-sweeps (no stale state), as does an explicit invalidate.
        let small = vec![shape(2.0, 3.0), shape(3.0, 3.0)];
        assert_cached_matches(&[1, 0], &[1, 0], &small, &mut scratch, &mut cache);
        cache.invalidate();
        let swept = cache.x_swept;
        assert_cached_matches(&[1, 0], &[1, 0], &small, &mut scratch, &mut cache);
        assert_eq!(cache.x_swept, swept + 2, "invalidation must force a sweep");
        // Empty input is handled and drops the cache.
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) =
            pack_coords_cached(&[], &[], &[], &mut scratch, &mut cache, &mut x, &mut y);
        assert_eq!((w, h), (0.0, 0.0));
        assert!(!cache.valid);
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = PackScratch::with_capacity(8);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let big: Vec<Shape> = (0..8).map(|i| shape(1.0 + i as f64, 2.0)).collect();
        let perm: Vec<usize> = (0..8).collect();
        pack_coords(&perm, &perm, &big, &mut scratch, &mut x, &mut y);
        // Shrinking afterwards must not read stale state.
        let small = vec![shape(2.0, 3.0), shape(3.0, 3.0)];
        let (w, h) = pack_coords(&[1, 0], &[1, 0], &small, &mut scratch, &mut x, &mut y);
        assert_eq!(x, vec![3.0, 0.0]);
        assert_eq!((w, h), (5.0, 3.0));
    }
}

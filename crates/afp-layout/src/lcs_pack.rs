//! FAST-SP: O(n log n) sequence-pair evaluation via weighted longest common
//! subsequences (Tang–Wong).
//!
//! # Algorithm
//!
//! A sequence pair `(s⁺, s⁻)` encodes the horizontal/vertical relations of
//! `n` blocks: `a` is **left of** `b` iff `a` precedes `b` in both sequences,
//! and `a` is **below** `b` iff `a` follows `b` in `s⁺` but precedes it in
//! `s⁻`. Packing the pair means computing, for every block, the longest
//! weighted path of predecessors under each relation:
//!
//! ```text
//! x[b] = max { x[a] + w[a] : a left of b }        (0 when no predecessor)
//! y[b] = max { y[a] + h[a] : a below  b }
//! ```
//!
//! Tang and Wong observed that these longest paths are *weighted longest
//! common subsequence* computations over the two sequences and can be
//! evaluated in a single sweep with a prefix-max structure:
//!
//! * **x-pass** — visit blocks in `s⁺` order. When block `b` (at position
//!   `p = s⁻(b)`) is visited, every already-visited block `a` satisfies
//!   `s⁺(a) < s⁺(b)`, so `a` is left of `b` exactly when `s⁻(a) < p`.
//!   Hence `x[b]` is the maximum of `x[a] + w[a]` over `s⁻` positions
//!   `< p` — a prefix-max query — after which `x[b] + w[b]` is inserted at
//!   position `p`.
//! * **y-pass** — identical, but visiting blocks in *reverse* `s⁺` order so
//!   that already-visited blocks satisfy `s⁺(a) > s⁺(b)`, making the prefix
//!   condition `s⁻(a) < p` equivalent to "`a` below `b`".
//!
//! With a Fenwick (binary-indexed) tree over `s⁻` positions both passes cost
//! O(n log n) total, replacing the seed's O(n³) repeated-relaxation solver.
//! Because each coordinate is produced by the *same* recurrence (`f64` max
//! over `x[a] + w[a]` terms) that the relaxation solver iterates to a fixed
//! point, the computed positions are bit-identical to the legacy packer's —
//! property-tested in `tests/properties.rs` against the
//! `legacy-pack`-gated oracle.
//!
//! # Scratch reuse
//!
//! Metaheuristic inner loops evaluate millions of candidate packings;
//! [`PackScratch`] owns every buffer the sweep needs so repeated calls
//! allocate nothing once warm. [`SequencePair::pack`] remains the
//! allocation-per-call convenience entry point; hot paths should hold a
//! `PackScratch` and call [`SequencePair::pack_into`].
//!
//! [`SequencePair::pack`]: crate::SequencePair::pack
//! [`SequencePair::pack_into`]: crate::SequencePair::pack_into

use afp_circuit::Shape;

/// Reusable buffers for FAST-SP packing sweeps.
///
/// Holding one `PackScratch` per optimizer run makes every pack evaluation
/// allocation-free after the first call at a given problem size.
#[derive(Debug, Clone, Default)]
pub struct PackScratch {
    /// `pos_index[b]` = position of block `b` in `s⁺`.
    pos_index: Vec<usize>,
    /// `neg_index[b]` = position of block `b` in `s⁻`.
    neg_index: Vec<usize>,
    /// Fenwick tree over `s⁻` positions holding prefix maxima (1-indexed).
    tree: Vec<f64>,
    /// Coordinate buffers loaned out to [`SequencePair::pack_into`].
    ///
    /// [`SequencePair::pack_into`]: crate::SequencePair::pack_into
    coords: (Vec<f64>, Vec<f64>),
    /// Placement-order buffer loaned out to `realize_floorplan`.
    order: Vec<usize>,
}

impl PackScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        PackScratch::default()
    }

    /// Creates a scratch pre-sized for `n` blocks.
    pub fn with_capacity(n: usize) -> Self {
        PackScratch {
            pos_index: Vec::with_capacity(n),
            neg_index: Vec::with_capacity(n),
            tree: Vec::with_capacity(n + 1),
            coords: (Vec::with_capacity(n), Vec::with_capacity(n)),
            order: Vec::with_capacity(n),
        }
    }

    /// Loans the coordinate buffers out so `pack_coords` can borrow the
    /// scratch mutably at the same time.
    pub(crate) fn take_coords(&mut self) -> (Vec<f64>, Vec<f64>) {
        std::mem::take(&mut self.coords)
    }

    /// Returns loaned coordinate buffers for reuse by the next pack.
    pub(crate) fn store_coords(&mut self, xs: Vec<f64>, ys: Vec<f64>) {
        self.coords = (xs, ys);
    }

    /// Loans the placement-order buffer out.
    pub(crate) fn take_order(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.order)
    }

    /// Returns the loaned placement-order buffer.
    pub(crate) fn store_order(&mut self, order: Vec<usize>) {
        self.order = order;
    }

    fn prepare(&mut self, n: usize) {
        self.pos_index.clear();
        self.pos_index.resize(n, 0);
        self.neg_index.clear();
        self.neg_index.resize(n, 0);
        self.tree.clear();
        self.tree.resize(n + 1, 0.0);
    }

    /// Resets the Fenwick tree between the x- and y-passes.
    fn reset_tree(&mut self) {
        for v in &mut self.tree {
            *v = 0.0;
        }
    }

    /// Maximum of the values inserted at tree positions `< upto` (0-indexed
    /// exclusive bound), or `0.0` when none.
    #[inline]
    fn prefix_max(&self, upto: usize) -> f64 {
        let mut i = upto; // 1-indexed prefix [1, upto]
        let mut best = 0.0f64;
        while i > 0 {
            best = best.max(self.tree[i]);
            i &= i - 1;
        }
        best
    }

    /// Raises the value at 0-indexed position `at` to at least `value`.
    #[inline]
    fn insert(&mut self, at: usize, value: f64) {
        let n = self.tree.len() - 1;
        let mut i = at + 1;
        while i <= n {
            if self.tree[i] < value {
                self.tree[i] = value;
            }
            i += i & i.wrapping_neg();
        }
    }
}

/// Computes packed lower-left coordinates for a sequence pair.
///
/// Writes `x`/`y` (resized to `n`) and returns the enclosing `(width,
/// height)`. This is the allocation-free core shared by every public packing
/// entry point.
///
/// # Panics
///
/// Panics if `positive`, `negative` and `shapes` have different lengths or if
/// the sequences are not permutations of `0..n` (debug assertions).
pub fn pack_coords(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    scratch: &mut PackScratch,
    x: &mut Vec<f64>,
    y: &mut Vec<f64>,
) -> (f64, f64) {
    let n = shapes.len();
    assert_eq!(positive.len(), n, "positive sequence length mismatch");
    assert_eq!(negative.len(), n, "negative sequence length mismatch");
    x.clear();
    x.resize(n, 0.0);
    y.clear();
    y.resize(n, 0.0);
    if n == 0 {
        return (0.0, 0.0);
    }
    scratch.prepare(n);
    for (i, &b) in positive.iter().enumerate() {
        debug_assert!(b < n, "block index out of range in s+");
        scratch.pos_index[b] = i;
    }
    for (i, &b) in negative.iter().enumerate() {
        debug_assert!(b < n, "block index out of range in s-");
        scratch.neg_index[b] = i;
    }

    // Every prefix max is a max over non-negative finite f64s — a commutative
    // and associative reduction — so the Fenwick tree and a linear scan
    // produce bit-identical coordinates; below `LINEAR_SCAN_MAX` blocks the
    // branch-free scan over a flat array wins on constants (the paper's
    // circuits are ≤ 19 blocks).
    if n <= LINEAR_SCAN_MAX {
        // x-pass: s⁺ order; aux[p] holds x[a] + w[a] of the visited block at
        // s⁻ position p (0.0 while unvisited, which never changes a max of
        // non-negative values).
        for &b in positive {
            let p = scratch.neg_index[b];
            let xb = linear_prefix_max(&scratch.tree[..p]);
            x[b] = xb;
            scratch.tree[p] = xb + shapes[b].width_um;
        }
        let width = linear_prefix_max(&scratch.tree[..n]);

        // y-pass: reverse s⁺ order.
        scratch.reset_tree();
        for &b in positive.iter().rev() {
            let p = scratch.neg_index[b];
            let yb = linear_prefix_max(&scratch.tree[..p]);
            y[b] = yb;
            scratch.tree[p] = yb + shapes[b].height_um;
        }
        let height = linear_prefix_max(&scratch.tree[..n]);
        return (width, height);
    }

    // x-pass: s⁺ order, prefix over s⁻ positions.
    for &b in positive {
        let p = scratch.neg_index[b];
        let xb = scratch.prefix_max(p);
        x[b] = xb;
        scratch.insert(p, xb + shapes[b].width_um);
    }
    let width = scratch.prefix_max(n);

    // y-pass: reverse s⁺ order, prefix over s⁻ positions.
    scratch.reset_tree();
    for &b in positive.iter().rev() {
        let p = scratch.neg_index[b];
        let yb = scratch.prefix_max(p);
        y[b] = yb;
        scratch.insert(p, yb + shapes[b].height_um);
    }
    let height = scratch.prefix_max(n);

    (width, height)
}

/// Block count below which the linear prefix-max scan replaces the Fenwick
/// tree (same values bit-for-bit; better constants and vectorizable). The
/// crossover sits between the paper's circuits (≤ 19 blocks, scan wins) and
/// the 50-block scaling tier (Fenwick wins).
const LINEAR_SCAN_MAX: usize = 32;

/// Maximum of a slice of non-negative f64s, 0.0 when empty.
#[inline]
fn linear_prefix_max(values: &[f64]) -> f64 {
    let mut best = 0.0f64;
    for &v in values {
        if v > best {
            best = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(w: f64, h: f64) -> Shape {
        Shape::new(w, h)
    }

    #[test]
    fn empty_input() {
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) = pack_coords(&[], &[], &[], &mut scratch, &mut x, &mut y);
        assert_eq!((w, h), (0.0, 0.0));
        assert!(x.is_empty() && y.is_empty());
    }

    #[test]
    fn row_packing() {
        let shapes = vec![shape(2.0, 3.0), shape(3.0, 3.0), shape(4.0, 3.0)];
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let (w, h) = pack_coords(&[0, 1, 2], &[0, 1, 2], &shapes, &mut scratch, &mut x, &mut y);
        assert_eq!(x, vec![0.0, 2.0, 5.0]);
        assert_eq!(y, vec![0.0, 0.0, 0.0]);
        assert_eq!((w, h), (9.0, 3.0));
    }

    #[test]
    fn column_packing() {
        let shapes = vec![shape(2.0, 3.0), shape(3.0, 4.0), shape(4.0, 5.0)];
        let mut scratch = PackScratch::new();
        let (mut x, mut y) = (Vec::new(), Vec::new());
        // Reversed negative sequence stacks blocks bottom-to-top.
        let (w, h) = pack_coords(&[0, 1, 2], &[2, 1, 0], &shapes, &mut scratch, &mut x, &mut y);
        assert_eq!(y, vec![9.0, 5.0, 0.0]);
        assert_eq!(x, vec![0.0, 0.0, 0.0]);
        assert_eq!((w, h), (4.0, 12.0));
    }

    #[test]
    fn scratch_reuse_across_sizes() {
        let mut scratch = PackScratch::with_capacity(8);
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let big: Vec<Shape> = (0..8).map(|i| shape(1.0 + i as f64, 2.0)).collect();
        let perm: Vec<usize> = (0..8).collect();
        pack_coords(&perm, &perm, &big, &mut scratch, &mut x, &mut y);
        // Shrinking afterwards must not read stale state.
        let small = vec![shape(2.0, 3.0), shape(3.0, 3.0)];
        let (w, h) = pack_coords(&[1, 0], &[1, 0], &small, &mut scratch, &mut x, &mut y);
        assert_eq!(x, vec![3.0, 0.0]);
        assert_eq!((w, h), (5.0, 3.0));
    }
}

//! Sequence-pair floorplan representation.
//!
//! The metaheuristic baselines of the paper (SA, GA, PSO, and the RL-SA / RL
//! predecessors of [13]) operate on the classic sequence-pair topological
//! model [14]: two permutations `(s⁺, s⁻)` of the blocks encode the
//! left-of / below relations, and a longest-path evaluation packs the blocks
//! into a minimal enclosing rectangle.
//!
//! # Packing engines
//!
//! Packing is the innermost operation of every optimizer: a single SA run
//! packs thousands of candidate pairs, and the Table I sweep multiplies that
//! across methods, circuits and seeds. Two engines are provided:
//!
//! * [`SequencePair::pack`] / [`SequencePair::pack_into`] — the **FAST-SP**
//!   weighted-LCS evaluation ([`crate::lcs_pack`]), O(n log n) per pack via a
//!   Fenwick prefix-max sweep. `pack_into` reuses a caller-held
//!   [`PackScratch`] and output buffers, making steady-state packing
//!   allocation-free.
//! * [`SequencePair::pack_relaxation`] — the original O(n³) repeated
//!   relaxation longest-path solver, compiled only for tests or under the
//!   `legacy-pack` feature. It is retained as a differential-testing oracle
//!   (`tests/properties.rs` asserts bit-identical positions on random pairs)
//!   and as the baseline the `pack` criterion bench measures speedups
//!   against.
//!
//! Both engines evaluate the same recurrence
//! `x[b] = max { x[a] + w[a] : a left of b }` (and the y analogue), so their
//! results agree bit-for-bit; only the asymptotics differ.

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Circuit, Shape};

use crate::grid::Canvas;
use crate::lcs_pack::{pack_coords, PackScratch};
use crate::placement::Floorplan;
use crate::rect::Rect;

/// A sequence pair plus a chosen shape per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencePair {
    /// Positive sequence `s⁺` (block indices).
    pub positive: Vec<usize>,
    /// Negative sequence `s⁻` (block indices).
    pub negative: Vec<usize>,
    /// Chosen shape (width, height in µm) per block index.
    pub shapes: Vec<Shape>,
}

/// The packed realization of a sequence pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedFloorplan {
    /// Lower-left corners per block index, in µm.
    pub positions: Vec<(f64, f64)>,
    /// Rectangles per block index.
    pub rects: Vec<Rect>,
    /// Total width of the packing.
    pub width: f64,
    /// Total height of the packing.
    pub height: f64,
}

impl SequencePair {
    /// Creates the identity sequence pair (`0, 1, …, n−1` in both sequences)
    /// with the given shapes — this packs every block in a single row.
    pub fn identity(shapes: Vec<Shape>) -> Self {
        let n = shapes.len();
        SequencePair {
            positive: (0..n).collect(),
            negative: (0..n).collect(),
            shapes,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` for an empty sequence pair.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Packs the sequence pair with the FAST-SP O(n log n) evaluation and
    /// returns block positions and the enclosing rectangle dimensions.
    ///
    /// Block `a` is left of block `b` iff `a` precedes `b` in both sequences;
    /// `a` is below `b` iff `a` follows `b` in `s⁺` and precedes it in `s⁻`.
    ///
    /// Allocates fresh scratch and output buffers; optimizer inner loops
    /// should hold a [`PackScratch`] + [`PackedFloorplan`] and call
    /// [`Self::pack_into`] instead.
    pub fn pack(&self) -> PackedFloorplan {
        let mut scratch = PackScratch::with_capacity(self.len());
        let mut out = PackedFloorplan::default();
        self.pack_into(&mut scratch, &mut out);
        out
    }

    /// Packs into caller-provided scratch and output buffers; allocation-free
    /// once the buffers have grown to the problem size.
    pub fn pack_into(&self, scratch: &mut PackScratch, out: &mut PackedFloorplan) {
        let n = self.len();
        let (mut xs, mut ys) = scratch.take_coords();
        let (width, height) = pack_coords(
            &self.positive,
            &self.negative,
            &self.shapes,
            scratch,
            &mut xs,
            &mut ys,
        );
        out.width = width;
        out.height = height;
        out.positions.clear();
        out.positions.reserve(n);
        out.rects.clear();
        out.rects.reserve(n);
        for i in 0..n {
            out.positions.push((xs[i], ys[i]));
            out.rects.push(Rect::from_origin_size(
                xs[i],
                ys[i],
                self.shapes[i].width_um,
                self.shapes[i].height_um,
            ));
        }
        scratch.store_coords(xs, ys);
    }

    /// Packs with the original O(n³) repeated-relaxation longest-path solver.
    ///
    /// Kept as the differential-testing oracle for the FAST-SP engine and as
    /// the baseline of the `pack` criterion bench; compiled only for tests or
    /// when the `legacy-pack` feature is enabled.
    #[cfg(any(test, feature = "legacy-pack"))]
    pub fn pack_relaxation(&self) -> PackedFloorplan {
        let n = self.len();
        let mut pos_index = vec![0usize; n];
        let mut neg_index = vec![0usize; n];
        for (i, &b) in self.positive.iter().enumerate() {
            pos_index[b] = i;
        }
        for (i, &b) in self.negative.iter().enumerate() {
            neg_index[b] = i;
        }
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        // Longest-path via repeated relaxation in topological-ish order: the
        // precedence relations are acyclic, so n passes suffice.
        for _ in 0..n {
            let mut changed = false;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let before_pos = pos_index[a] < pos_index[b];
                    let before_neg = neg_index[a] < neg_index[b];
                    if before_pos && before_neg {
                        // a left of b
                        let min_x = x[a] + self.shapes[a].width_um;
                        if x[b] < min_x {
                            x[b] = min_x;
                            changed = true;
                        }
                    } else if !before_pos && before_neg {
                        // a below b
                        let min_y = y[a] + self.shapes[a].height_um;
                        if y[b] < min_y {
                            y[b] = min_y;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let rects: Vec<Rect> = (0..n)
            .map(|i| {
                Rect::from_origin_size(x[i], y[i], self.shapes[i].width_um, self.shapes[i].height_um)
            })
            .collect();
        let width = rects.iter().map(|r| r.x1).fold(0.0, f64::max);
        let height = rects.iter().map(|r| r.y1).fold(0.0, f64::max);
        PackedFloorplan {
            positions: (0..n).map(|i| (x[i], y[i])).collect(),
            rects,
            width,
            height,
        }
    }

    /// Converts the packed sequence pair into a [`Floorplan`] on the circuit's
    /// canvas, so that the shared metric functions (HPWL, dead space, reward)
    /// can be applied uniformly to RL and baseline results.
    ///
    /// Block positions are snapped to the placement grid; if the packing does
    /// not fit the canvas, it is scaled down uniformly first (this mirrors how
    /// a real flow would shrink an over-size baseline floorplan candidate).
    pub fn to_floorplan(&self, circuit: &Circuit, canvas: Canvas) -> Floorplan {
        let mut scratch = PackScratch::with_capacity(self.len());
        let mut fp = Floorplan::new(canvas);
        self.to_floorplan_into(circuit, canvas, &mut scratch, &mut fp);
        fp
    }

    /// [`Self::to_floorplan`] with caller-held buffers: the pack scratch and
    /// the output floorplan are reused, so a metaheuristic evaluating
    /// thousands of candidates allocates only inside this call's sort.
    pub fn to_floorplan_into(
        &self,
        circuit: &Circuit,
        canvas: Canvas,
        scratch: &mut PackScratch,
        fp: &mut Floorplan,
    ) {
        realize_floorplan(&self.positive, &self.negative, &self.shapes, circuit, canvas, scratch, fp);
    }
}

/// Packs `(positive, negative, shapes)` with FAST-SP and realizes the result
/// on the circuit's canvas, writing into `fp`.
///
/// This slice-based entry point lets optimizer hot loops evaluate a candidate
/// without materializing a [`SequencePair`] (which would clone both sequences
/// and every shape per evaluation).
pub fn realize_floorplan(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    circuit: &Circuit,
    canvas: Canvas,
    scratch: &mut PackScratch,
    fp: &mut Floorplan,
) {
    let n = shapes.len();
    let (mut xs, mut ys) = scratch.take_coords();
    let (width, height) = pack_coords(positive, negative, shapes, scratch, &mut xs, &mut ys);
    let scale_x = if width > canvas.width_um {
        canvas.width_um / width
    } else {
        1.0
    };
    let scale_y = if height > canvas.height_um {
        canvas.height_um / height
    } else {
        1.0
    };
    let scale = scale_x.min(scale_y);
    fp.reset(canvas);
    // Place in increasing x, y order to keep occupancy consistent.
    let mut order = scratch.take_order();
    order.clear();
    order.extend(0..n);
    order.sort_by(|&a, &b| {
        (ys[a], xs[a])
            .partial_cmp(&(ys[b], xs[b]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for &i in &order {
        let (px, py) = (xs[i], ys[i]);
        let shape = Shape::new(shapes[i].width_um * scale, shapes[i].height_um * scale);
        let cell_x = ((px * scale) / canvas.cell_width_um()).round() as usize;
        let cell_y = ((py * scale) / canvas.cell_height_um()).round() as usize;
        let cell = crate::grid::Cell::new(
            cell_x.min(crate::grid::GRID_SIZE - 1),
            cell_y.min(crate::grid::GRID_SIZE - 1),
        );
        // Grid snapping can create spurious overlaps; scan outward for the
        // nearest free anchor so every block ends up placed.
        let (gw, gh) = fp.grid_footprint(&shape);
        let target = find_nearest_fit(fp, cell, gw, gh);
        if let Some(cell) = target {
            let _ = fp.place(BlockId(circuit.blocks[i].id.index()), 0, shape, cell);
        }
    }
    scratch.store_coords(xs, ys);
    scratch.store_order(order);
}

/// Finds the nearest cell to `start` where a `gw × gh` footprint fits,
/// returning `None` if the grid is exhausted.
///
/// The fast path is a single word-level [`Floorplan::fits`] probe at `start`
/// (almost always free: grid snapping rarely collides). On a miss, one
/// [`BitGrid::free_anchors`](crate::bitgrid::BitGrid::free_anchors) pass
/// answers "where does this footprint fit?" for all 1024 cells at once, and
/// [`nearest_anchor`](crate::bitgrid::nearest_anchor) picks the set bit the
/// historical spiral scan would have found — Chebyshev radius ascending, then
/// Δy, then Δx — so placements are bit-identical to the scalar path while the
/// worst case drops from O(32² · gw · gh) cell probes to O(32 · log) word ops
/// plus a trailing-zeros ring scan.
pub fn find_nearest_fit(
    fp: &Floorplan,
    start: crate::grid::Cell,
    gw: usize,
    gh: usize,
) -> Option<crate::grid::Cell> {
    if fp.fits(start, gw, gh) {
        return Some(start);
    }
    let anchors = fp.grid().free_anchors(gw, gh);
    crate::bitgrid::nearest_anchor(&anchors, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn shapes(n: usize) -> Vec<Shape> {
        (0..n).map(|i| Shape::new(2.0 + i as f64, 3.0)).collect()
    }

    #[test]
    fn identity_packs_in_a_row() {
        let sp = SequencePair::identity(shapes(3));
        let packed = sp.pack();
        assert_eq!(packed.positions[0], (0.0, 0.0));
        assert_eq!(packed.positions[1], (2.0, 0.0));
        assert_eq!(packed.positions[2], (5.0, 0.0));
        assert_eq!(packed.width, 9.0);
        assert_eq!(packed.height, 3.0);
    }

    #[test]
    fn reversed_negative_packs_in_a_column() {
        let mut sp = SequencePair::identity(shapes(3));
        sp.negative.reverse();
        let packed = sp.pack();
        assert_eq!(packed.height, 9.0);
        assert!((packed.width - 4.0).abs() < 1e-9);
    }

    #[test]
    fn packing_has_no_overlaps() {
        let mut sp = SequencePair::identity(shapes(5));
        sp.positive = vec![2, 0, 4, 1, 3];
        sp.negative = vec![4, 1, 2, 3, 0];
        let packed = sp.pack();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(
                    !packed.rects[i].overlaps(&packed.rects[j]),
                    "blocks {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn fast_sp_matches_legacy_relaxation_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(0xFA57);
        for case in 0..100 {
            let n = rng.gen_range(1usize..24);
            let block_shapes: Vec<Shape> = (0..n)
                .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
                .collect();
            let mut sp = SequencePair::identity(block_shapes);
            sp.positive.shuffle(&mut rng);
            sp.negative.shuffle(&mut rng);
            let fast = sp.pack();
            let legacy = sp.pack_relaxation();
            assert_eq!(fast.positions, legacy.positions, "case {case} positions diverge");
            assert_eq!(fast.width, legacy.width, "case {case} width diverges");
            assert_eq!(fast.height, legacy.height, "case {case} height diverges");
        }
    }

    #[test]
    fn pack_into_reuses_buffers_and_matches_pack() {
        let mut scratch = PackScratch::new();
        let mut out = PackedFloorplan::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(2usize..16);
            let mut sp = SequencePair::identity(
                (0..n)
                    .map(|_| Shape::new(rng.gen_range(1.0..9.0), rng.gen_range(1.0..9.0)))
                    .collect(),
            );
            sp.positive.shuffle(&mut rng);
            sp.negative.shuffle(&mut rng);
            sp.pack_into(&mut scratch, &mut out);
            assert_eq!(out, sp.pack());
        }
    }

    #[test]
    fn to_floorplan_places_every_block() {
        let circuit = generators::ota5();
        let canvas = Canvas::for_circuit(&circuit);
        let shapes: Vec<Shape> = circuit
            .blocks
            .iter()
            .map(|b| Shape::from_area_and_aspect(b.area_um2, 1.0))
            .collect();
        let sp = SequencePair::identity(shapes);
        let fp = sp.to_floorplan(&circuit, canvas);
        assert_eq!(fp.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn empty_sequence_pair() {
        let sp = SequencePair::identity(Vec::new());
        assert!(sp.is_empty());
        let packed = sp.pack();
        assert_eq!(packed.width, 0.0);
        assert_eq!(packed.height, 0.0);
    }
}

//! Sequence-pair floorplan representation.
//!
//! The metaheuristic baselines of the paper (SA, GA, PSO, and the RL-SA / RL
//! predecessors of [13]) operate on the classic sequence-pair topological
//! model [14]: two permutations `(s⁺, s⁻)` of the blocks encode the
//! left-of / below relations, and a longest-path evaluation packs the blocks
//! into a minimal enclosing rectangle.

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Circuit, Shape};

use crate::grid::Canvas;
use crate::placement::Floorplan;
use crate::rect::Rect;

/// A sequence pair plus a chosen shape per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencePair {
    /// Positive sequence `s⁺` (block indices).
    pub positive: Vec<usize>,
    /// Negative sequence `s⁻` (block indices).
    pub negative: Vec<usize>,
    /// Chosen shape (width, height in µm) per block index.
    pub shapes: Vec<Shape>,
}

/// The packed realization of a sequence pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedFloorplan {
    /// Lower-left corners per block index, in µm.
    pub positions: Vec<(f64, f64)>,
    /// Rectangles per block index.
    pub rects: Vec<Rect>,
    /// Total width of the packing.
    pub width: f64,
    /// Total height of the packing.
    pub height: f64,
}

impl SequencePair {
    /// Creates the identity sequence pair (`0, 1, …, n−1` in both sequences)
    /// with the given shapes — this packs every block in a single row.
    pub fn identity(shapes: Vec<Shape>) -> Self {
        let n = shapes.len();
        SequencePair {
            positive: (0..n).collect(),
            negative: (0..n).collect(),
            shapes,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` for an empty sequence pair.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Packs the sequence pair with the standard longest-path evaluation and
    /// returns block positions and the enclosing rectangle dimensions.
    ///
    /// Block `a` is left of block `b` iff `a` precedes `b` in both sequences;
    /// `a` is below `b` iff `a` follows `b` in `s⁺` and precedes it in `s⁻`.
    pub fn pack(&self) -> PackedFloorplan {
        let n = self.len();
        let mut pos_index = vec![0usize; n];
        let mut neg_index = vec![0usize; n];
        for (i, &b) in self.positive.iter().enumerate() {
            pos_index[b] = i;
        }
        for (i, &b) in self.negative.iter().enumerate() {
            neg_index[b] = i;
        }
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        // Longest-path via repeated relaxation in topological-ish order: the
        // precedence relations are acyclic, so n passes suffice for these
        // small problem sizes (n ≤ a few dozen blocks).
        for _ in 0..n {
            let mut changed = false;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let before_pos = pos_index[a] < pos_index[b];
                    let before_neg = neg_index[a] < neg_index[b];
                    if before_pos && before_neg {
                        // a left of b
                        let min_x = x[a] + self.shapes[a].width_um;
                        if x[b] < min_x {
                            x[b] = min_x;
                            changed = true;
                        }
                    } else if !before_pos && before_neg {
                        // a below b
                        let min_y = y[a] + self.shapes[a].height_um;
                        if y[b] < min_y {
                            y[b] = min_y;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let rects: Vec<Rect> = (0..n)
            .map(|i| {
                Rect::from_origin_size(x[i], y[i], self.shapes[i].width_um, self.shapes[i].height_um)
            })
            .collect();
        let width = rects.iter().map(|r| r.x1).fold(0.0, f64::max);
        let height = rects.iter().map(|r| r.y1).fold(0.0, f64::max);
        PackedFloorplan {
            positions: (0..n).map(|i| (x[i], y[i])).collect(),
            rects,
            width,
            height,
        }
    }

    /// Converts the packed sequence pair into a [`Floorplan`] on the circuit's
    /// canvas, so that the shared metric functions (HPWL, dead space, reward)
    /// can be applied uniformly to RL and baseline results.
    ///
    /// Block positions are snapped to the placement grid; if the packing does
    /// not fit the canvas, it is scaled down uniformly first (this mirrors how
    /// a real flow would shrink an over-size baseline floorplan candidate).
    pub fn to_floorplan(&self, circuit: &Circuit, canvas: Canvas) -> Floorplan {
        let packed = self.pack();
        let scale_x = if packed.width > canvas.width_um {
            canvas.width_um / packed.width
        } else {
            1.0
        };
        let scale_y = if packed.height > canvas.height_um {
            canvas.height_um / packed.height
        } else {
            1.0
        };
        let scale = scale_x.min(scale_y);
        let mut fp = Floorplan::new(canvas);
        // Place in increasing x, y order to keep occupancy consistent.
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            (packed.positions[a].1, packed.positions[a].0)
                .partial_cmp(&(packed.positions[b].1, packed.positions[b].0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for i in order {
            let (px, py) = packed.positions[i];
            let shape = Shape::new(self.shapes[i].width_um * scale, self.shapes[i].height_um * scale);
            let cell_x = ((px * scale) / canvas.cell_width_um()).round() as usize;
            let cell_y = ((py * scale) / canvas.cell_height_um()).round() as usize;
            let cell = crate::grid::Cell::new(
                cell_x.min(crate::grid::GRID_SIZE - 1),
                cell_y.min(crate::grid::GRID_SIZE - 1),
            );
            // Grid snapping can create spurious overlaps; scan outward for the
            // nearest free anchor so every block ends up placed.
            let (gw, gh) = fp.grid_footprint(&shape);
            let target = find_nearest_fit(&fp, cell, gw, gh);
            if let Some(cell) = target {
                let _ = fp.place(BlockId(circuit.blocks[i].id.index()), 0, shape, cell);
            }
        }
        fp
    }
}

/// Scans outward from `start` for the nearest cell where a `gw × gh` footprint
/// fits, returning `None` if the grid is exhausted.
fn find_nearest_fit(
    fp: &Floorplan,
    start: crate::grid::Cell,
    gw: usize,
    gh: usize,
) -> Option<crate::grid::Cell> {
    use crate::grid::{Cell, GRID_SIZE};
    if fp.fits(start, gw, gh) {
        return Some(start);
    }
    for radius in 1..GRID_SIZE {
        for dy in -(radius as isize)..=(radius as isize) {
            for dx in -(radius as isize)..=(radius as isize) {
                if dx.abs().max(dy.abs()) != radius as isize {
                    continue;
                }
                let x = start.x as isize + dx;
                let y = start.y as isize + dy;
                if x < 0 || y < 0 {
                    continue;
                }
                let cell = Cell::new(x as usize, y as usize);
                if cell.x < GRID_SIZE && cell.y < GRID_SIZE && fp.fits(cell, gw, gh) {
                    return Some(cell);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    fn shapes(n: usize) -> Vec<Shape> {
        (0..n).map(|i| Shape::new(2.0 + i as f64, 3.0)).collect()
    }

    #[test]
    fn identity_packs_in_a_row() {
        let sp = SequencePair::identity(shapes(3));
        let packed = sp.pack();
        assert_eq!(packed.positions[0], (0.0, 0.0));
        assert_eq!(packed.positions[1], (2.0, 0.0));
        assert_eq!(packed.positions[2], (5.0, 0.0));
        assert_eq!(packed.width, 9.0);
        assert_eq!(packed.height, 3.0);
    }

    #[test]
    fn reversed_negative_packs_in_a_column() {
        let mut sp = SequencePair::identity(shapes(3));
        sp.negative.reverse();
        let packed = sp.pack();
        assert_eq!(packed.height, 9.0);
        assert!((packed.width - 4.0).abs() < 1e-9);
    }

    #[test]
    fn packing_has_no_overlaps() {
        let mut sp = SequencePair::identity(shapes(5));
        sp.positive = vec![2, 0, 4, 1, 3];
        sp.negative = vec![4, 1, 2, 3, 0];
        let packed = sp.pack();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(
                    !packed.rects[i].overlaps(&packed.rects[j]),
                    "blocks {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn to_floorplan_places_every_block() {
        let circuit = generators::ota5();
        let canvas = Canvas::for_circuit(&circuit);
        let shapes: Vec<Shape> = circuit
            .blocks
            .iter()
            .map(|b| Shape::from_area_and_aspect(b.area_um2, 1.0))
            .collect();
        let sp = SequencePair::identity(shapes);
        let fp = sp.to_floorplan(&circuit, canvas);
        assert_eq!(fp.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn empty_sequence_pair() {
        let sp = SequencePair::identity(Vec::new());
        assert!(sp.is_empty());
        let packed = sp.pack();
        assert_eq!(packed.width, 0.0);
        assert_eq!(packed.height, 0.0);
    }
}

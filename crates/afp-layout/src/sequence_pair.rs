//! Sequence-pair floorplan representation.
//!
//! The metaheuristic baselines of the paper (SA, GA, PSO, and the RL-SA / RL
//! predecessors of \[13\]) operate on the classic sequence-pair topological
//! model \[14\]: two permutations `(s⁺, s⁻)` of the blocks encode the
//! left-of / below relations, and a longest-path evaluation packs the blocks
//! into a minimal enclosing rectangle.
//!
//! # Packing engines
//!
//! Packing is the innermost operation of every optimizer: a single SA run
//! packs thousands of candidate pairs, and the Table I sweep multiplies that
//! across methods, circuits and seeds. Two engines are provided:
//!
//! * [`SequencePair::pack`] / [`SequencePair::pack_into`] — the **FAST-SP**
//!   weighted-LCS evaluation ([`crate::lcs_pack`]), O(n log n) per pack via a
//!   Fenwick prefix-max sweep. `pack_into` reuses a caller-held
//!   [`PackScratch`] and output buffers, making steady-state packing
//!   allocation-free.
//! * `SequencePair::pack_relaxation` — the original O(n³) repeated
//!   relaxation longest-path solver, compiled only for tests or under the
//!   `legacy-pack` feature. It is retained as a differential-testing oracle
//!   (`tests/properties.rs` asserts bit-identical positions on random pairs)
//!   and as the baseline the `pack` criterion bench measures speedups
//!   against.
//!
//! Both engines evaluate the same recurrence
//! `x[b] = max { x[a] + w[a] : a left of b }` (and the y analogue), so their
//! results agree bit-for-bit; only the asymptotics differ.
//!
//! # Grid realization engines
//!
//! Realizing a packed pair on the 32×32 canvas (`pack → scale → snap →
//! nearest-fit placement`) is the dominant stage of every SA/GA/PSO cost
//! evaluation, yet a typical perturbation moves only 1–2 blocks — most
//! re-snaps recompute identical placements. Two entry points are provided:
//!
//! * [`realize_floorplan`] — the stateless full path: reset the floorplan and
//!   snap every block.
//! * [`realize_floorplan_incremental`] — the same computation through a
//!   [`RealizeCache`] that remembers the previous episode's snap decisions
//!   (packed position, effective shape, footprint, chosen anchor, and the
//!   occupancy the decision was made against, per placement-order position):
//!   * the longest placement-order **prefix** whose snap inputs are unchanged
//!     is kept placed verbatim — zero work per block;
//!   * later positions whose inputs are unchanged *and* whose occupancy
//!     matches the cached pre-decision grid are **replayed** as one direct
//!     [`BitGrid::try_occupy`](crate::bitgrid::BitGrid::try_occupy) call —
//!     no µm→cell divides, no ring scan;
//!   * everything else re-runs the full snap search.
//!
//! ## Incremental invariants (when the cache must be invalidated)
//!
//! Correctness rests on one induction: a snap decision at placement-order
//! position `k` is a deterministic function of (a) the block's snap inputs —
//! block id, packed position, effective shape, canvas scale — and (b) the
//! grid occupancy left by positions `0..k`. The cache may therefore reuse a
//! decision only while both are provably unchanged, and it re-checks both on
//! every call; callers never need to invalidate on candidate perturbations,
//! undo, crossover, or shape changes — those flow into the diff. The cases a
//! caller **must** handle:
//!
//! * The `fp` buffer passed in must be exactly the floorplan produced by the
//!   previous [`realize_floorplan_incremental`] call with the same cache.
//!   Mutating it between calls (placing, unplacing, resetting) breaks the
//!   prefix-retention step. The cache fingerprints `fp` (canvas, placement
//!   count, full occupancy bitboard) and falls back to a full rebuild on any
//!   mismatch, so realistic interleavings degrade to correct-but-slow; a
//!   mutation that preserves all three fingerprints but alters placement
//!   records requires an explicit [`RealizeCache::invalidate`].
//! * Reusing one cache across different circuits is safe only because block
//!   ids participate in the diff; reusing it across *problems* whose circuits
//!   share ids but differ in connectivity is fine for realization (snap
//!   inputs are id + geometry only) but the caller owns metric consistency.
//! * Canvas or scale changes, different block counts, and a never-filled
//!   cache all degrade to a full rebuild automatically.

use serde::{Deserialize, Serialize};

use afp_circuit::{BlockId, Circuit, Shape};

use crate::bitgrid::BitGrid;
use crate::grid::{Canvas, Cell};
use crate::lcs_pack::{pack_coords, pack_coords_cached, PackCache, PackScratch};
use crate::placement::Floorplan;
use crate::rect::Rect;

/// A sequence pair plus a chosen shape per block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequencePair {
    /// Positive sequence `s⁺` (block indices).
    pub positive: Vec<usize>,
    /// Negative sequence `s⁻` (block indices).
    pub negative: Vec<usize>,
    /// Chosen shape (width, height in µm) per block index.
    pub shapes: Vec<Shape>,
}

/// The packed realization of a sequence pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedFloorplan {
    /// Lower-left corners per block index, in µm.
    pub positions: Vec<(f64, f64)>,
    /// Rectangles per block index.
    pub rects: Vec<Rect>,
    /// Total width of the packing.
    pub width: f64,
    /// Total height of the packing.
    pub height: f64,
}

impl SequencePair {
    /// Creates the identity sequence pair (`0, 1, …, n−1` in both sequences)
    /// with the given shapes — this packs every block in a single row.
    pub fn identity(shapes: Vec<Shape>) -> Self {
        let n = shapes.len();
        SequencePair {
            positive: (0..n).collect(),
            negative: (0..n).collect(),
            shapes,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Returns `true` for an empty sequence pair.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Packs the sequence pair with the FAST-SP O(n log n) evaluation and
    /// returns block positions and the enclosing rectangle dimensions.
    ///
    /// Block `a` is left of block `b` iff `a` precedes `b` in both sequences;
    /// `a` is below `b` iff `a` follows `b` in `s⁺` and precedes it in `s⁻`.
    ///
    /// Allocates fresh scratch and output buffers; optimizer inner loops
    /// should hold a [`PackScratch`] + [`PackedFloorplan`] and call
    /// [`Self::pack_into`] instead.
    pub fn pack(&self) -> PackedFloorplan {
        let mut scratch = PackScratch::with_capacity(self.len());
        let mut out = PackedFloorplan::default();
        self.pack_into(&mut scratch, &mut out);
        out
    }

    /// Packs into caller-provided scratch and output buffers; allocation-free
    /// once the buffers have grown to the problem size.
    ///
    /// # Examples
    ///
    /// ```
    /// use afp_circuit::Shape;
    /// use afp_layout::sequence_pair::PackedFloorplan;
    /// use afp_layout::{PackScratch, SequencePair};
    ///
    /// let mut sp = SequencePair::identity(vec![Shape::new(2.0, 3.0), Shape::new(4.0, 3.0)]);
    /// let mut scratch = PackScratch::with_capacity(sp.len());
    /// let mut out = PackedFloorplan::default();
    /// sp.pack_into(&mut scratch, &mut out);
    /// assert_eq!(out.positions, vec![(0.0, 0.0), (2.0, 0.0)]);
    /// assert_eq!((out.width, out.height), (6.0, 3.0));
    ///
    /// // Reusing the same scratch, later packs allocate nothing once warm.
    /// sp.negative.reverse(); // stack the blocks instead
    /// sp.pack_into(&mut scratch, &mut out);
    /// assert_eq!(out.height, 6.0);
    /// ```
    pub fn pack_into(&self, scratch: &mut PackScratch, out: &mut PackedFloorplan) {
        let n = self.len();
        let (mut xs, mut ys) = scratch.take_coords();
        let (width, height) = pack_coords(
            &self.positive,
            &self.negative,
            &self.shapes,
            scratch,
            &mut xs,
            &mut ys,
        );
        out.width = width;
        out.height = height;
        out.positions.clear();
        out.positions.reserve(n);
        out.rects.clear();
        out.rects.reserve(n);
        for i in 0..n {
            out.positions.push((xs[i], ys[i]));
            out.rects.push(Rect::from_origin_size(
                xs[i],
                ys[i],
                self.shapes[i].width_um,
                self.shapes[i].height_um,
            ));
        }
        scratch.store_coords(xs, ys);
    }

    /// Packs with the original O(n³) repeated-relaxation longest-path solver.
    ///
    /// Kept as the differential-testing oracle for the FAST-SP engine and as
    /// the baseline of the `pack` criterion bench; compiled only for tests or
    /// when the `legacy-pack` feature is enabled.
    #[cfg(any(test, feature = "legacy-pack"))]
    pub fn pack_relaxation(&self) -> PackedFloorplan {
        let n = self.len();
        let mut pos_index = vec![0usize; n];
        let mut neg_index = vec![0usize; n];
        for (i, &b) in self.positive.iter().enumerate() {
            pos_index[b] = i;
        }
        for (i, &b) in self.negative.iter().enumerate() {
            neg_index[b] = i;
        }
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        // Longest-path via repeated relaxation in topological-ish order: the
        // precedence relations are acyclic, so n passes suffice.
        for _ in 0..n {
            let mut changed = false;
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let before_pos = pos_index[a] < pos_index[b];
                    let before_neg = neg_index[a] < neg_index[b];
                    if before_pos && before_neg {
                        // a left of b
                        let min_x = x[a] + self.shapes[a].width_um;
                        if x[b] < min_x {
                            x[b] = min_x;
                            changed = true;
                        }
                    } else if !before_pos && before_neg {
                        // a below b
                        let min_y = y[a] + self.shapes[a].height_um;
                        if y[b] < min_y {
                            y[b] = min_y;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let rects: Vec<Rect> = (0..n)
            .map(|i| {
                Rect::from_origin_size(x[i], y[i], self.shapes[i].width_um, self.shapes[i].height_um)
            })
            .collect();
        let width = rects.iter().map(|r| r.x1).fold(0.0, f64::max);
        let height = rects.iter().map(|r| r.y1).fold(0.0, f64::max);
        PackedFloorplan {
            positions: (0..n).map(|i| (x[i], y[i])).collect(),
            rects,
            width,
            height,
        }
    }

    /// Converts the packed sequence pair into a [`Floorplan`] on the circuit's
    /// canvas, so that the shared metric functions (HPWL, dead space, reward)
    /// can be applied uniformly to RL and baseline results.
    ///
    /// Block positions are snapped to the placement grid; if the packing does
    /// not fit the canvas, it is scaled down uniformly first (this mirrors how
    /// a real flow would shrink an over-size baseline floorplan candidate).
    pub fn to_floorplan(&self, circuit: &Circuit, canvas: Canvas) -> Floorplan {
        let mut scratch = PackScratch::with_capacity(self.len());
        let mut fp = Floorplan::new(canvas);
        self.to_floorplan_into(circuit, canvas, &mut scratch, &mut fp);
        fp
    }

    /// [`Self::to_floorplan`] with caller-held buffers: the pack scratch and
    /// the output floorplan are reused, so a metaheuristic evaluating
    /// thousands of candidates allocates only inside this call's sort.
    pub fn to_floorplan_into(
        &self,
        circuit: &Circuit,
        canvas: Canvas,
        scratch: &mut PackScratch,
        fp: &mut Floorplan,
    ) {
        realize_floorplan(&self.positive, &self.negative, &self.shapes, circuit, canvas, scratch, fp);
    }
}

/// Packs `(positive, negative, shapes)` with FAST-SP and realizes the result
/// on the circuit's canvas, writing into `fp`.
///
/// This slice-based entry point lets optimizer hot loops evaluate a candidate
/// without materializing a [`SequencePair`] (which would clone both sequences
/// and every shape per evaluation).
pub fn realize_floorplan(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    circuit: &Circuit,
    canvas: Canvas,
    scratch: &mut PackScratch,
    fp: &mut Floorplan,
) {
    let n = shapes.len();
    let (mut xs, mut ys) = scratch.take_coords();
    let (width, height) = pack_coords(positive, negative, shapes, scratch, &mut xs, &mut ys);
    let scale_x = if width > canvas.width_um {
        canvas.width_um / width
    } else {
        1.0
    };
    let scale_y = if height > canvas.height_um {
        canvas.height_um / height
    } else {
        1.0
    };
    let scale = scale_x.min(scale_y);
    fp.reset(canvas);
    // Place in increasing x, y order to keep occupancy consistent.
    let mut order = scratch.take_order();
    sort_placement_order(&mut order, &xs, &ys, n);
    // Cell sizes at the floorplan's own grid side: identical bits to
    // `canvas.cell_width_um()` on the default 32×32 grid (same division).
    let side = fp.grid_side();
    let cw = canvas.width_um / side as f64;
    let ch = canvas.height_um / side as f64;
    for &i in &order {
        let (px, py) = (xs[i], ys[i]);
        let shape = Shape::new(shapes[i].width_um * scale, shapes[i].height_um * scale);
        let cell_x = ((px * scale) / cw).round() as usize;
        let cell_y = ((py * scale) / ch).round() as usize;
        let cell = crate::grid::Cell::new(cell_x.min(side - 1), cell_y.min(side - 1));
        // Grid snapping can create spurious overlaps; scan outward for the
        // nearest free anchor so every block ends up placed.
        let (gw, gh) = fp.grid_footprint(&shape);
        let target = find_nearest_fit(fp, cell, gw, gh);
        if let Some(cell) = target {
            let _ = fp.place(BlockId(circuit.blocks[i].id.index()), 0, shape, cell);
        }
    }
    scratch.store_coords(xs, ys);
    scratch.store_order(order);
}

/// Fills `order` with `0..n` sorted by increasing packed `(y, x)`, ties by
/// block index — the placement order both realization paths share.
///
/// The index tie-break makes the key total and unique, so the result is
/// independent of the input permutation and of sort stability — exactly the
/// order the historical stable `sort_by(partial_cmp)` over a fresh `0..n`
/// produced (ties only arise for degenerate zero-dimension shapes; positive
/// rectangles of a valid packing cannot share a corner). That allows two
/// exact speedups:
///
/// * the previous episode's `order` is kept as the starting permutation —
///   after a local perturbation it is usually nearly sorted already, which
///   the pattern-defeating unstable sort exploits;
/// * packed coordinates are non-negative finite, where the IEEE-754 bit
///   pattern is order-isomorphic to the value, so each comparison is integer
///   compares instead of the f64 `partial_cmp` chain.
fn sort_placement_order(order: &mut Vec<usize>, xs: &[f64], ys: &[f64], n: usize) {
    // The buffer is only ever written by this function, so a length match
    // means it already holds a permutation of `0..n`.
    if order.len() != n {
        order.clear();
        order.extend(0..n);
    }
    order.sort_unstable_by(|&a, &b| {
        (ys[a].to_bits(), xs[a].to_bits(), a).cmp(&(ys[b].to_bits(), xs[b].to_bits(), b))
    });
}

/// One cached snap decision of the incremental realization engine: the inputs
/// that determined it (block, packed position, effective shape), the decision
/// itself (scaled shape, footprint, anchor), and the occupancy the snap
/// search ran against — replaying the anchor is valid only when the current
/// grid is bit-identical to `grid_before`.
#[derive(Debug, Clone, Copy)]
struct SnapStep {
    /// Packed lower-left corner in µm, before canvas scaling.
    px: f64,
    /// See `px`.
    py: f64,
    /// Effective (unscaled) shape the decision was derived from. The placed
    /// (canvas-scaled) shape is recomputed as `shape × scale` on replay —
    /// two multiplies beat 16 cached bytes per step.
    shape: Shape,
    /// Block index (into `shapes`) at this placement-order position.
    block: u32,
    /// The block's circuit id (guards cache reuse across circuits).
    id: u32,
    /// Grid footprint of the scaled shape (grid cells fit in a byte).
    gw: u8,
    /// See `gw`.
    gh: u8,
    /// Snap-search start: the grid cell the packed position rounds to. Two
    /// episodes whose raw coordinates differ but round to the same start make
    /// identical decisions — the diff compares at this level.
    start_x: u8,
    /// See `start_x`.
    start_y: u8,
    /// Snap result: anchor cell, or [`SnapStep::NO_ANCHOR`] in `anchor_x`
    /// when the grid was exhausted.
    anchor_x: u8,
    /// See `anchor_x`.
    anchor_y: u8,
}

impl SnapStep {
    /// `anchor_x` sentinel for "no anchor found". Cells are stored in a byte,
    /// so the incremental engine supports grid sides up to 255 exclusive —
    /// far above the 128-cell side the large-n tier tops out at.
    const NO_ANCHOR: u8 = u8::MAX;

    #[inline]
    fn start(&self) -> Cell {
        Cell::new(self.start_x as usize, self.start_y as usize)
    }

    #[inline]
    fn anchor(&self) -> Option<Cell> {
        (self.anchor_x != Self::NO_ANCHOR)
            .then(|| Cell::new(self.anchor_x as usize, self.anchor_y as usize))
    }

    /// Whether two steps wrote the same footprint to the grid — the per-step
    /// invariant behind the replay chain: while every position so far has an
    /// unchanged footprint, the occupancy equals the cached episode's.
    #[inline]
    fn same_footprint(&self, other: &SnapStep) -> bool {
        self.anchor_x == other.anchor_x
            && self.anchor_y == other.anchor_y
            && self.gw == other.gw
            && self.gh == other.gh
    }
}

/// Cached state of [`realize_floorplan_incremental`]: the previous episode's
/// snap decisions plus a fingerprint of the floorplan they produced. See the
/// module docs for the invariants; [`RealizeCache::invalidate`] forces the
/// next call onto the full path.
///
/// The public counters make the engine observable: `kept_blocks` (prefix
/// placements retained with zero work), `replayed_blocks` (direct
/// `try_occupy` replays), `searched_blocks` (full snap searches) and
/// `full_rebuilds` partition the work across `episodes` calls; the `last_*`
/// fields describe the most recent call only.
#[derive(Debug, Clone, Default)]
pub struct RealizeCache {
    /// Snap decisions of the previous episode, in placement order; updated in
    /// place as the new episode is realized.
    steps: Vec<SnapStep>,
    /// Per-position state of the incremental FAST-SP pack (the previous
    /// evaluation's LCS sweeps); see [`PackCache`].
    pack: PackCache,
    /// Block indices re-searched by the most recent episode — the dirty set
    /// the incremental metrics layer consumes ([`RealizeCache::dirty_blocks`]).
    dirty: Vec<u32>,
    /// Whether the most recent episode realized from scratch (the dirty set
    /// is then the whole circuit).
    last_full_rebuild: bool,
    /// Canvas of the cached episode.
    canvas: Option<Canvas>,
    /// Canvas scale factor of the cached episode.
    scale: f64,
    /// Occupancy after the cached episode — fingerprint of the `fp` buffer.
    final_grid: BitGrid,
    /// Number of blocks actually placed by the cached episode.
    placed_count: usize,
    /// Incremental realizations performed with this cache.
    pub episodes: u64,
    /// Episodes that fell back to a from-scratch realization.
    pub full_rebuilds: u64,
    /// Blocks kept placed verbatim (unchanged placement-order prefix).
    pub kept_blocks: u64,
    /// Blocks replayed as a direct `try_occupy` (no divides, no ring scan).
    pub replayed_blocks: u64,
    /// Blocks that re-ran the full snap search.
    pub searched_blocks: u64,
    /// Prefix length (blocks kept) of the most recent call.
    pub last_kept: usize,
    /// Replayed blocks of the most recent call.
    pub last_replayed: usize,
    /// Searched blocks of the most recent call.
    pub last_searched: usize,
}

impl RealizeCache {
    /// Creates an empty cache; the first realization is a full rebuild.
    pub fn new() -> Self {
        RealizeCache::default()
    }

    /// Drops the cached episode, forcing the next call onto the full path.
    /// Needed only when the floorplan buffer was mutated externally in a way
    /// the fingerprint cannot detect (module docs); perturb/undo/crossover of
    /// the candidate itself never require it.
    pub fn invalidate(&mut self) {
        self.canvas = None;
        self.steps.clear();
        self.pack.invalidate();
    }

    /// Counters of the incremental FAST-SP pack engine riding in this cache
    /// (positions replayed vs swept, per pass).
    pub fn pack_stats(&self) -> &PackCache {
        &self.pack
    }

    /// Block indices whose placement **may** differ from the episode before —
    /// the blocks the most recent [`realize_floorplan_incremental`] call
    /// re-ran the snap search for. Blocks absent from this set (kept prefix,
    /// replays) provably kept their exact placement record, so downstream
    /// consumers (the incremental metrics layer) can skip them. Meaningless
    /// when [`RealizeCache::last_was_full_rebuild`] returns `true`.
    pub fn dirty_blocks(&self) -> &[u32] {
        &self.dirty
    }

    /// Whether the most recent episode realized from scratch (cold cache,
    /// canvas/scale change, external floorplan mutation): every placement may
    /// then differ and [`RealizeCache::dirty_blocks`] must not be trusted.
    pub fn last_was_full_rebuild(&self) -> bool {
        self.last_full_rebuild
    }

    /// Fraction of blocks across all episodes that skipped the snap search
    /// (kept or replayed), or 0.0 before the first episode.
    pub fn hit_rate(&self) -> f64 {
        let total = self.kept_blocks + self.replayed_blocks + self.searched_blocks;
        if total == 0 {
            return 0.0;
        }
        (self.kept_blocks + self.replayed_blocks) as f64 / total as f64
    }
}

/// [`realize_floorplan`] through a [`RealizeCache`]: bit-identical output,
/// but blocks whose snap inputs and observed occupancy are unchanged from the
/// previous episode skip the snap search (module docs), and the FAST-SP pack
/// itself replays its unchanged sweep positions ([`PackCache`]). `fp` must be
/// the floorplan produced by the previous call with this cache (or any
/// floorplan if the cache is fresh/invalidated — the fingerprint check
/// degrades mismatches to a full rebuild).
///
/// After the call, [`RealizeCache::dirty_blocks`] /
/// [`RealizeCache::last_was_full_rebuild`] describe which placements may have
/// changed — the dirty set the incremental metrics layer
/// (`afp_layout::metrics::episode_reward_incremental`) consumes.
///
/// # Examples
///
/// ```
/// use afp_circuit::{generators, Shape};
/// use afp_layout::sequence_pair::{realize_floorplan, realize_floorplan_incremental};
/// use afp_layout::{Canvas, Floorplan, PackScratch, RealizeCache};
///
/// let circuit = generators::ota5();
/// let canvas = Canvas::for_circuit(&circuit);
/// let n = circuit.num_blocks();
/// let mut shapes: Vec<Shape> = circuit
///     .blocks
///     .iter()
///     .map(|b| Shape::from_area_and_aspect(b.area_um2, 1.0))
///     .collect();
/// let positive: Vec<usize> = (0..n).collect();
/// let negative: Vec<usize> = (0..n).collect();
///
/// let mut scratch = PackScratch::with_capacity(n);
/// let mut fp = Floorplan::new(canvas);
/// let mut cache = RealizeCache::new();
/// realize_floorplan_incremental(
///     &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp, &mut cache,
/// );
///
/// // Perturb one block's shape: only the dirty suffix re-snaps, and the
/// // result stays bit-identical to a from-scratch realization.
/// shapes[2] = Shape::from_area_and_aspect(circuit.blocks[2].area_um2, 2.0);
/// realize_floorplan_incremental(
///     &positive, &negative, &shapes, &circuit, canvas, &mut scratch, &mut fp, &mut cache,
/// );
/// let mut fresh = Floorplan::new(canvas);
/// realize_floorplan(
///     &positive, &negative, &shapes, &circuit, canvas, &mut PackScratch::new(), &mut fresh,
/// );
/// assert_eq!(fp, fresh);
/// assert!(cache.hit_rate() > 0.0, "the unchanged prefix was kept");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn realize_floorplan_incremental(
    positive: &[usize],
    negative: &[usize],
    shapes: &[Shape],
    circuit: &Circuit,
    canvas: Canvas,
    scratch: &mut PackScratch,
    fp: &mut Floorplan,
    cache: &mut RealizeCache,
) {
    let n = shapes.len();
    let (mut xs, mut ys) = scratch.take_coords();
    // Incremental FAST-SP: positions with unchanged inputs replay the
    // previous evaluation's sweep state (bit-identical to `pack_coords`).
    let (width, height) =
        pack_coords_cached(positive, negative, shapes, scratch, &mut cache.pack, &mut xs, &mut ys);
    let scale_x = if width > canvas.width_um {
        canvas.width_um / width
    } else {
        1.0
    };
    let scale_y = if height > canvas.height_um {
        canvas.height_um / height
    } else {
        1.0
    };
    let scale = scale_x.min(scale_y);

    // Identical placement order to the full path: increasing (y, x).
    let mut order = scratch.take_order();
    sort_placement_order(&mut order, &xs, &ys, n);

    cache.episodes += 1;
    cache.last_kept = 0;
    cache.last_replayed = 0;
    cache.last_searched = 0;
    cache.dirty.clear();
    // The cached episode is reusable only if it was produced under the same
    // canvas/scale/block count AND `fp` still fingerprints as its output.
    let reusable = cache.canvas == Some(canvas)
        && cache.scale == scale
        && cache.steps.len() == n
        && fp.canvas() == &canvas
        && fp.num_placed() == cache.placed_count
        && *fp.grid() == cache.final_grid;
    cache.last_full_rebuild = !reusable;

    // Hoisted once per episode (bit-identical to the per-block calls the
    // full path's loop makes — same operands, same operations).
    let side = fp.grid_side();
    assert!(
        side < SnapStep::NO_ANCHOR as usize,
        "incremental realization stores cells in a byte; grid side {side} too large"
    );
    let cw = canvas.width_um / side as f64;
    let ch = canvas.height_um / side as f64;
    let grid_max = side - 1;
    // The snap-search start cell of block `i` — the µm→cell rounding of the
    // full path, verbatim.
    let start_of = |px: f64, py: f64| -> Cell {
        let cell_x = ((px * scale) / cw).round() as usize;
        let cell_y = ((py * scale) / ch).round() as usize;
        Cell::new(cell_x.min(grid_max), cell_y.min(grid_max))
    };

    // Phase 1 — longest placement-order prefix whose snap inputs are
    // unchanged: those placements are kept verbatim; everything after is
    // popped off the floorplan (placements are stored in order, so dropping
    // the dirty suffix is a stack pop). "Unchanged" is judged at the
    // decision level: same block/shape and a packed position that rounds to
    // the same start cell — sub-cell coordinate drift stays clean.
    let mut prefix = 0usize;
    if reusable {
        while prefix < n {
            let i = order[prefix];
            let s = &mut cache.steps[prefix];
            if s.block as usize != i
                || s.id as usize != circuit.blocks[i].id.index()
                || s.shape != shapes[i]
            {
                break;
            }
            if s.px != xs[i] || s.py != ys[i] {
                if start_of(xs[i], ys[i]) != s.start() {
                    break;
                }
                // Same decision from drifted coordinates: keep the placement,
                // refresh the raw coordinates so the next episode's diff hits
                // the cheap bitwise compare again.
                s.px = xs[i];
                s.py = ys[i];
            }
            prefix += 1;
        }
    }
    if prefix == 0 {
        fp.reset(canvas);
        if !reusable {
            cache.full_rebuilds += 1;
            cache.steps.clear();
        }
    } else {
        let keep = cache.steps[..prefix]
            .iter()
            .filter(|s| s.anchor_x != SnapStep::NO_ANCHOR)
            .count();
        fp.truncate_placed(keep);
    }

    // Phase 2 — dirty suffix, updating the cached steps in place. While
    // every position so far re-placed the exact cached footprint, the
    // occupancy still equals the cached episode's (`grid_matches` chain), so
    // a position with unchanged snap inputs replays the cached anchor as one
    // `try_occupy` — no divides, no search. Once a footprint diverges, later
    // positions fall back to the search; a position with an unchanged shape
    // still reuses the cached scaled shape and footprint.
    let mut grid_matches = reusable;
    let full_rebuild = cache.steps.len() != n;
    for pos in prefix..n {
        let i = order[pos];
        let id = circuit.blocks[i].id;
        let (px, py) = (xs[i], ys[i]);
        let mut start = None;
        let mut reuse_shape = None;
        if !full_rebuild {
            let s = &cache.steps[pos];
            if s.block as usize == i && s.id as usize == id.index() && s.shape == shapes[i] {
                let st = if s.px == px && s.py == py {
                    s.start()
                } else {
                    start_of(px, py)
                };
                // Same shape (and episode-constant scale) ⇒ the cached
                // footprint is still exact; the scaled shape recomputes to
                // the same bits.
                let (gw, gh) = (s.gw as usize, s.gh as usize);
                reuse_shape = Some((gw, gh));
                if grid_matches && st == s.start() {
                    if let Some(cell) = s.anchor() {
                        let scaled =
                            Shape::new(shapes[i].width_um * scale, shapes[i].height_um * scale);
                        let replayed = fp.place_prefit(id, 0, scaled, cell, gw, gh);
                        debug_assert!(replayed.is_ok(), "replayed anchor must still fit");
                    }
                    let s = &mut cache.steps[pos];
                    s.px = px;
                    s.py = py;
                    cache.replayed_blocks += 1;
                    cache.last_replayed += 1;
                    continue;
                }
                start = Some(st);
            }
        }
        let scaled = Shape::new(shapes[i].width_um * scale, shapes[i].height_um * scale);
        let (gw, gh) = reuse_shape.unwrap_or_else(|| fp.grid_footprint(&scaled));
        let start = start.unwrap_or_else(|| start_of(px, py));
        let anchor = find_nearest_fit(fp, start, gw, gh);
        if let Some(cell) = anchor {
            let _ = fp.place_prefit(id, 0, scaled, cell, gw, gh);
        }
        let step = SnapStep {
            px,
            py,
            shape: shapes[i],
            block: i as u32,
            id: id.index() as u32,
            gw: gw as u8,
            gh: gh as u8,
            start_x: start.x as u8,
            start_y: start.y as u8,
            anchor_x: anchor.map_or(SnapStep::NO_ANCHOR, |c| c.x as u8),
            anchor_y: anchor.map_or(0, |c| c.y as u8),
        };
        if full_rebuild {
            // The dirty list stays empty: a full rebuild reports itself via
            // `last_was_full_rebuild` and consumers treat everything as dirty.
            cache.steps.push(step);
        } else {
            grid_matches = grid_matches && step.same_footprint(&cache.steps[pos]);
            cache.steps[pos] = step;
            // Conservative superset: every re-searched block is reported,
            // including the many that land exactly where they did the episode
            // before — consumers dedup and filter by actual movement, which
            // is cheaper than a precise per-step comparison here.
            cache.dirty.push(i as u32);
        }
        cache.searched_blocks += 1;
        cache.last_searched += 1;
    }
    cache.canvas = Some(canvas);
    cache.scale = scale;
    cache.final_grid.clone_from(fp.grid());
    cache.placed_count = fp.num_placed();
    cache.kept_blocks += prefix as u64;
    cache.last_kept = prefix;
    scratch.store_coords(xs, ys);
    scratch.store_order(order);
}

/// Ring radius up to which [`find_nearest_fit`] probes cells directly with
/// word-level `fits` instead of building the full free-anchor map. On packed
/// floorplans ~60 % of snaps collide, but the nearest free anchor is almost
/// always within a couple of cells — a handful of ~2 ns probes beats the
/// O(32·log) anchor-map build by an order of magnitude.
const PROBE_RADIUS: usize = 3;

/// Finds the nearest cell to `start` where a `gw × gh` footprint fits,
/// returning `None` if the grid is exhausted.
///
/// The fast path is a single word-level [`Floorplan::fits`] probe at `start`.
/// On a miss, rings of Chebyshev radius `1..=PROBE_RADIUS` are resolved
/// from per-row anchor masks
/// ([`BitGrid::row_anchors`](crate::bitgrid::BitGrid::row_anchors), computed
/// lazily for the 7-row band and cached across radii): a whole ring row's
/// candidates are answered by one mask AND instead of per-cell probes that
/// each re-AND the `gh` covered rows. Only when those all miss — rare outside
/// near-full grids — one
/// [`BitGrid::free_anchors`](crate::bitgrid::BitGrid::free_anchors) pass
/// answers "where does this footprint fit?" for all cells at once, and
/// [`nearest_anchor_from`](crate::bitgrid::nearest_anchor_from) continues the
/// identical scan from radius `PROBE_RADIUS + 1`. Candidates are considered
/// in the historical spiral order (radius ascending, then Δy from −r to r,
/// then Δx ascending) with the per-cell [`BitGrid::fits`] predicate exactly
/// (an anchor-mask bit ⟺ `fits`), so placements are bit-identical to the
/// historical path.
pub fn find_nearest_fit(
    fp: &Floorplan,
    start: crate::grid::Cell,
    gw: usize,
    gh: usize,
) -> Option<crate::grid::Cell> {
    use crate::bitgrid::{first_set_in_range, row_bit, MAX_WPR};
    if fp.fits(start, gw, gh) {
        return Some(start);
    }
    let grid = fp.grid();
    let width = grid.width() as isize;
    let height = grid.height() as isize;
    let wpr = grid.words_per_row();
    const BAND_ROWS: usize = 2 * PROBE_RADIUS + 1;
    if wpr == 1 {
        // One-word rows (every grid up to 64 columns, the 32×32 default
        // included): each band row's anchor mask is a single u64 held by
        // value, sparing the multi-word band buffer and its per-row slices.
        let mut band = [0u64; BAND_ROWS];
        let mut filled = [false; BAND_ROWS];
        for radius in 1..=(PROBE_RADIUS as isize) {
            for dy in -radius..=radius {
                let y = start.y as isize + dy;
                if !(0..height).contains(&y) {
                    continue;
                }
                let bi = (dy + PROBE_RADIUS as isize) as usize;
                if !filled[bi] {
                    grid.row_anchors_into(
                        y as usize,
                        gw,
                        gh,
                        std::slice::from_mut(&mut band[bi]),
                    );
                    filled[bi] = true;
                }
                let anchors = band[bi];
                if anchors == 0 {
                    continue;
                }
                if dy.abs() == radius {
                    // Ring boundary row: all Δx ascending ⇒ the lowest set
                    // anchor bit in the clamped window [x − r, x + r].
                    let lo = (start.x as isize - radius).max(0) as usize;
                    let hi = ((start.x as isize + radius).min(width - 1)) as usize;
                    let window = if hi - lo + 1 == 64 {
                        !0u64
                    } else {
                        ((1u64 << (hi - lo + 1)) - 1) << lo
                    };
                    let hits = anchors & window;
                    if hits != 0 {
                        return Some(Cell::new(hits.trailing_zeros() as usize, y as usize));
                    }
                } else {
                    // Interior row: only Δx = −r then Δx = +r are on the ring.
                    let left = start.x as isize - radius;
                    if left >= 0 && (anchors >> left) & 1 == 1 {
                        return Some(Cell::new(left as usize, y as usize));
                    }
                    let right = start.x as isize + radius;
                    if right < width && (anchors >> right) & 1 == 1 {
                        return Some(Cell::new(right as usize, y as usize));
                    }
                }
            }
        }
        let anchors = grid.free_anchors(gw, gh);
        return crate::bitgrid::nearest_anchor_from(&anchors, start, PROBE_RADIUS + 1);
    }
    // Anchor masks of the probed band, keyed by Δy, filled on first use —
    // a stack buffer of `MAX_WPR` words per band row.
    let mut band = [0u64; BAND_ROWS * MAX_WPR];
    let mut filled = [false; BAND_ROWS];
    for radius in 1..=(PROBE_RADIUS as isize) {
        for dy in -radius..=radius {
            let y = start.y as isize + dy;
            if !(0..height).contains(&y) {
                continue;
            }
            let bi = (dy + PROBE_RADIUS as isize) as usize;
            if !filled[bi] {
                grid.row_anchors_into(y as usize, gw, gh, &mut band[bi * MAX_WPR..]);
                filled[bi] = true;
            }
            let anchors = &band[bi * MAX_WPR..bi * MAX_WPR + wpr];
            if anchors.iter().all(|&w| w == 0) {
                continue;
            }
            if dy.abs() == radius {
                // Ring boundary row: all Δx ascending ⇒ the lowest set
                // anchor bit in the clamped window [x − r, x + r].
                let lo = (start.x as isize - radius).max(0) as usize;
                let hi = ((start.x as isize + radius).min(width - 1)) as usize;
                if let Some(x) = first_set_in_range(anchors, lo, hi) {
                    return Some(Cell::new(x, y as usize));
                }
            } else {
                // Interior row: only Δx = −r then Δx = +r are on the ring.
                let left = start.x as isize - radius;
                if left >= 0 && row_bit(anchors, left as usize) {
                    return Some(Cell::new(left as usize, y as usize));
                }
                let right = start.x as isize + radius;
                if right < width && row_bit(anchors, right as usize) {
                    return Some(Cell::new(right as usize, y as usize));
                }
            }
        }
    }
    let anchors = grid.free_anchors(gw, gh);
    crate::bitgrid::nearest_anchor_from(&anchors, start, PROBE_RADIUS + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn shapes(n: usize) -> Vec<Shape> {
        (0..n).map(|i| Shape::new(2.0 + i as f64, 3.0)).collect()
    }

    #[test]
    fn identity_packs_in_a_row() {
        let sp = SequencePair::identity(shapes(3));
        let packed = sp.pack();
        assert_eq!(packed.positions[0], (0.0, 0.0));
        assert_eq!(packed.positions[1], (2.0, 0.0));
        assert_eq!(packed.positions[2], (5.0, 0.0));
        assert_eq!(packed.width, 9.0);
        assert_eq!(packed.height, 3.0);
    }

    #[test]
    fn reversed_negative_packs_in_a_column() {
        let mut sp = SequencePair::identity(shapes(3));
        sp.negative.reverse();
        let packed = sp.pack();
        assert_eq!(packed.height, 9.0);
        assert!((packed.width - 4.0).abs() < 1e-9);
    }

    #[test]
    fn packing_has_no_overlaps() {
        let mut sp = SequencePair::identity(shapes(5));
        sp.positive = vec![2, 0, 4, 1, 3];
        sp.negative = vec![4, 1, 2, 3, 0];
        let packed = sp.pack();
        for i in 0..5 {
            for j in (i + 1)..5 {
                assert!(
                    !packed.rects[i].overlaps(&packed.rects[j]),
                    "blocks {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn fast_sp_matches_legacy_relaxation_on_random_pairs() {
        let mut rng = StdRng::seed_from_u64(0xFA57);
        for case in 0..100 {
            let n = rng.gen_range(1usize..24);
            let block_shapes: Vec<Shape> = (0..n)
                .map(|_| Shape::new(rng.gen_range(0.5..20.0), rng.gen_range(0.5..20.0)))
                .collect();
            let mut sp = SequencePair::identity(block_shapes);
            sp.positive.shuffle(&mut rng);
            sp.negative.shuffle(&mut rng);
            let fast = sp.pack();
            let legacy = sp.pack_relaxation();
            assert_eq!(fast.positions, legacy.positions, "case {case} positions diverge");
            assert_eq!(fast.width, legacy.width, "case {case} width diverges");
            assert_eq!(fast.height, legacy.height, "case {case} height diverges");
        }
    }

    #[test]
    fn pack_into_reuses_buffers_and_matches_pack() {
        let mut scratch = PackScratch::new();
        let mut out = PackedFloorplan::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = rng.gen_range(2usize..16);
            let mut sp = SequencePair::identity(
                (0..n)
                    .map(|_| Shape::new(rng.gen_range(1.0..9.0), rng.gen_range(1.0..9.0)))
                    .collect(),
            );
            sp.positive.shuffle(&mut rng);
            sp.negative.shuffle(&mut rng);
            sp.pack_into(&mut scratch, &mut out);
            assert_eq!(out, sp.pack());
        }
    }

    #[test]
    fn to_floorplan_places_every_block() {
        let circuit = generators::ota5();
        let canvas = Canvas::for_circuit(&circuit);
        let shapes: Vec<Shape> = circuit
            .blocks
            .iter()
            .map(|b| Shape::from_area_and_aspect(b.area_um2, 1.0))
            .collect();
        let sp = SequencePair::identity(shapes);
        let fp = sp.to_floorplan(&circuit, canvas);
        assert_eq!(fp.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn empty_sequence_pair() {
        let sp = SequencePair::identity(Vec::new());
        assert!(sp.is_empty());
        let packed = sp.pack();
        assert_eq!(packed.width, 0.0);
        assert_eq!(packed.height, 0.0);
    }

    // ----- dirty-set computation of the incremental realization engine -----
    //
    // A 4-block circuit on a 32 µm canvas (1 µm cells) with 4×4 µm shapes
    // packs rows/columns exactly on the grid with scale = 1, so each test can
    // predict precisely which placement-order positions go dirty.

    fn incremental_fixture() -> (afp_circuit::Circuit, Canvas, Vec<usize>, Vec<usize>, Vec<Shape>) {
        use afp_circuit::{BlockKind, NetClass};
        let circuit = afp_circuit::Circuit::builder("dirtyset")
            .block("A", BlockKind::CurrentMirror, 16.0, 2)
            .block("B", BlockKind::CurrentMirror, 16.0, 2)
            .block("C", BlockKind::CurrentMirror, 16.0, 2)
            .block("D", BlockKind::CurrentMirror, 16.0, 2)
            .net("n", &[("A", "d"), ("B", "d")], NetClass::Signal)
            .build()
            .expect("fixture circuit is valid");
        let canvas = Canvas::new(32.0, 32.0);
        let positive: Vec<usize> = (0..4).collect();
        let negative: Vec<usize> = (0..4).collect();
        let shapes: Vec<Shape> = (0..4).map(|_| Shape::new(4.0, 4.0)).collect();
        (circuit, canvas, positive, negative, shapes)
    }

    fn realize_both(
        circuit: &afp_circuit::Circuit,
        canvas: Canvas,
        positive: &[usize],
        negative: &[usize],
        shapes: &[Shape],
        scratch: &mut PackScratch,
        fp: &mut Floorplan,
        cache: &mut super::RealizeCache,
    ) {
        realize_floorplan_incremental(
            positive, negative, shapes, circuit, canvas, scratch, fp, cache,
        );
        // Every call must stay bit-identical to a fresh full realization.
        let mut fresh_scratch = PackScratch::new();
        let mut fresh = Floorplan::new(canvas);
        realize_floorplan(
            positive,
            negative,
            shapes,
            circuit,
            canvas,
            &mut fresh_scratch,
            &mut fresh,
        );
        assert_eq!(*fp, fresh, "incremental realization diverged from full");
    }

    #[test]
    fn dirty_set_single_block_move_marks_only_the_suffix() {
        let (circuit, canvas, positive, negative, shapes) = incremental_fixture();
        let mut scratch = PackScratch::new();
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.full_rebuilds, 1);
        assert_eq!(cache.last_searched, 4);

        // Swap the last two blocks in both sequences: blocks 0 and 1 keep
        // their packed positions (prefix), blocks 2 and 3 trade places.
        let (mut positive, mut negative) = (positive, negative);
        positive.swap(2, 3);
        negative.swap(2, 3);
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.last_kept, 2, "unchanged prefix must be kept");
        assert_eq!(cache.last_searched, 2, "exactly the moved blocks re-snap");
        assert_eq!(cache.full_rebuilds, 1, "no fallback for a local move");
    }

    #[test]
    fn dirty_set_shape_swap_marks_the_block_and_its_downstream() {
        let (circuit, canvas, positive, negative, shapes) = incremental_fixture();
        let mut scratch = PackScratch::new();
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );

        // Widening block 1 shifts the packed x of blocks 2 and 3: placement
        // order position 1 and everything after goes dirty.
        let mut shapes = shapes;
        shapes[1] = Shape::new(5.0, 4.0);
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.last_kept, 1);
        assert_eq!(cache.last_searched, 3);
        assert_eq!(cache.last_replayed, 0);
    }

    #[test]
    fn dirty_set_height_only_change_replays_unmoved_downstream_blocks() {
        let (circuit, canvas, positive, negative, shapes) = incremental_fixture();
        let mut scratch = PackScratch::new();
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );

        // Shrinking block 1's height (same grid footprint: ceil(3.5) = 4)
        // changes its snap inputs but nobody's packed position and nobody's
        // occupancy: block 1 re-snaps, blocks 2 and 3 are pure replays.
        let mut shapes = shapes;
        shapes[1] = Shape::new(4.0, 3.5);
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.last_kept, 1);
        assert_eq!(cache.last_searched, 1, "only the reshaped block searches");
        assert_eq!(cache.last_replayed, 2, "unmoved blocks replay via try_occupy");
    }

    #[test]
    fn dirty_set_order_swap_reordering_placement_resnaps_from_the_swap() {
        let (circuit, canvas, positive, negative, shapes) = incremental_fixture();
        // Column layout: reversed negative stacks blocks bottom-to-top, so
        // placement order is the reverse positive order.
        let negative: Vec<usize> = negative.into_iter().rev().collect();
        let mut scratch = PackScratch::new();
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );

        // Swapping the first two blocks of the positive sequence swaps the
        // two *topmost* blocks of the column — placement order positions 2
        // and 3. The two bottom blocks are an unchanged prefix.
        let mut positive = positive;
        positive.swap(0, 1);
        let negative: Vec<usize> = {
            let mut n = negative;
            let a = n.iter().position(|&b| b == 0).unwrap();
            let b = n.iter().position(|&b| b == 1).unwrap();
            n.swap(a, b);
            n
        };
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.last_kept, 2);
        assert_eq!(cache.last_searched, 2);
    }

    #[test]
    fn dirty_set_full_fallback_on_canvas_change_and_external_mutation() {
        let (circuit, canvas, positive, negative, shapes) = incremental_fixture();
        let mut scratch = PackScratch::new();
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        realize_both(
            &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.full_rebuilds, 1);

        // A different canvas invalidates every snap decision.
        let smaller = Canvas::new(24.0, 24.0);
        realize_both(
            &circuit, smaller, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.full_rebuilds, 2, "canvas change falls back to full");
        assert_eq!(cache.last_kept, 0);
        assert_eq!(cache.last_searched, 4);

        // External mutation of the floorplan buffer trips the fingerprint.
        fp.unplace_last();
        realize_both(
            &circuit, smaller, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.full_rebuilds, 3, "fingerprint mismatch falls back");

        // An explicit invalidation also forces the full path.
        cache.invalidate();
        realize_both(
            &circuit, smaller, &positive, &negative, &shapes, &mut scratch, &mut fp, &mut cache,
        );
        assert_eq!(cache.full_rebuilds, 4);
        assert_eq!(cache.hit_rate(), cache.kept_blocks as f64
            / (cache.kept_blocks + cache.replayed_blocks + cache.searched_blocks) as f64);
    }

    #[test]
    fn incremental_realize_matches_full_on_random_walks() {
        let circuit = generators::bias19();
        let canvas = Canvas::for_circuit(&circuit);
        let n = circuit.num_blocks();
        let mut rng = StdRng::seed_from_u64(0x19C);
        let mut positive: Vec<usize> = (0..n).collect();
        let mut negative: Vec<usize> = (0..n).collect();
        positive.shuffle(&mut rng);
        negative.shuffle(&mut rng);
        let mut shapes: Vec<Shape> = (0..n)
            .map(|_| Shape::new(rng.gen_range(2.0..20.0), rng.gen_range(2.0..20.0)))
            .collect();
        let mut scratch = PackScratch::with_capacity(n);
        let mut fp = Floorplan::new(canvas);
        let mut cache = super::RealizeCache::new();
        for _ in 0..300 {
            match rng.gen_range(0..4) {
                0 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    positive.swap(i, j);
                }
                1 => {
                    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                    negative.swap(i, j);
                }
                2 => {
                    let b = rng.gen_range(0..n);
                    shapes[b] = Shape::new(rng.gen_range(2.0..20.0), rng.gen_range(2.0..20.0));
                }
                _ => {} // re-realize an identical episode (everything kept)
            }
            realize_both(
                &circuit, canvas, &positive, &negative, &shapes, &mut scratch, &mut fp,
                &mut cache,
            );
        }
        assert!(cache.kept_blocks + cache.replayed_blocks > 0, "cache never hit");
    }
}

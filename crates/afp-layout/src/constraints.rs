//! Grid-level handling of positional constraints.
//!
//! Two services are provided (paper §IV-D1):
//!
//! * [`constraint_mask`] — the binary matrix marking the cells where placing
//!   the next block keeps its symmetry / alignment constraints satisfiable;
//!   this matrix is ANDed with the free-space matrix to form the positional
//!   action masks `f_p`.
//! * [`count_violations`] — the end-of-episode check that triggers the −50
//!   penalty of §IV-D4 when a finished floorplan breaks a constraint.

use afp_circuit::{Axis, BlockId, Circuit, Constraint};

use crate::grid::{Cell, GRID_SIZE};
use crate::placement::Floorplan;

/// Tolerance, in cells, within which two coordinates are considered equal
/// when checking symmetry and alignment.
const CELL_TOLERANCE: f64 = 0.55;

/// Computes, for each grid cell, whether anchoring the lower-left corner of a
/// `grid_w × grid_h` footprint of `block` there keeps every constraint
/// involving `block` satisfiable given the already placed blocks.
///
/// The result is a row-major `GRID_SIZE × GRID_SIZE` vector of `0.0` / `1.0`.
/// Cells where the footprint would leave the grid are marked `0.0`.
pub fn constraint_mask(
    circuit: &Circuit,
    floorplan: &Floorplan,
    block: BlockId,
    grid_w: usize,
    grid_h: usize,
) -> Vec<f32> {
    let mut mask = vec![1.0f32; GRID_SIZE * GRID_SIZE];
    // Footprint must stay on the grid.
    for y in 0..GRID_SIZE {
        for x in 0..GRID_SIZE {
            if x + grid_w > GRID_SIZE || y + grid_h > GRID_SIZE {
                mask[y * GRID_SIZE + x] = 0.0;
            }
        }
    }
    for constraint in circuit.constraints.iter() {
        if !constraint.members().contains(&block) {
            continue;
        }
        match constraint {
            Constraint::Symmetry(group) => {
                apply_symmetry_mask(&mut mask, floorplan, group, block, grid_w, grid_h);
            }
            Constraint::Alignment(group) => {
                apply_alignment_mask(&mut mask, floorplan, group.axis, &group.blocks, block);
            }
        }
    }
    mask
}

/// Centre of a placed block in fractional cell coordinates.
fn placed_center_cells(floorplan: &Floorplan, block: BlockId) -> Option<(f64, f64)> {
    let p = floorplan.find(block)?;
    Some((
        p.cell.x as f64 + p.grid_w as f64 / 2.0,
        p.cell.y as f64 + p.grid_h as f64 / 2.0,
    ))
}

/// The symmetry-axis coordinate (in fractional cells) implied by the blocks of
/// the group that are already placed, if any: the mean of pair midpoints and
/// self-symmetric centres along the axis-normal direction.
///
/// Accumulates the mean as a running sum in the same visitation order the
/// historical `Vec`-collecting implementation pushed in, so the result is
/// bit-identical — this runs per constraint per cost evaluation, and the
/// allocation dominated the check.
fn implied_axis(
    floorplan: &Floorplan,
    group: &afp_circuit::SymmetryGroup,
) -> Option<f64> {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for &(a, b) in &group.pairs {
        if let (Some(ca), Some(cb)) = (
            placed_center_cells(floorplan, a),
            placed_center_cells(floorplan, b),
        ) {
            sum += match group.axis {
                Axis::Vertical => (ca.0 + cb.0) / 2.0,
                Axis::Horizontal => (ca.1 + cb.1) / 2.0,
            };
            count += 1;
        }
    }
    for &s in &group.self_symmetric {
        if let Some(c) = placed_center_cells(floorplan, s) {
            sum += match group.axis {
                Axis::Vertical => c.0,
                Axis::Horizontal => c.1,
            };
            count += 1;
        }
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

fn apply_symmetry_mask(
    mask: &mut [f32],
    floorplan: &Floorplan,
    group: &afp_circuit::SymmetryGroup,
    block: BlockId,
    grid_w: usize,
    grid_h: usize,
) {
    let axis_pos = implied_axis(floorplan, group);
    // Is `block` half of a pair, or self-symmetric?
    let partner = group
        .pairs
        .iter()
        .find_map(|&(a, b)| {
            if a == block {
                Some(b)
            } else if b == block {
                Some(a)
            } else {
                None
            }
        });
    let is_self = group.self_symmetric.contains(&block);
    let half_w = grid_w as f64 / 2.0;
    let half_h = grid_h as f64 / 2.0;

    for y in 0..GRID_SIZE {
        for x in 0..GRID_SIZE {
            let idx = y * GRID_SIZE + x;
            if mask[idx] == 0.0 {
                continue;
            }
            let cx = x as f64 + half_w;
            let cy = y as f64 + half_h;
            let mut ok = true;
            if let Some(p) = partner {
                if let Some((pcx, pcy)) = placed_center_cells(floorplan, p) {
                    match group.axis {
                        Axis::Vertical => {
                            // Mirrored across a vertical line: same row.
                            if (cy - pcy).abs() > CELL_TOLERANCE {
                                ok = false;
                            }
                            if let Some(axis) = axis_pos {
                                let required = 2.0 * axis - pcx;
                                if (cx - required).abs() > CELL_TOLERANCE {
                                    ok = false;
                                }
                            }
                        }
                        Axis::Horizontal => {
                            if (cx - pcx).abs() > CELL_TOLERANCE {
                                ok = false;
                            }
                            if let Some(axis) = axis_pos {
                                let required = 2.0 * axis - pcy;
                                if (cy - required).abs() > CELL_TOLERANCE {
                                    ok = false;
                                }
                            }
                        }
                    }
                }
            }
            if ok && is_self {
                if let Some(axis) = axis_pos {
                    let c = match group.axis {
                        Axis::Vertical => cx,
                        Axis::Horizontal => cy,
                    };
                    if (c - axis).abs() > CELL_TOLERANCE {
                        ok = false;
                    }
                }
            }
            if !ok {
                mask[idx] = 0.0;
            }
        }
    }
}

fn apply_alignment_mask(
    mask: &mut [f32],
    floorplan: &Floorplan,
    axis: Axis,
    members: &[BlockId],
    block: BlockId,
) {
    // Find a placed reference member (other than the block itself).
    let reference = members
        .iter()
        .filter(|&&m| m != block)
        .find_map(|&m| floorplan.find(m));
    let Some(reference) = reference else {
        return;
    };
    for y in 0..GRID_SIZE {
        for x in 0..GRID_SIZE {
            let idx = y * GRID_SIZE + x;
            if mask[idx] == 0.0 {
                continue;
            }
            let aligned = match axis {
                // Row alignment: share the bottom row.
                Axis::Horizontal => y == reference.cell.y,
                // Column alignment: share the left column.
                Axis::Vertical => x == reference.cell.x,
            };
            if !aligned {
                mask[idx] = 0.0;
            }
        }
    }
}

/// Counts how many constraints of the circuit are violated by a floorplan.
///
/// A constraint is violated when any of its member blocks is missing from the
/// floorplan, or when the placed geometry breaks the symmetry / alignment
/// relation by more than half a grid cell.
pub fn count_violations(circuit: &Circuit, floorplan: &Floorplan) -> usize {
    circuit
        .constraints
        .iter()
        .filter(|c| is_violated(floorplan, c))
        .count()
}

/// Whether any constraint is violated — `count_violations(..) > 0` with an
/// early-out on the first hit, for the reward gates that only read the
/// boolean.
pub fn has_violations(circuit: &Circuit, floorplan: &Floorplan) -> bool {
    circuit.constraints.iter().any(|c| is_violated(floorplan, c))
}

/// Whether one constraint is violated by a floorplan — the per-constraint
/// predicate [`count_violations`] counts, exposed so the incremental metrics
/// layer can re-evaluate only the constraints whose members moved.
///
/// The missing-member check iterates the member lists directly rather than
/// materializing `Constraint::members()` — this predicate runs per constraint
/// per cost evaluation, where the `Vec` allocation dominated.
pub fn is_violated(floorplan: &Floorplan, constraint: &Constraint) -> bool {
    match constraint {
        Constraint::Symmetry(group) => {
            group
                .pairs
                .iter()
                .any(|&(a, b)| !floorplan.is_placed(a) || !floorplan.is_placed(b))
                || group.self_symmetric.iter().any(|&s| !floorplan.is_placed(s))
                || symmetry_violated(floorplan, group)
        }
        Constraint::Alignment(group) => {
            group.blocks.iter().any(|&m| !floorplan.is_placed(m))
                || alignment_violated(floorplan, group.axis, &group.blocks)
        }
    }
}

fn symmetry_violated(floorplan: &Floorplan, group: &afp_circuit::SymmetryGroup) -> bool {
    let Some(axis) = implied_axis(floorplan, group) else {
        return false;
    };
    for &(a, b) in &group.pairs {
        let (Some(ca), Some(cb)) = (
            placed_center_cells(floorplan, a),
            placed_center_cells(floorplan, b),
        ) else {
            return true;
        };
        match group.axis {
            Axis::Vertical => {
                if (ca.1 - cb.1).abs() > CELL_TOLERANCE {
                    return true;
                }
                if ((ca.0 + cb.0) / 2.0 - axis).abs() > CELL_TOLERANCE {
                    return true;
                }
            }
            Axis::Horizontal => {
                if (ca.0 - cb.0).abs() > CELL_TOLERANCE {
                    return true;
                }
                if ((ca.1 + cb.1) / 2.0 - axis).abs() > CELL_TOLERANCE {
                    return true;
                }
            }
        }
    }
    for &s in &group.self_symmetric {
        let Some(c) = placed_center_cells(floorplan, s) else {
            return true;
        };
        let coord = match group.axis {
            Axis::Vertical => c.0,
            Axis::Horizontal => c.1,
        };
        if (coord - axis).abs() > CELL_TOLERANCE {
            return true;
        }
    }
    false
}

fn alignment_violated(floorplan: &Floorplan, axis: Axis, members: &[BlockId]) -> bool {
    let mut reference: Option<Cell> = None;
    for &m in members {
        let Some(p) = floorplan.find(m) else {
            return true;
        };
        match reference {
            None => reference = Some(p.cell),
            Some(r) => {
                let aligned = match axis {
                    Axis::Horizontal => p.cell.y == r.y,
                    Axis::Vertical => p.cell.x == r.x,
                };
                if !aligned {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Canvas;
    use afp_circuit::{BlockKind, NetClass, Shape};

    /// Circuit with two symmetric mirrors (vertical axis) and an aligned pair.
    fn constrained_circuit() -> Circuit {
        Circuit::builder("c")
            .block("L", BlockKind::CurrentMirror, 16.0, 3)
            .block("R", BlockKind::CurrentMirror, 16.0, 3)
            .block("T", BlockKind::CurrentSource, 16.0, 2)
            .block("U", BlockKind::BiasGenerator, 16.0, 2)
            .net("n", &[("L", "d"), ("R", "d"), ("T", "g")], NetClass::Signal)
            .net("m", &[("T", "d"), ("U", "g")], NetClass::Signal)
            .symmetry_v(&[("L", "R")])
            .alignment(afp_circuit::Axis::Horizontal, &["T", "U"])
            .build()
            .unwrap()
    }

    fn canvas() -> Canvas {
        Canvas::new(32.0, 32.0)
    }

    #[test]
    fn unconstrained_block_gets_full_mask() {
        let c = constrained_circuit();
        let fp = Floorplan::new(canvas());
        // Block T has an alignment constraint but nothing placed → everything allowed
        let mask = constraint_mask(&c, &fp, BlockId(2), 4, 4);
        let allowed = mask.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(allowed, (GRID_SIZE - 3) * (GRID_SIZE - 3));
    }

    #[test]
    fn symmetry_restricts_to_partner_row() {
        let c = constrained_circuit();
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        let mask = constraint_mask(&c, &fp, BlockId(1), 4, 4);
        // Allowed cells must share the partner's row (same centre y ⇒ y = 10).
        for y in 0..GRID_SIZE {
            for x in 0..GRID_SIZE - 4 {
                let v = mask[y * GRID_SIZE + x];
                if v == 1.0 {
                    assert_eq!(y, 10, "allowed cell off the partner row at y={y}");
                }
            }
        }
        assert!(mask.iter().any(|&v| v == 1.0));
    }

    #[test]
    fn alignment_restricts_to_reference_row() {
        let c = constrained_circuit();
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(5, 7)).unwrap();
        let mask = constraint_mask(&c, &fp, BlockId(3), 4, 4);
        for y in 0..GRID_SIZE {
            for x in 0..GRID_SIZE {
                if mask[y * GRID_SIZE + x] == 1.0 {
                    assert_eq!(y, 7);
                }
            }
        }
    }

    #[test]
    fn violations_detected_for_broken_symmetry() {
        let c = constrained_circuit();
        let mut fp = Floorplan::new(canvas());
        // Same row, both placed → axis defined by their midpoint ⇒ satisfied.
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 10)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(3), 0, Shape::new(4.0, 4.0), Cell::new(8, 0)).unwrap();
        assert_eq!(count_violations(&c, &fp), 0);

        // Different rows → symmetry broken.
        let mut bad = Floorplan::new(canvas());
        bad.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        bad.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 14)).unwrap();
        bad.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        bad.place(BlockId(3), 0, Shape::new(4.0, 4.0), Cell::new(8, 0)).unwrap();
        assert_eq!(count_violations(&c, &bad), 1);
    }

    #[test]
    fn missing_members_count_as_violations() {
        let c = constrained_circuit();
        let fp = Floorplan::new(canvas());
        // Both constraints have unplaced members.
        assert_eq!(count_violations(&c, &fp), 2);
    }

    #[test]
    fn misaligned_blocks_detected() {
        let c = constrained_circuit();
        let mut fp = Floorplan::new(canvas());
        fp.place(BlockId(0), 0, Shape::new(4.0, 4.0), Cell::new(2, 10)).unwrap();
        fp.place(BlockId(1), 0, Shape::new(4.0, 4.0), Cell::new(20, 10)).unwrap();
        fp.place(BlockId(2), 0, Shape::new(4.0, 4.0), Cell::new(0, 0)).unwrap();
        fp.place(BlockId(3), 0, Shape::new(4.0, 4.0), Cell::new(8, 3)).unwrap();
        assert_eq!(count_violations(&c, &fp), 1);
    }

    #[test]
    fn footprint_outside_grid_is_masked() {
        let c = constrained_circuit();
        let fp = Floorplan::new(canvas());
        let mask = constraint_mask(&c, &fp, BlockId(2), 8, 8);
        // The top-right corner cannot host an 8×8 footprint.
        assert_eq!(mask[(GRID_SIZE - 1) * GRID_SIZE + (GRID_SIZE - 1)], 0.0);
        assert_eq!(mask[0], 1.0);
    }
}

//! Congestion-aware device spacing.
//!
//! The paper's comparison protocol (§V-B) applies "congestion-aware device
//! spacing" to every baseline floorplanner so that their compact placements
//! leave room for routing channels, making them comparable with the proposed
//! method's routing-ready floorplans. This module implements that decoration:
//! each block's shape is inflated by a margin proportional to the routing
//! demand (pin count and incident-net count) around it.

use afp_circuit::{Block, Circuit, Shape};

/// Parameters of the congestion-aware spacing decoration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpacingConfig {
    /// Base routing-track pitch in µm (one track is always reserved).
    pub track_pitch_um: f64,
    /// Extra tracks reserved per incident net.
    pub tracks_per_net: f64,
    /// Upper bound on the inflation, as a fraction of the block's side.
    pub max_relative_margin: f64,
}

impl Default for SpacingConfig {
    fn default() -> Self {
        SpacingConfig {
            track_pitch_um: 0.4,
            tracks_per_net: 0.5,
            max_relative_margin: 0.35,
        }
    }
}

impl SpacingConfig {
    /// Margin (µm) to add on every side of a block.
    pub fn margin_for(&self, circuit: &Circuit, block: &Block) -> f64 {
        let nets = circuit.nets_of_block(block.id).len() as f64;
        let demand = 1.0 + self.tracks_per_net * (nets + block.pin_count as f64 / 2.0);
        let margin = self.track_pitch_um * demand;
        let side = block.area_um2.sqrt();
        margin.min(self.max_relative_margin * side)
    }

    /// Inflates a shape by the block's congestion margin (on both sides of
    /// each dimension).
    pub fn inflate_shape(&self, circuit: &Circuit, block: &Block, shape: &Shape) -> Shape {
        let m = self.margin_for(circuit, block);
        Shape::new(shape.width_um + 2.0 * m, shape.height_um + 2.0 * m)
    }

    /// Inflates every shape of a per-block shape list (used by the baselines
    /// before packing their sequence pairs).
    pub fn inflate_all(&self, circuit: &Circuit, shapes: &[Shape]) -> Vec<Shape> {
        circuit
            .blocks
            .iter()
            .zip(shapes.iter())
            .map(|(b, s)| self.inflate_shape(circuit, b, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn margin_is_positive_and_bounded() {
        let circuit = generators::ota8();
        let cfg = SpacingConfig::default();
        for block in &circuit.blocks {
            let m = cfg.margin_for(&circuit, block);
            assert!(m > 0.0);
            assert!(m <= cfg.max_relative_margin * block.area_um2.sqrt() + 1e-12);
        }
    }

    #[test]
    fn inflation_increases_area() {
        let circuit = generators::ota5();
        let cfg = SpacingConfig::default();
        let block = &circuit.blocks[0];
        let shape = Shape::from_area_and_aspect(block.area_um2, 1.0);
        let inflated = cfg.inflate_shape(&circuit, block, &shape);
        assert!(inflated.area_um2() > shape.area_um2());
        assert!(inflated.width_um > shape.width_um);
    }

    #[test]
    fn more_connected_blocks_get_more_space() {
        let circuit = generators::driver();
        let cfg = SpacingConfig::default();
        // The gate-drive net hub (PRE3) has more connectivity than the ESD cell.
        let busy = circuit.block_by_name("PRE3").unwrap();
        let quiet = circuit.block_by_name("ESD").unwrap();
        let busy_nets = circuit.nets_of_block(busy.id).len();
        let quiet_nets = circuit.nets_of_block(quiet.id).len();
        assert!(busy_nets > quiet_nets);
        let margin_busy = cfg.margin_for(&circuit, busy);
        let margin_quiet = cfg.margin_for(&circuit, quiet);
        assert!(
            margin_busy > margin_quiet,
            "busy={margin_busy} quiet={margin_quiet}"
        );
    }

    #[test]
    fn inflate_all_preserves_length() {
        let circuit = generators::rs_latch();
        let shapes: Vec<Shape> = circuit
            .blocks
            .iter()
            .map(|b| Shape::from_area_and_aspect(b.area_um2, 1.0))
            .collect();
        let inflated = SpacingConfig::default().inflate_all(&circuit, &shapes);
        assert_eq!(inflated.len(), shapes.len());
    }
}

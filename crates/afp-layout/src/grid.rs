//! The discretized placement canvas.
//!
//! The paper discretizes the layout space into a fixed 32×32 grid
//! (§IV-D1): the canvas side is derived from the total block area and the
//! maximum admissible floorplan aspect ratio `R_max = 11`, so that any
//! reasonable placement of the circuit — including elongated ones — fits on
//! the grid. Real block dimensions are mapped to grid cells with a ceiling so
//! blocks are never under-approximated.

use serde::{Deserialize, Serialize};

use afp_circuit::{Circuit, Shape};

/// Number of cells along each side of the placement grid (`32` in the paper).
pub const GRID_SIZE: usize = 32;

/// Maximum admissible floorplan aspect ratio used to size the canvas
/// (`R_max = 11` in the paper, empirically derived).
pub const DEFAULT_MAX_ASPECT_RATIO: f64 = 11.0;

/// A cell coordinate on the placement grid (column `x`, row `y`), with the
/// origin at the lower-left corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cell {
    /// Column index, `0 ≤ x < GRID_SIZE`.
    pub x: usize,
    /// Row index, `0 ≤ y < GRID_SIZE`.
    pub y: usize,
}

impl Cell {
    /// Creates a cell coordinate.
    pub fn new(x: usize, y: usize) -> Self {
        Cell { x, y }
    }

    /// Linear index into a row-major `GRID_SIZE × GRID_SIZE` buffer.
    pub fn index(self) -> usize {
        self.y * GRID_SIZE + self.x
    }

    /// Builds a cell from a linear index.
    pub fn from_index(index: usize) -> Self {
        Cell {
            x: index % GRID_SIZE,
            y: index / GRID_SIZE,
        }
    }
}

/// The continuous canvas underlying the placement grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Canvas {
    /// Canvas width in µm.
    pub width_um: f64,
    /// Canvas height in µm.
    pub height_um: f64,
}

impl Canvas {
    /// Builds a square canvas sized for the given circuit: the side is
    /// `sqrt(Σ Aᵢ · r_max)` so that even a floorplan stretched to the maximum
    /// admissible aspect ratio fits inside (paper §IV-D1 with `r_max = 11`).
    pub fn for_circuit(circuit: &Circuit) -> Self {
        Canvas::for_circuit_with_ratio(circuit, DEFAULT_MAX_ASPECT_RATIO)
    }

    /// Builds a square canvas with an explicit maximum aspect ratio.
    pub fn for_circuit_with_ratio(circuit: &Circuit, max_aspect_ratio: f64) -> Self {
        let total_area: f64 = circuit.total_block_area();
        let side = (total_area * max_aspect_ratio.max(1.0)).sqrt().max(1e-6);
        Canvas {
            width_um: side,
            height_um: side,
        }
    }

    /// Builds a canvas with explicit dimensions.
    pub fn new(width_um: f64, height_um: f64) -> Self {
        Canvas {
            width_um,
            height_um,
        }
    }

    /// Width of one grid cell in µm.
    pub fn cell_width_um(&self) -> f64 {
        self.width_um / GRID_SIZE as f64
    }

    /// Height of one grid cell in µm.
    pub fn cell_height_um(&self) -> f64 {
        self.height_um / GRID_SIZE as f64
    }

    /// Maps a block shape to its footprint in grid cells, using the paper's
    /// ceiling mapping `w_g = ⌈w · 32 / W⌉`, `h_g = ⌈h · 32 / H⌉` so real
    /// dimensions are never under-approximated. The result is clamped to the
    /// grid so degenerate inputs stay representable.
    pub fn shape_to_cells(&self, shape: &Shape) -> (usize, usize) {
        let wg = (shape.width_um * GRID_SIZE as f64 / self.width_um).ceil() as usize;
        let hg = (shape.height_um * GRID_SIZE as f64 / self.height_um).ceil() as usize;
        (wg.clamp(1, GRID_SIZE), hg.clamp(1, GRID_SIZE))
    }

    /// Converts a grid cell to the µm coordinate of its lower-left corner.
    pub fn cell_to_um(&self, cell: Cell) -> (f64, f64) {
        (
            cell.x as f64 * self.cell_width_um(),
            cell.y as f64 * self.cell_height_um(),
        )
    }

    /// Total canvas area in µm².
    pub fn area_um2(&self) -> f64 {
        self.width_um * self.height_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn cell_index_roundtrip() {
        for idx in [0, 1, 31, 32, 555, GRID_SIZE * GRID_SIZE - 1] {
            assert_eq!(Cell::from_index(idx).index(), idx);
        }
        assert_eq!(Cell::new(3, 2).index(), 2 * GRID_SIZE + 3);
    }

    #[test]
    fn canvas_fits_total_area_with_margin() {
        let c = generators::ota8();
        let canvas = Canvas::for_circuit(&c);
        assert!(canvas.area_um2() >= c.total_block_area() * DEFAULT_MAX_ASPECT_RATIO * 0.999);
        assert_eq!(canvas.width_um, canvas.height_um);
    }

    #[test]
    fn shape_mapping_uses_ceiling() {
        let canvas = Canvas::new(32.0, 32.0); // 1 µm per cell
        let (w, h) = canvas.shape_to_cells(&Shape::new(2.1, 0.9));
        assert_eq!((w, h), (3, 1));
    }

    #[test]
    fn shape_mapping_clamps_to_grid() {
        let canvas = Canvas::new(10.0, 10.0);
        let (w, h) = canvas.shape_to_cells(&Shape::new(100.0, 0.0001));
        assert_eq!(w, GRID_SIZE);
        assert_eq!(h, 1);
    }

    #[test]
    fn cell_to_um_scales() {
        let canvas = Canvas::new(64.0, 32.0);
        let (x, y) = canvas.cell_to_um(Cell::new(2, 3));
        assert_eq!(x, 4.0);
        assert_eq!(y, 3.0);
    }

    #[test]
    fn larger_circuits_get_larger_canvases() {
        let small = Canvas::for_circuit(&generators::ota3());
        let big = Canvas::for_circuit(&generators::driver());
        assert!(big.width_um > small.width_um);
    }
}

//! Particle swarm optimization over sequence pairs.
//!
//! Permutations are handled with the classic random-key encoding: each
//! particle carries two continuous key vectors (one per sequence) plus a
//! continuous shape preference per block; sorting the keys yields the
//! permutations, so standard PSO velocity updates apply unchanged.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afp_circuit::{Circuit, SHAPES_PER_BLOCK};

use crate::common::{
    candidate_is_feasible, BaselineResult, Candidate, EvalPool, Problem, RunControl, StopReason,
};

/// PSO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PsoConfig {
    /// Number of particles.
    pub particles: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Inertia weight.
    pub inertia: f64,
    /// Cognitive (personal-best) coefficient.
    pub cognitive: f64,
    /// Social (global-best) coefficient.
    pub social: f64,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for swarm evaluation through the [`EvalPool`]
    /// (`0` = one per available hardware thread). Results are bit-identical
    /// at any worker count; see `docs/TUNING.md` for how to choose.
    pub workers: usize,
}

impl PsoConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        PsoConfig {
            particles: 12,
            iterations: 15,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
            seed: 0,
            workers: 1,
        }
    }

    /// Configuration used for the Table I reproduction (PSO runtimes in the
    /// paper sit between GA and RL).
    pub fn table1() -> Self {
        PsoConfig {
            particles: 30,
            iterations: 120,
            inertia: 0.72,
            cognitive: 1.5,
            social: 1.5,
            seed: 0,
            workers: 0,
        }
    }
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig::small()
    }
}

/// A particle's continuous position: `2n` permutation keys + `n` shape keys.
#[derive(Debug, Clone)]
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_cost: f64,
}

/// Decodes a continuous position into a candidate.
fn decode(position: &[f64], num_blocks: usize) -> Candidate {
    let keys_pos = &position[0..num_blocks];
    let keys_neg = &position[num_blocks..2 * num_blocks];
    let keys_shape = &position[2 * num_blocks..3 * num_blocks];
    Candidate {
        positive: argsort(keys_pos),
        negative: argsort(keys_neg),
        shape_choice: keys_shape
            .iter()
            .map(|&k| {
                let idx = (k.clamp(0.0, 0.999_999) * SHAPES_PER_BLOCK as f64) as usize;
                idx.min(SHAPES_PER_BLOCK - 1)
            })
            .collect(),
    }
}

fn argsort(keys: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keys.len()).collect();
    // `total_cmp`: a NaN key sorts to a stable position instead of making
    // the comparator lie about equality and scrambling the permutation.
    order.sort_by(|&a, &b| keys[a].total_cmp(&keys[b]));
    order
}

/// Runs particle swarm optimization on a circuit.
pub fn particle_swarm(circuit: &Circuit, config: &PsoConfig) -> BaselineResult {
    particle_swarm_controlled(circuit, config, &RunControl::unbounded())
}

/// [`particle_swarm`] under a [`RunControl`]: polled once per iteration
/// (each iteration is already `particles` evaluations wide, so no stride
/// gating is needed). An interrupted run returns the swarm's global best so
/// far with the interrupting [`StopReason`]; polling draws nothing from the
/// RNG, so an uninterrupted run is bit-identical to an uncontrolled one.
pub fn particle_swarm_controlled(
    circuit: &Circuit,
    config: &PsoConfig,
    control: &RunControl,
) -> BaselineResult {
    let problem = Problem::new(circuit);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pool = EvalPool::new(&problem, config.workers);
    let n = problem.num_blocks();
    let dim = 3 * n;

    let mut particles: Vec<Particle> = (0..config.particles)
        .map(|_| {
            let position: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>()).collect();
            let velocity: Vec<f64> = (0..dim).map(|_| rng.gen_range(-0.1..0.1)).collect();
            Particle {
                best_position: position.clone(),
                best_cost: f64::MAX,
                position,
                velocity,
            }
        })
        .collect();

    let mut global_best_position = particles[0].position.clone();
    let mut global_best_cost = f64::MAX;
    let mut evaluations = 0;
    let mut stop = StopReason::Completed;
    let mut swarm: Vec<Candidate> = Vec::with_capacity(config.particles);

    for _ in 0..config.iterations {
        // Decode the whole swarm, score it as one pool batch, then reduce in
        // particle order — the same order the serial loop updated bests in,
        // so the global best (and with it the next velocity update) is
        // identical at any worker count.
        swarm.clear();
        swarm.extend(particles.iter().map(|p| decode(&p.position, n)));
        let costs = pool.evaluate(&problem, &swarm);
        debug_assert!(
            costs.iter().all(|c| c.is_finite()),
            "non-finite particle cost would scramble best tracking"
        );
        evaluations += costs.len();
        for (p, &cost) in particles.iter_mut().zip(&costs) {
            if cost < p.best_cost {
                p.best_cost = cost;
                p.best_position = p.position.clone();
            }
            if cost < global_best_cost {
                global_best_cost = cost;
                global_best_position = p.position.clone();
            }
        }
        // Control poll at the iteration boundary, after the global best has
        // settled and before the next velocity update draws from the RNG.
        if let Some(reason) = control.poll_now(evaluations as u64) {
            stop = reason;
            break;
        }
        if control.stop_on_first_feasible()
            && candidate_is_feasible(&problem, &decode(&global_best_position, n))
        {
            control.cancel();
            stop = StopReason::FirstFeasible;
            break;
        }
        for p in &mut particles {
            for d in 0..dim {
                let r1: f64 = rng.gen();
                let r2: f64 = rng.gen();
                p.velocity[d] = config.inertia * p.velocity[d]
                    + config.cognitive * r1 * (p.best_position[d] - p.position[d])
                    + config.social * r2 * (global_best_position[d] - p.position[d]);
                p.position[d] = (p.position[d] + p.velocity[d]).clamp(0.0, 1.0);
            }
        }
    }

    let best = decode(&global_best_position, n);
    BaselineResult::from_candidate("PSO", &problem, &best, started, evaluations).with_stop(stop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn decode_produces_valid_candidate() {
        let pos: Vec<f64> = (0..15).map(|i| (i as f64 * 0.37) % 1.0).collect();
        let c = decode(&pos, 5);
        let mut p = c.positive.clone();
        p.sort_unstable();
        assert_eq!(p, (0..5).collect::<Vec<_>>());
        assert!(c.shape_choice.iter().all(|&s| s < SHAPES_PER_BLOCK));
    }

    #[test]
    fn pso_runs_and_is_deterministic() {
        let circuit = generators::ota5();
        let a = particle_swarm(&circuit, &PsoConfig::small());
        let b = particle_swarm(&circuit, &PsoConfig::small());
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.floorplan.num_placed(), circuit.num_blocks());
        assert_eq!(a.algorithm, "PSO");
        assert!(a.evaluations > 0);
    }

    #[test]
    fn pso_results_are_identical_across_worker_counts() {
        // EvalPool determinism: the swarm trajectory (personal bests, global
        // best, final decoded candidate) is reproducible for a seed at any
        // worker count. `workers: 1` additionally pins the persistent pool's
        // inline path against the serial default config.
        let circuit = generators::ota8();
        let serial = particle_swarm(&circuit, &PsoConfig::small());
        for workers in [1usize, 2, 4] {
            let cfg = PsoConfig {
                workers,
                ..PsoConfig::small()
            };
            let parallel = particle_swarm(&circuit, &cfg);
            assert_eq!(parallel.reward, serial.reward, "{workers} workers diverged");
            assert_eq!(parallel.evaluations, serial.evaluations);
            assert_eq!(parallel.floorplan, serial.floorplan);
        }
    }

    #[test]
    fn pso_beats_the_worst_random_particle() {
        let circuit = generators::ota3();
        let problem = Problem::new(&circuit);
        let result = particle_swarm(&circuit, &PsoConfig::small());
        let mut rng = StdRng::seed_from_u64(42);
        let worst = (0..10)
            .map(|_| problem.cost(&Candidate::random(problem.num_blocks(), &mut rng)))
            .fold(f64::MIN, f64::max);
        assert!(-result.reward <= worst);
    }
}

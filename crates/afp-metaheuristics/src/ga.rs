//! Genetic algorithm over sequence pairs.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afp_circuit::{Circuit, SHAPES_PER_BLOCK};

use crate::common::{
    candidate_is_feasible, BaselineResult, Candidate, EvalPool, Problem, RunControl, StopReason,
};

/// Genetic-algorithm configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Number of individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability of mutating each offspring.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Number of elite individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for generation evaluation through the [`EvalPool`]
    /// (`0` = one per available hardware thread). Results are bit-identical
    /// at any worker count; see `docs/TUNING.md` for how to choose.
    pub workers: usize,
}

impl GaConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        GaConfig {
            population: 16,
            generations: 12,
            mutation_rate: 0.3,
            tournament: 3,
            elitism: 2,
            seed: 0,
            workers: 1,
        }
    }

    /// Configuration used for the Table I reproduction (GA runtimes in the
    /// paper are ≈5× the SA runtimes, which this population/generation budget
    /// reproduces).
    pub fn table1() -> Self {
        GaConfig {
            population: 40,
            generations: 60,
            mutation_rate: 0.25,
            tournament: 4,
            elitism: 3,
            seed: 0,
            workers: 0,
        }
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::small()
    }
}

/// Order crossover (OX1) of two parent permutations.
fn order_crossover<R: Rng + ?Sized>(a: &[usize], b: &[usize], rng: &mut R) -> Vec<usize> {
    let n = a.len();
    if n < 2 {
        return a.to_vec();
    }
    let i = rng.gen_range(0..n);
    let j = rng.gen_range(0..n);
    let (lo, hi) = (i.min(j), i.max(j));
    let mut child = vec![usize::MAX; n];
    child[lo..=hi].copy_from_slice(&a[lo..=hi]);
    let segment: Vec<usize> = child[lo..=hi].to_vec();
    let fill: Vec<usize> = b.iter().copied().filter(|x| !segment.contains(x)).collect();
    let mut fill = fill.into_iter();
    for slot in child.iter_mut() {
        if *slot == usize::MAX {
            match fill.next() {
                Some(gene) => *slot = gene,
                None => {
                    // Two permutations of the same gene set always provide
                    // exactly enough fill genes; running out means a caller
                    // bred candidates over mismatched sets. Surface that in
                    // debug builds, degrade to parent `a` in release instead
                    // of unwinding a whole race.
                    debug_assert!(
                        false,
                        "order crossover ran out of fill genes (parents are not \
                         permutations of the same set)"
                    );
                    return a.to_vec();
                }
            }
        }
    }
    child
}

fn crossover<R: Rng + ?Sized>(a: &Candidate, b: &Candidate, rng: &mut R) -> Candidate {
    let shape_choice = a
        .shape_choice
        .iter()
        .zip(b.shape_choice.iter())
        .map(|(&sa, &sb)| if rng.gen_bool(0.5) { sa } else { sb })
        .collect();
    Candidate {
        positive: order_crossover(&a.positive, &b.positive, rng),
        negative: order_crossover(&a.negative, &b.negative, rng),
        shape_choice,
    }
}

/// Runs the genetic algorithm on a circuit.
pub fn genetic_algorithm(circuit: &Circuit, config: &GaConfig) -> BaselineResult {
    genetic_algorithm_controlled(circuit, config, &RunControl::unbounded())
}

/// [`genetic_algorithm`] under a [`RunControl`]: polled once per generation
/// (each generation is already `population` evaluations wide, so no stride
/// gating is needed — see `docs/TUNING.md`).
///
/// A completed run returns the best of the *final* population, exactly as
/// the historical entry point does; an interrupted run returns the best
/// candidate seen across all generations so far, with the interrupting
/// [`StopReason`]. Polling draws nothing from the RNG, so an uninterrupted
/// controlled run is bit-identical to an uncontrolled one.
pub fn genetic_algorithm_controlled(
    circuit: &Circuit,
    config: &GaConfig,
    control: &RunControl,
) -> BaselineResult {
    genetic_algorithm_controlled_seeded(circuit, config, control, None).0
}

/// [`genetic_algorithm_controlled`] with an optional warm-start candidate,
/// returning the best candidate alongside the result.
///
/// A provided `warm` candidate replaces the deterministic identity member at
/// population slot 0 (the random members and the whole RNG stream are
/// untouched), so a serve-layer warm start biases the initial population
/// toward a known-good solution without perturbing anything else. With
/// `warm: None` the run is bit-identical to
/// [`genetic_algorithm_controlled`].
///
/// # Panics
///
/// Panics if `warm` has a different block count than the circuit.
pub fn genetic_algorithm_controlled_seeded(
    circuit: &Circuit,
    config: &GaConfig,
    control: &RunControl,
    warm: Option<&Candidate>,
) -> (BaselineResult, Candidate) {
    let problem = Problem::new(circuit);
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pool = EvalPool::new(&problem, config.workers);
    let n = problem.num_blocks();

    if let Some(w) = warm {
        assert_eq!(
            w.positive.len(),
            n,
            "warm-start candidate has the wrong block count"
        );
    }
    let mut population: Vec<Candidate> = (0..config.population)
        .map(|i| {
            if i == 0 {
                match warm {
                    Some(w) => w.clone(),
                    None => Candidate::identity(n, problem.shape_sets()),
                }
            } else {
                Candidate::random(n, &mut rng)
            }
        })
        .collect();
    let mut costs: Vec<f64> = pool.evaluate(&problem, &population);
    debug_assert!(
        costs.iter().all(|c| c.is_finite()),
        "non-finite candidate cost would scramble selection"
    );
    let mut evaluations = population.len();

    // Best-so-far across generations, consulted only when a control
    // interrupts the run (a completed run keeps the historical
    // best-of-final-population return, preserving bit-identity).
    let (mut seen_best, mut seen_best_cost) = best_of(&population, &costs);
    let mut stop = StopReason::Completed;
    if let Some(reason) = early_stop(&problem, control, &seen_best, evaluations) {
        let result =
            BaselineResult::from_candidate("GA", &problem, &seen_best, started, evaluations)
                .with_stop(reason);
        return (result, seen_best);
    }

    for _gen in 0..config.generations {
        // Sort by fitness (ascending cost). `total_cmp` gives a total order
        // even if a NaN cost ever slips through, so selection can never be
        // silently scrambled by `partial_cmp` returning `None`.
        let mut order: Vec<usize> = (0..population.len()).collect();
        order.sort_by(|&a, &b| costs[a].total_cmp(&costs[b]));
        let mut next: Vec<Candidate> = order
            .iter()
            .take(config.elitism.min(population.len()))
            .map(|&i| population[i].clone())
            .collect();
        while next.len() < config.population {
            let parent_a = tournament_select(&population, &costs, config.tournament, &mut rng);
            let parent_b = tournament_select(&population, &costs, config.tournament, &mut rng);
            let mut child = crossover(parent_a, parent_b, &mut rng);
            if rng.gen::<f64>() < config.mutation_rate {
                let _ = child.perturb(&mut rng);
            }
            if rng.gen::<f64>() < config.mutation_rate / 2.0 {
                let b = rng.gen_range(0..n);
                child.shape_choice[b] = rng.gen_range(0..SHAPES_PER_BLOCK);
            }
            next.push(child);
        }
        population = next;
        // The whole generation is scored as one pool batch. Elites re-enter
        // as memo hits when their worker scored them last generation; either
        // way their costs are bit-identical, so worker count never changes
        // the selection pressure.
        costs = pool.evaluate(&problem, &population);
        debug_assert!(
            costs.iter().all(|c| c.is_finite()),
            "non-finite candidate cost would scramble selection"
        );
        evaluations += population.len();
        let (gen_best, gen_best_cost) = best_of(&population, &costs);
        if gen_best_cost < seen_best_cost {
            seen_best = gen_best;
            seen_best_cost = gen_best_cost;
        }
        if let Some(reason) = early_stop(&problem, control, &seen_best, evaluations) {
            stop = reason;
            break;
        }
    }

    if stop.is_interrupted() {
        let result =
            BaselineResult::from_candidate("GA", &problem, &seen_best, started, evaluations)
                .with_stop(stop);
        return (result, seen_best);
    }
    let best_idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let result =
        BaselineResult::from_candidate("GA", &problem, &population[best_idx], started, evaluations);
    (result, population[best_idx].clone())
}

/// The lowest-cost member of a scored population (lowest index on ties).
fn best_of(population: &[Candidate], costs: &[f64]) -> (Candidate, f64) {
    let idx = costs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (population[idx].clone(), costs[idx])
}

/// The per-generation control check shared by the entry and loop polls:
/// budget/cancel/deadline first, then the first-feasible race predicate.
fn early_stop(
    problem: &Problem,
    control: &RunControl,
    seen_best: &Candidate,
    evaluations: usize,
) -> Option<StopReason> {
    if let Some(reason) = control.poll_now(evaluations as u64) {
        return Some(reason);
    }
    if control.stop_on_first_feasible() && candidate_is_feasible(problem, seen_best) {
        control.cancel();
        return Some(StopReason::FirstFeasible);
    }
    None
}

fn tournament_select<'a, R: Rng + ?Sized>(
    population: &'a [Candidate],
    costs: &[f64],
    k: usize,
    rng: &mut R,
) -> &'a Candidate {
    let mut best = rng.gen_range(0..population.len());
    for _ in 1..k.max(1) {
        let challenger = rng.gen_range(0..population.len());
        if costs[challenger] < costs[best] {
            best = challenger;
        }
    }
    &population[best]
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn order_crossover_produces_permutation() {
        let mut rng = StdRng::seed_from_u64(0);
        let a: Vec<usize> = (0..9).collect();
        let b: Vec<usize> = (0..9).rev().collect();
        for _ in 0..20 {
            let mut child = order_crossover(&a, &b, &mut rng);
            child.sort_unstable();
            assert_eq!(child, (0..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn ga_places_all_blocks_and_is_deterministic() {
        let circuit = generators::ota5();
        let a = genetic_algorithm(&circuit, &GaConfig::small());
        let b = genetic_algorithm(&circuit, &GaConfig::small());
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.floorplan.num_placed(), circuit.num_blocks());
        assert_eq!(a.algorithm, "GA");
    }

    #[test]
    fn ga_results_are_identical_across_worker_counts() {
        // The EvalPool determinism contract, end to end: the whole GA
        // trajectory — every tournament, every elite, the final best cost —
        // must be reproducible for a seed at any worker count, because
        // per-candidate costs are bit-identical no matter which worker's
        // cache evaluates them. `workers: 1` additionally pins the persistent
        // pool's inline path against the serial default config.
        let circuit = generators::ota8();
        let serial = genetic_algorithm(&circuit, &GaConfig::small());
        for workers in [1usize, 2, 4] {
            let cfg = GaConfig {
                workers,
                ..GaConfig::small()
            };
            let parallel = genetic_algorithm(&circuit, &cfg);
            assert_eq!(parallel.reward, serial.reward, "{workers} workers diverged");
            assert_eq!(parallel.evaluations, serial.evaluations);
            assert_eq!(parallel.floorplan, serial.floorplan);
        }
    }

    #[test]
    fn more_generations_do_not_hurt() {
        let circuit = generators::ota3();
        let short = genetic_algorithm(
            &circuit,
            &GaConfig {
                generations: 2,
                ..GaConfig::small()
            },
        );
        let long = genetic_algorithm(
            &circuit,
            &GaConfig {
                generations: 20,
                ..GaConfig::small()
            },
        );
        assert!(long.reward >= short.reward - 1e-9);
        assert!(long.evaluations > short.evaluations);
    }
}

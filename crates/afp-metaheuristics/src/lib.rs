//! # afp-metaheuristics — baseline floorplanners
//!
//! The comparison baselines of the paper's Table I, all operating on the
//! sequence-pair topological model of `afp-layout`:
//!
//! * [`simulated_annealing`] — SA, the methodology used by state-of-the-art
//!   automatic layout generators such as ALIGN \[28\],
//! * [`genetic_algorithm`] — GA with order crossover,
//! * [`particle_swarm`] — PSO with random-key permutation encoding,
//! * [`rl_sa`] — the RL + SA hybrid of the predecessor work \[13\],
//! * [`sequence_pair_rl`] — the pure per-instance sequence-pair RL of \[13\].
//!
//! Every baseline applies congestion-aware device spacing by default
//! (paper §V-B) so that its floorplans are comparable with the routing-ready
//! floorplans of the R-GCN + RL method, and every baseline reports the same
//! [`BaselineResult`] (runtime, HPWL, dead space, reward) that Table I lists.
//!
//! All baselines evaluate candidates through [`Problem::cost_cached`], which
//! runs `afp-layout`'s incremental cost pipeline (dirty-set FAST-SP pack →
//! dirty-block grid realization → dirty-set HPWL/violation metrics) —
//! bit-identical to the full recomputation, which is retained behind the
//! `full-realize` / `full-metrics` oracle features. The population
//! optimizers evaluate through an [`EvalPool`] — one [`CostCache`] per
//! worker, results bit-identical at any worker count; GA and PSO score
//! whole generations per call, SP-RL's one-candidate-at-a-time recurrence
//! uses the pool's serial entry point — while SA uses the locality-aware move mix
//! ([`MoveMix`], [`SaConfig::locality_bias`](SaConfig)) to keep the
//! incremental engines' dirty sets small. All thread pools are persistent
//! parked [`afp_par::WorkerPool`]s: spawned once per optimizer run, parked
//! between batches. On top of the single-run baselines, [`multistart_sa`]
//! races N independent SA chains (seeds derived by [`chain_seed`], restarts
//! via [`SaConfig::restarts`](SaConfig)) and [`Portfolio`] races SA variants
//! against GA and PSO, both with the deterministic [`select_winner`]
//! reduction. See `ARCHITECTURE.md` at the repository root for the
//! five-layer evaluation stack and its determinism contract, and
//! `docs/TUNING.md` for how to choose worker counts, population sizes, the
//! locality bias, and chain/restart splits.
//!
//! Every optimizer also has a `*_controlled` entry point taking a
//! [`RunControl`] — a wall-clock deadline, an evaluation budget, a
//! cooperative [`CancelToken`], and an opt-in first-feasible race mode —
//! and reports *why* it stopped in [`BaselineResult::stop`]
//! ([`StopReason`]). Controls are polled at deterministic strides and draw
//! nothing from the RNG, so an uninterrupted controlled run is bit-identical
//! to an uncontrolled one. Multi-start and portfolio races additionally
//! isolate panicking chains per slot ([`ChainOutcome`]) and reduce the
//! winner over the survivors; the `fault-inject` feature adds a
//! deterministic fault-injection harness over exactly that machinery.
//!
//! # Examples
//!
//! ```
//! use afp_circuit::generators;
//! use afp_metaheuristics::{simulated_annealing, SaConfig};
//!
//! let circuit = generators::ota3();
//! let result = simulated_annealing(&circuit, &SaConfig::small());
//! assert_eq!(result.floorplan.num_placed(), 3);
//! assert!(result.reward < 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod common;
mod ga;
mod multistart;
mod pso;
mod rl_sa;
mod sa;
mod sp_rl;

pub use common::{
    candidate_is_feasible, BaselineResult, Candidate, CancelToken, ChainOutcome, CostCache,
    EvalPool, MoveMix, PerturbUndo, Problem, RunControl, StopReason,
};
pub use common::panic_payload_message;
pub use ga::{
    genetic_algorithm, genetic_algorithm_controlled, genetic_algorithm_controlled_seeded, GaConfig,
};
#[cfg(feature = "fault-inject")]
pub use multistart::multistart_sa_injected;
pub use multistart::{
    chain_seed, multistart_sa, multistart_sa_controlled, multistart_sa_on,
    multistart_sa_on_controlled, multistart_sa_on_pooled, select_surviving_winner, select_winner,
    MultistartResult, MultistartSaConfig, Portfolio, PortfolioResult,
};
pub use pso::{particle_swarm, particle_swarm_controlled, PsoConfig};
pub use rl_sa::{rl_sa, rl_sa_controlled, RlSaConfig};
pub use sa::{
    simulated_annealing, simulated_annealing_controlled, simulated_annealing_controlled_traced,
    simulated_annealing_on, simulated_annealing_with_cache, SaConfig,
};
pub use sp_rl::{sequence_pair_rl, sequence_pair_rl_on, sequence_pair_rl_on_controlled, SpRlConfig};

use afp_circuit::Circuit;

/// Convenience enum naming every baseline, used by the Table I harness.
#[derive(Debug, Clone, PartialEq)]
pub enum Baseline {
    /// Simulated annealing.
    Sa(SaConfig),
    /// Genetic algorithm.
    Ga(GaConfig),
    /// Particle swarm optimization.
    Pso(PsoConfig),
    /// RL + SA hybrid of \[13\].
    RlSa(RlSaConfig),
    /// Pure sequence-pair RL of \[13\].
    SpRl(SpRlConfig),
}

impl Baseline {
    /// All baselines with their unit-test-sized configurations.
    pub fn all_small() -> Vec<Baseline> {
        vec![
            Baseline::Sa(SaConfig::small()),
            Baseline::Ga(GaConfig::small()),
            Baseline::Pso(PsoConfig::small()),
            Baseline::RlSa(RlSaConfig::small()),
            Baseline::SpRl(SpRlConfig::small()),
        ]
    }

    /// All baselines with their Table I reproduction configurations.
    pub fn all_table1() -> Vec<Baseline> {
        vec![
            Baseline::Sa(SaConfig::table1()),
            Baseline::Ga(GaConfig::table1()),
            Baseline::Pso(PsoConfig::table1()),
            Baseline::RlSa(RlSaConfig::table1()),
            Baseline::SpRl(SpRlConfig::table1()),
        ]
    }

    /// Display name used in tables (matches the paper's column headers).
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Sa(_) => "SA",
            Baseline::Ga(_) => "GA",
            Baseline::Pso(_) => "PSO",
            Baseline::RlSa(_) => "RL-SA",
            Baseline::SpRl(_) => "RL (SP)",
        }
    }

    /// Runs the baseline on a circuit with a specific seed (the Table I
    /// harness repeats runs over several seeds to report interquartile means).
    pub fn run(&self, circuit: &Circuit, seed: u64) -> BaselineResult {
        self.run_controlled(circuit, seed, &RunControl::unbounded())
    }

    /// [`Baseline::run`] under a [`RunControl`]: the control is threaded
    /// into the baseline's controlled entry point, so deadlines, budgets,
    /// cancellation and the first-feasible race mode apply uniformly across
    /// algorithms (this is what lets [`Portfolio`] race heterogeneous
    /// members under one shared control). An uninterrupted run is
    /// bit-identical to [`Baseline::run`].
    pub fn run_controlled(
        &self,
        circuit: &Circuit,
        seed: u64,
        control: &RunControl,
    ) -> BaselineResult {
        self.run_controlled_seeded(circuit, seed, control, None).0
    }

    /// [`Baseline::run_controlled`] with an optional warm-start candidate,
    /// returning the best candidate found (when the algorithm exposes one)
    /// alongside the result.
    ///
    /// This is the serve layer's entry point: a cached winner from a
    /// same-topology solve is passed as `warm` so the optimizer resumes from
    /// a known-good layout instead of a random start. Warm starts are honored
    /// by SA (initial walk state) and GA (population slot 0); PSO's
    /// random-key encoding and the RL baselines' learned policies have no
    /// clean injection point, so they run cold and `warm` is ignored. The
    /// returned candidate is `Some` for SA, GA and SP-RL — algorithms whose
    /// best candidate is exposed — and `None` otherwise. With `warm: None`
    /// the result is bit-identical to [`Baseline::run_controlled`].
    pub fn run_controlled_seeded(
        &self,
        circuit: &Circuit,
        seed: u64,
        control: &RunControl,
        warm: Option<&common::Candidate>,
    ) -> (BaselineResult, Option<common::Candidate>) {
        match self {
            Baseline::Sa(cfg) => {
                let cfg = SaConfig { seed, ..cfg.clone() };
                let problem = Problem::new(circuit);
                let mut cache = CostCache::new(&problem);
                let (result, best) = simulated_annealing_controlled_traced(
                    &problem,
                    &cfg,
                    warm.cloned(),
                    &mut cache,
                    control,
                );
                (result, Some(best))
            }
            Baseline::Ga(cfg) => {
                let cfg = GaConfig { seed, ..cfg.clone() };
                let (result, best) =
                    genetic_algorithm_controlled_seeded(circuit, &cfg, control, warm);
                (result, Some(best))
            }
            Baseline::Pso(cfg) => {
                let cfg = PsoConfig { seed, ..cfg.clone() };
                (particle_swarm_controlled(circuit, &cfg, control), None)
            }
            Baseline::RlSa(cfg) => {
                let mut cfg = cfg.clone();
                cfg.warmup.seed = seed;
                cfg.refinement.seed = seed.wrapping_add(1);
                (rl_sa_controlled(circuit, &cfg, control), None)
            }
            Baseline::SpRl(cfg) => {
                let cfg = SpRlConfig { seed, ..cfg.clone() };
                let problem = Problem::new(circuit);
                let (result, best) = sequence_pair_rl_on_controlled(&problem, &cfg, control);
                (result, Some(best))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn every_baseline_runs_on_a_small_circuit() {
        let circuit = generators::ota3();
        for baseline in Baseline::all_small() {
            let result = baseline.run(&circuit, 5);
            assert_eq!(
                result.floorplan.num_placed(),
                circuit.num_blocks(),
                "{} left blocks unplaced",
                baseline.name()
            );
            assert!(result.reward.is_finite(), "{}", baseline.name());
        }
    }

    #[test]
    fn names_match_table_one_columns() {
        let names: Vec<&str> = Baseline::all_small().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["SA", "GA", "PSO", "RL-SA", "RL (SP)"]);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let circuit = generators::ota5();
        let b = Baseline::Sa(SaConfig::small());
        let a = b.run(&circuit, 1);
        let c = b.run(&circuit, 2);
        // Not a strict requirement, but identical rewards for different seeds
        // on a 5-block circuit would indicate the seed is ignored.
        assert!(
            (a.reward - c.reward).abs() > 1e-12 || a.evaluations == c.evaluations
        );
    }
}

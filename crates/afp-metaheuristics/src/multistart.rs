//! Multi-start SA and the heterogeneous optimizer portfolio — the first
//! consumers of the persistent parked [`afp_par::WorkerPool`].
//!
//! Both entry points run *whole optimizer runs* as the unit of parallel work
//! (where [`EvalPool`](crate::EvalPool) parallelizes within a generation):
//! [`multistart_sa`] races N independent SA chains whose seeds are derived
//! from one base seed, and [`Portfolio`] races heterogeneous members — SA at
//! different locality biases and cooling schedules, GA, PSO — on the same
//! problem. Each pool worker keeps one warm [`CostCache`] across the chains
//! it serves, so a worker's second chain starts with hot realization and
//! metrics scratch.
//!
//! # Determinism
//!
//! The worker count is a scheduling decision, never a results decision:
//!
//! * Chain `i` always runs with [`chain_seed`]`(base_seed, i)` and every
//!   chain is an independent `simulated_annealing_with_cache` run —
//!   bit-identical to running the same config serially, because
//!   `cost_cached` returns the same bits regardless of cache state (the
//!   layer 1–4 contract) and chains share no mutable state.
//! * The winner is chosen by [`select_winner`]: feasible results beat
//!   infeasible ones, then strictly higher reward wins, and ties resolve to
//!   the lowest index — a pure function of the (ordered) results, so the
//!   same winner falls out at any worker count.
//!
//! The differential proptest `multistart_sa_matches_serial_replay` holds the
//! first property against N sequential replays; `portfolio_*` tests hold the
//! second.
//!
//! # Run control and failure domains
//!
//! The `*_controlled` entry points thread a [`RunControl`] through every
//! chain: each chain polls the shared deadline / budget / cancel token at
//! its own stride, the pool observes the control's cancel token at
//! chunk-claim boundaries (chains that never started come back as
//! [`ChainOutcome::Skipped`]), and — with
//! [`RunControl::with_stop_on_first_feasible`] — the first chain to reach a
//! feasible floorplan raises the token so the rest of the race stands down.
//! Race mode is off by default; an uninterrupted controlled run is
//! bit-identical to an uncontrolled one.
//!
//! Each chain is additionally its own failure domain: a panicking chain is
//! caught per slot and recorded as [`ChainOutcome::Panicked`] instead of
//! unwinding the whole race, its worker's [`CostCache`] is rebuilt from
//! scratch (panics can leave scratch state mid-update), and the winner is
//! reduced deterministically over the survivors. The `fault-inject` feature
//! adds [`multistart_sa_injected`], which drives exactly this machinery with
//! a seeded [`FaultPlan`](afp_par::fault::FaultPlan) — the robustness
//! proptests' entry point.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use afp_circuit::Circuit;
use afp_layout::constraints;
use afp_par::PoolHandle;

use crate::common::{
    panic_payload_message, BaselineResult, ChainOutcome, CostCache, Problem, RunControl, StopReason,
};
use crate::sa::{simulated_annealing_controlled, SaConfig};
use crate::{Baseline, GaConfig, PsoConfig};

/// Derives the seed of chain `chain` from a base seed: a splitmix64 finalizer
/// over `seed + chain · golden-ratio`, so consecutive chains get
/// well-separated RNG streams while chain 0 of two different base seeds never
/// collides with each other's chain 1.
///
/// This is the *only* seed rule multi-start uses — tests replay individual
/// chains by calling it directly.
pub fn chain_seed(seed: u64, chain: usize) -> u64 {
    let mut z = seed.wrapping_add((chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of [`multistart_sa`]: one base [`SaConfig`] cloned per chain
/// (with the seed rederived per chain), the number of chains, and the worker
/// count of the pool the chains run on.
#[derive(Debug, Clone, PartialEq)]
pub struct MultistartSaConfig {
    /// The per-chain SA configuration; `base.seed` is the *base* seed that
    /// [`chain_seed`] derives each chain's actual seed from.
    pub base: SaConfig,
    /// Number of independent chains (must be at least 1).
    pub chains: usize,
    /// Pool worker count: `0` means one per available hardware thread, and
    /// the effective count is clamped to `chains`. `1` runs the chains
    /// sequentially on the calling thread with no thread spawned.
    pub workers: usize,
}

impl MultistartSaConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        MultistartSaConfig {
            base: SaConfig::small(),
            chains: 4,
            workers: 0,
        }
    }

    /// Table-I-scale chains with restarts on: each chain reheats twice, the
    /// multi-start layer on top covers the cross-basin diversity that
    /// restarts alone (which always resume from the incumbent best) cannot.
    pub fn table1() -> Self {
        MultistartSaConfig {
            base: SaConfig {
                restarts: 2,
                ..SaConfig::table1()
            },
            chains: 4,
            workers: 0,
        }
    }
}

/// The outcome of a [`multistart_sa`] run: every chain's outcome (in chain
/// order — chain `i` ran seed [`chain_seed`]`(base, i)`) plus the winner
/// index under [`select_winner`], reduced over the surviving chains.
#[derive(Debug, Clone)]
pub struct MultistartResult {
    /// Per-chain outcomes, indexed by chain number. A chain that ran to its
    /// own stop is [`ChainOutcome::Finished`] (inspect its
    /// [`BaselineResult::stop`] for *why* it stopped); a chain whose run
    /// panicked is [`ChainOutcome::Panicked`]; a chain cancelled before it
    /// ever started is [`ChainOutcome::Skipped`].
    pub chains: Vec<ChainOutcome>,
    /// Index into [`chains`](MultistartResult::chains) of the winning chain
    /// under [`select_winner`]'s rule, reduced over the finished chains
    /// only. `None` when no chain finished (all panicked or skipped).
    pub winner: Option<usize>,
    /// Wall-clock time of the whole multi-start run in seconds.
    pub runtime_s: f64,
    /// Why the run as a whole ended — the aggregate of the per-chain stop
    /// reasons: [`StopReason::FirstFeasible`] if any chain won the race,
    /// otherwise the first chain-reported interrupt in chain order,
    /// otherwise [`StopReason::Cancelled`] if any chain was skipped,
    /// otherwise [`StopReason::Completed`].
    pub stop: StopReason,
}

impl MultistartResult {
    /// The winning chain's result, if any chain finished.
    pub fn best(&self) -> Option<&BaselineResult> {
        self.winner.and_then(|w| self.chains[w].result())
    }
}

/// Runs `config.chains` independent SA chains on a circuit and returns every
/// chain's outcome plus the deterministic winner. See [`multistart_sa_on`].
pub fn multistart_sa(circuit: &Circuit, config: &MultistartSaConfig) -> MultistartResult {
    let problem = Problem::new(circuit);
    multistart_sa_on(&problem, config)
}

/// [`multistart_sa`] on an existing [`Problem`]: races the chains over a
/// persistent [`afp_par::WorkerPool`] with one warm [`CostCache`] per worker.
///
/// Chain `i` is bit-identical to a serial
/// [`simulated_annealing_with_cache`](crate::simulated_annealing_with_cache)
/// run of the base config with seed [`chain_seed`]`(base.seed, i)` — at any
/// worker count. Only `runtime_s` (wall-clock) varies run to run.
///
/// # Panics
///
/// Panics if `config.chains` is zero.
pub fn multistart_sa_on(problem: &Problem, config: &MultistartSaConfig) -> MultistartResult {
    multistart_sa_on_controlled(problem, config, &RunControl::unbounded())
}

/// [`multistart_sa`] under a [`RunControl`] (circuit-level convenience for
/// [`multistart_sa_on_controlled`]).
pub fn multistart_sa_controlled(
    circuit: &Circuit,
    config: &MultistartSaConfig,
    control: &RunControl,
) -> MultistartResult {
    let problem = Problem::new(circuit);
    multistart_sa_on_controlled(&problem, config, control)
}

/// [`multistart_sa_on`] under a [`RunControl`]: every chain polls the shared
/// control, the pool observes its cancel token at chunk-claim boundaries,
/// and a panicking chain is isolated into [`ChainOutcome::Panicked`] with
/// its worker's cache rebuilt. An uninterrupted run (no deadline hit, no
/// cancellation, race mode off) is bit-identical to [`multistart_sa_on`].
///
/// # Panics
///
/// Panics if `config.chains` is zero.
pub fn multistart_sa_on_controlled(
    problem: &Problem,
    config: &MultistartSaConfig,
    control: &RunControl,
) -> MultistartResult {
    let workers = resolve_workers(config.workers).min(config.chains.max(1));
    multistart_sa_core(problem, config, control, &PoolHandle::new(workers), &|_| {})
}

/// [`multistart_sa_on_controlled`] over a *shared* [`PoolHandle`] instead of
/// a pool of its own: the serve-layer job engine (and any other long-lived
/// host) lends its process-wide workers to the race, so nested runners never
/// stack thread complements. `config.workers` is ignored — the handle's pool
/// decides the parallelism — and results are bit-identical to the owned-pool
/// entry points at any handle size (worker count is a scheduling decision,
/// never a results decision). When the handle's pool is busy (a re-entrant
/// dispatch from inside one of its own batches), the chains run inline on
/// the calling thread; see [`PoolHandle`].
///
/// # Panics
///
/// Panics if `config.chains` is zero.
pub fn multistart_sa_on_pooled(
    problem: &Problem,
    config: &MultistartSaConfig,
    control: &RunControl,
    pool: &PoolHandle,
) -> MultistartResult {
    multistart_sa_core(problem, config, control, pool, &|_| {})
}

/// [`multistart_sa_on_controlled`] with a deterministic [`FaultPlan`]
/// injecting a panic or a stall at the start of each planned chain — the
/// entry point of the robustness proptests. Injected panics exercise exactly
/// the production isolation path (per-slot catch, cache rebuild, surviving
/// winner); stalls only perturb scheduling, which results must not depend
/// on.
///
/// [`FaultPlan`]: afp_par::fault::FaultPlan
///
/// # Panics
///
/// Panics if `config.chains` is zero.
#[cfg(feature = "fault-inject")]
pub fn multistart_sa_injected(
    problem: &Problem,
    config: &MultistartSaConfig,
    control: &RunControl,
    plan: &afp_par::fault::FaultPlan,
) -> MultistartResult {
    let workers = resolve_workers(config.workers).min(config.chains.max(1));
    multistart_sa_core(problem, config, control, &PoolHandle::new(workers), &|chain| {
        plan.inject(chain as u64)
    })
}

/// The shared chain-racing core: `inject` runs at the top of each chain's
/// closure (a no-op in production, a [`FaultPlan`] probe under
/// `fault-inject`) *inside* the per-slot panic catch, so injected panics
/// take the same isolation path real ones would.
fn multistart_sa_core<F>(
    problem: &Problem,
    config: &MultistartSaConfig,
    control: &RunControl,
    pool: &PoolHandle,
    inject: &F,
) -> MultistartResult
where
    F: Fn(usize) + Sync,
{
    assert!(config.chains > 0, "multistart_sa needs at least one chain");
    let started = Instant::now();
    // One warm cache per effective worker. Whether the dispatch lands on the
    // pool's threads or falls back inline (shared-handle re-entrancy), each
    // chain's result is bit-identical — only cache warmth and wall-clock vary.
    let workers = pool.workers().min(config.chains);
    let mut caches: Vec<CostCache> = (0..workers).map(|_| CostCache::new(problem)).collect();
    let chain_ids: Vec<usize> = (0..config.chains).collect();
    let slots = pool.map_scoped_cancellable(
        &chain_ids,
        &mut caches,
        control.cancel_token(),
        |cache, &chain| {
            let cfg = SaConfig {
                seed: chain_seed(config.base.seed, chain),
                ..config.base.clone()
            };
            // Each chain is its own failure domain: catch its panic here (the
            // pool would otherwise re-raise it after the batch drains) and
            // rebuild this worker's cache, which the unwind may have left
            // mid-update.
            match catch_unwind(AssertUnwindSafe(|| {
                inject(chain);
                simulated_annealing_controlled(problem, &cfg, None, cache, control)
            })) {
                Ok(result) => ChainOutcome::Finished(result),
                Err(payload) => {
                    *cache = CostCache::new(problem);
                    ChainOutcome::Panicked(panic_payload_message(payload))
                }
            }
        },
    );
    let chains: Vec<ChainOutcome> = slots
        .into_iter()
        .map(|slot| slot.unwrap_or(ChainOutcome::Skipped))
        .collect();
    let winner = select_surviving_winner(problem.circuit(), &chains);
    let stop = aggregate_stop(&chains);
    MultistartResult {
        chains,
        winner,
        runtime_s: started.elapsed().as_secs_f64(),
        stop,
    }
}

/// The deterministic best-of reduction shared by [`multistart_sa`] and
/// [`Portfolio::run`]: feasible results (every block placed, no constraint
/// violations per [`afp_layout::constraints::has_violations`]) beat
/// infeasible ones; within a feasibility class, strictly higher reward wins;
/// ties keep the lowest index. A pure function of the ordered results — the
/// same winner falls out at any worker count.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn select_winner(circuit: &Circuit, results: &[BaselineResult]) -> usize {
    assert!(!results.is_empty(), "select_winner needs at least one result");
    let mut winner = 0;
    let mut best_key = (false, f64::NEG_INFINITY);
    for (index, result) in results.iter().enumerate() {
        let key = winner_key(circuit, result);
        // Strict comparisons throughout: equal keys keep the earlier index.
        if better_key(key, best_key) {
            winner = index;
            best_key = key;
        }
    }
    winner
}

/// [`select_winner`] over chain outcomes: panicked and skipped slots are
/// passed over, the reduction runs on the finished results only (same rule:
/// feasible > reward > lowest index). `None` when nothing finished.
pub fn select_surviving_winner(circuit: &Circuit, outcomes: &[ChainOutcome]) -> Option<usize> {
    let mut winner = None;
    let mut best_key = (false, f64::NEG_INFINITY);
    for (index, outcome) in outcomes.iter().enumerate() {
        let Some(result) = outcome.result() else { continue };
        let key = winner_key(circuit, result);
        if winner.is_none() || better_key(key, best_key) {
            winner = Some(index);
            best_key = key;
        }
    }
    winner
}

/// The (feasible, reward) ordering key of [`select_winner`].
fn winner_key(circuit: &Circuit, result: &BaselineResult) -> (bool, f64) {
    let feasible = result.floorplan.num_placed() == circuit.num_blocks()
        && !constraints::has_violations(circuit, &result.floorplan);
    (feasible, result.reward)
}

/// Strictly-better comparison on [`winner_key`]s (equal keys keep the
/// incumbent, i.e. the earlier index).
fn better_key(key: (bool, f64), best: (bool, f64)) -> bool {
    (key.0 && !best.0) || (key.0 == best.0 && key.1 > best.1)
}

/// The aggregate stop reason of a chain race, documented on
/// [`MultistartResult::stop`]: first-feasible beats everything, then the
/// first chain-reported interrupt in chain order, then `Cancelled` if any
/// chain was skipped (skips only happen when the token was raised), then
/// `Completed`. Panicked chains contribute nothing — a panic is an outcome,
/// not a stop reason.
fn aggregate_stop(outcomes: &[ChainOutcome]) -> StopReason {
    let mut reported: Option<StopReason> = None;
    let mut skipped = false;
    for outcome in outcomes {
        match outcome {
            ChainOutcome::Finished(result) => {
                if result.stop == StopReason::FirstFeasible {
                    return StopReason::FirstFeasible;
                }
                if result.stop.is_interrupted() && reported.is_none() {
                    reported = Some(result.stop);
                }
            }
            ChainOutcome::Skipped => skipped = true,
            ChainOutcome::Panicked(_) => {}
        }
    }
    match reported {
        Some(reason) => reason,
        None if skipped => StopReason::Cancelled,
        None => StopReason::Completed,
    }
}

/// A heterogeneous optimizer race: every member runs on the same circuit
/// (with member seeds derived by [`chain_seed`] from the portfolio seed) and
/// [`select_winner`] picks the result — the portfolio analogue of racing
/// many candidate solves against one shared engine.
///
/// Members run as whole, independent optimizer runs over a persistent
/// [`afp_par::WorkerPool`]. Population members (GA/PSO) are forced to `workers: 1`
/// for the duration of the race: they already occupy one portfolio worker
/// each, and a nested per-member pool would oversubscribe the machine
/// without changing any result (worker counts never change results).
///
/// [`Portfolio::run_controlled`] adds the same run-control and
/// failure-domain semantics as
/// [`multistart_sa_on_controlled`](crate::multistart_sa_on_controlled):
/// shared deadline/budget/cancel across members, per-member panic isolation,
/// and the optional first-feasible race mode.
///
/// # Examples
///
/// ```
/// use afp_circuit::generators;
/// use afp_metaheuristics::Portfolio;
///
/// let circuit = generators::ota5();
/// let portfolio = Portfolio::small_race();
/// let outcome = portfolio.run(&circuit);
/// assert_eq!(outcome.members.len(), portfolio.members.len());
/// assert!(outcome.best().expect("all members finished").reward.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// The racing members; member `i` runs with seed
    /// [`chain_seed`]`(seed, i)`.
    pub members: Vec<Baseline>,
    /// Pool worker count: `0` means one per available hardware thread,
    /// clamped to the member count; `1` runs members sequentially.
    pub workers: usize,
    /// Base seed the member seeds are derived from.
    pub seed: u64,
}

impl Portfolio {
    /// A small race for unit tests: three SA chains at spread-out locality
    /// biases plus GA and PSO, all at unit-test scale.
    pub fn small_race() -> Self {
        Portfolio {
            members: vec![
                Baseline::Sa(SaConfig::small()),
                Baseline::Sa(SaConfig {
                    locality_bias: 0.9,
                    ..SaConfig::small()
                }),
                Baseline::Sa(SaConfig {
                    cooling: 0.99,
                    restarts: 2,
                    ..SaConfig::small()
                }),
                Baseline::Ga(GaConfig::small()),
                Baseline::Pso(PsoConfig::small()),
            ],
            workers: 0,
            seed: 0,
        }
    }

    /// The Table-I-scale race: SA at locality biases 0.0 / 0.5 / 0.9 (the
    /// 0.5 member with restarts, the 0.9 member with slower cooling — the
    /// spread `docs/TUNING.md` motivates) against GA and PSO.
    pub fn table1_race() -> Self {
        Portfolio {
            members: vec![
                Baseline::Sa(SaConfig {
                    locality_bias: 0.0,
                    ..SaConfig::table1()
                }),
                Baseline::Sa(SaConfig {
                    restarts: 2,
                    ..SaConfig::table1()
                }),
                Baseline::Sa(SaConfig {
                    locality_bias: 0.9,
                    cooling: 0.99,
                    ..SaConfig::table1()
                }),
                Baseline::Ga(GaConfig::table1()),
                Baseline::Pso(PsoConfig::table1()),
            ],
            workers: 0,
            seed: 0,
        }
    }

    /// Races the members on a circuit: member `i` runs with seed
    /// [`chain_seed`]`(self.seed, i)`, results come back in member order,
    /// and [`select_winner`] picks the winner — all bit-identical at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if the portfolio has no members.
    pub fn run(&self, circuit: &Circuit) -> PortfolioResult {
        self.run_controlled(circuit, &RunControl::unbounded())
    }

    /// [`Portfolio::run`] under a [`RunControl`]: members poll the shared
    /// control, the pool observes its cancel token before dispatching each
    /// member (members cancelled before starting come back as
    /// [`ChainOutcome::Skipped`]), and a panicking member is isolated into
    /// [`ChainOutcome::Panicked`] instead of unwinding the race. An
    /// uninterrupted run is bit-identical to [`Portfolio::run`].
    ///
    /// # Panics
    ///
    /// Panics if the portfolio has no members.
    pub fn run_controlled(&self, circuit: &Circuit, control: &RunControl) -> PortfolioResult {
        assert!(!self.members.is_empty(), "portfolio needs at least one member");
        let started = Instant::now();
        // Nested pools would oversubscribe: each member already has a
        // portfolio worker, so population members evaluate serially inside
        // it. Results are unaffected (the layer-5 contract).
        let members: Vec<Baseline> = self
            .members
            .iter()
            .map(|member| match member {
                Baseline::Ga(cfg) => Baseline::Ga(GaConfig {
                    workers: 1,
                    ..cfg.clone()
                }),
                Baseline::Pso(cfg) => Baseline::Pso(PsoConfig {
                    workers: 1,
                    ..cfg.clone()
                }),
                other => other.clone(),
            })
            .collect();
        let workers = resolve_workers(self.workers).min(members.len());
        let pool = PoolHandle::new(workers);
        // Members build their own evaluation stacks (each `Baseline::run` is
        // a self-contained optimizer run), so the per-worker state is unit.
        let mut slots = vec![(); workers];
        let indexed: Vec<(usize, Baseline)> = members.into_iter().enumerate().collect();
        let raw = pool.map_scoped_cancellable(
            &indexed,
            &mut slots,
            control.cancel_token(),
            |_, (index, member)| {
                // Same failure-domain rule as multi-start chains; no cache to
                // rebuild here, members own their whole evaluation stack.
                match catch_unwind(AssertUnwindSafe(|| {
                    member.run_controlled(circuit, chain_seed(self.seed, *index), control)
                })) {
                    Ok(result) => ChainOutcome::Finished(result),
                    Err(payload) => ChainOutcome::Panicked(panic_payload_message(payload)),
                }
            },
        );
        let results: Vec<ChainOutcome> = raw
            .into_iter()
            .map(|slot| slot.unwrap_or(ChainOutcome::Skipped))
            .collect();
        let winner = select_surviving_winner(circuit, &results);
        let stop = aggregate_stop(&results);
        PortfolioResult {
            members: results,
            winner,
            runtime_s: started.elapsed().as_secs_f64(),
            stop,
        }
    }
}

/// The outcome of a [`Portfolio::run`]: every member's outcome in member
/// order plus the winner index under [`select_winner`], reduced over the
/// surviving members.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// Per-member outcomes, indexed like [`Portfolio::members`].
    pub members: Vec<ChainOutcome>,
    /// Index into [`members`](PortfolioResult::members) of the winner among
    /// the finished members; `None` when no member finished.
    pub winner: Option<usize>,
    /// Wall-clock time of the whole race in seconds.
    pub runtime_s: f64,
    /// Aggregate stop reason of the race (same rule as
    /// [`MultistartResult::stop`]).
    pub stop: StopReason,
}

impl PortfolioResult {
    /// The winning member's result, if any member finished.
    pub fn best(&self) -> Option<&BaselineResult> {
        self.winner.and_then(|w| self.members[w].result())
    }
}

fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    }
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use afp_par::CancelToken;

    use crate::sa::simulated_annealing_with_cache;

    fn finished(result: &MultistartResult, chain: usize) -> &BaselineResult {
        result.chains[chain]
            .result()
            .unwrap_or_else(|| panic!("chain {chain} did not finish"))
    }

    #[test]
    fn chain_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|i| chain_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "chain seeds collided");
        assert_eq!(seeds, (0..16).map(|i| chain_seed(7, i)).collect::<Vec<_>>());
    }

    #[test]
    fn multistart_is_bit_identical_at_any_worker_count() {
        let circuit = generators::ota8();
        let base_cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 150,
                seed: 11,
                ..SaConfig::small()
            },
            chains: 4,
            workers: 1,
        };
        let serial = multistart_sa(&circuit, &base_cfg);
        assert_eq!(serial.stop, StopReason::Completed);
        for workers in [2usize, 3, 4, 8] {
            let parallel = multistart_sa(
                &circuit,
                &MultistartSaConfig {
                    workers,
                    ..base_cfg.clone()
                },
            );
            assert_eq!(parallel.winner, serial.winner, "{workers} workers");
            for chain in 0..base_cfg.chains {
                let p = finished(&parallel, chain);
                let s = finished(&serial, chain);
                assert_eq!(p.reward, s.reward, "chain {chain} at {workers} workers");
                assert_eq!(p.floorplan, s.floorplan, "chain {chain} at {workers} workers");
                assert_eq!(p.evaluations, s.evaluations, "chain {chain} at {workers} workers");
            }
        }
    }

    #[test]
    fn multistart_chains_replay_individually() {
        // Chain i of a multi-start run is exactly a serial SA run with the
        // derived seed — the contract the seed rule exists for.
        let circuit = generators::ota5();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 120,
                seed: 3,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 2,
        };
        let result = multistart_sa(&circuit, &cfg);
        let problem = Problem::new(&circuit);
        for chain in 0..cfg.chains {
            let pooled = finished(&result, chain);
            let chain_cfg = SaConfig {
                seed: chain_seed(cfg.base.seed, chain),
                ..cfg.base.clone()
            };
            let mut cache = CostCache::new(&problem);
            let replay = simulated_annealing_with_cache(&problem, &chain_cfg, None, &mut cache);
            assert_eq!(pooled.reward, replay.reward, "chain {chain}");
            assert_eq!(pooled.floorplan, replay.floorplan, "chain {chain}");
        }
    }

    #[test]
    fn winner_rule_prefers_feasible_then_reward_then_index() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 200,
                ..SaConfig::small()
            },
            chains: 5,
            workers: 1,
        };
        let result = multistart_sa_on(&problem, &cfg);
        let winner_index = result.winner.expect("uncontrolled run always has a winner");
        let winner = finished(&result, winner_index);
        let winner_feasible = winner.floorplan.num_placed() == circuit.num_blocks()
            && !constraints::has_violations(&circuit, &winner.floorplan);
        for chain in 0..cfg.chains {
            let candidate = finished(&result, chain);
            let feasible = candidate.floorplan.num_placed() == circuit.num_blocks()
                && !constraints::has_violations(&circuit, &candidate.floorplan);
            assert!(
                !(feasible && !winner_feasible),
                "feasible chain {chain} lost to an infeasible winner"
            );
            if feasible == winner_feasible {
                assert!(
                    candidate.reward < winner.reward
                        || (candidate.reward == winner.reward && chain >= winner_index),
                    "chain {chain} should have beaten the winner"
                );
            }
        }
    }

    #[test]
    fn select_winner_breaks_reward_ties_by_lowest_index() {
        let circuit = generators::ota3();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 50,
                ..SaConfig::small()
            },
            chains: 2,
            workers: 1,
        };
        let result = multistart_sa(&circuit, &cfg);
        let finished_chains: Vec<BaselineResult> = (0..cfg.chains)
            .map(|chain| finished(&result, chain).clone())
            .collect();
        // Duplicate the results: the duplicate of the winner ties it exactly
        // and must lose on index.
        let mut doubled = finished_chains.clone();
        doubled.extend(finished_chains.iter().cloned());
        let winner = select_winner(&circuit, &doubled);
        assert!(winner < finished_chains.len(), "tie must keep the lowest index");
        assert_eq!(Some(winner), result.winner);
    }

    #[test]
    fn pooled_multistart_matches_the_owned_pool_entry_point() {
        // The shared-handle entry point must reproduce the owned-pool run
        // chain for chain, at any handle size — including a 1-worker handle,
        // which runs every chain inline on the calling thread.
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 120,
                seed: 21,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 2,
        };
        let owned = multistart_sa_on(&problem, &cfg);
        for handle_workers in [1usize, 2, 4] {
            let handle = PoolHandle::new(handle_workers);
            let pooled =
                multistart_sa_on_pooled(&problem, &cfg, &RunControl::unbounded(), &handle);
            assert_eq!(pooled.winner, owned.winner, "{handle_workers}-worker handle");
            for chain in 0..cfg.chains {
                let p = finished(&pooled, chain);
                let s = finished(&owned, chain);
                assert_eq!(p.reward, s.reward, "chain {chain}");
                assert_eq!(p.floorplan, s.floorplan, "chain {chain}");
            }
            // The race dispatched through the shared pool, not a private one.
            assert!(handle.stats().batches >= 1);
        }
    }

    #[test]
    fn controlled_multistart_with_generous_limits_is_bit_identical() {
        // An uninterrupted controlled run must replay the uncontrolled one
        // exactly — the determinism contract of the whole control layer.
        let circuit = generators::ota5();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 120,
                seed: 9,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 2,
        };
        let plain = multistart_sa(&circuit, &cfg);
        let control = RunControl::unbounded()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_budget(u64::MAX);
        let controlled = multistart_sa_controlled(&circuit, &cfg, &control);
        assert_eq!(controlled.winner, plain.winner);
        assert_eq!(controlled.stop, StopReason::Completed);
        for chain in 0..cfg.chains {
            assert_eq!(
                finished(&controlled, chain).reward,
                finished(&plain, chain).reward,
                "chain {chain}"
            );
            assert_eq!(
                finished(&controlled, chain).floorplan,
                finished(&plain, chain).floorplan,
                "chain {chain}"
            );
        }
    }

    #[test]
    fn pre_cancelled_multistart_skips_every_chain() {
        let circuit = generators::ota3();
        let token = CancelToken::new();
        token.cancel();
        let control = RunControl::unbounded().with_cancel_token(token);
        let result = multistart_sa_controlled(&circuit, &MultistartSaConfig::small(), &control);
        assert!(result.chains.iter().all(|c| matches!(c, ChainOutcome::Skipped)));
        assert_eq!(result.winner, None);
        assert!(result.best().is_none());
        assert_eq!(result.stop, StopReason::Cancelled);
    }

    #[test]
    fn budgeted_multistart_chains_stop_at_the_budget_and_still_pick_a_winner() {
        let circuit = generators::ota5();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 400,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 2,
        };
        let control = RunControl::unbounded().with_budget(40);
        let result = multistart_sa_controlled(&circuit, &cfg, &control);
        assert_eq!(result.stop, StopReason::Budget);
        for chain in 0..cfg.chains {
            let r = finished(&result, chain);
            assert_eq!(r.evaluations, 40, "chain {chain} overshot its budget");
            assert_eq!(r.stop, StopReason::Budget);
        }
        assert!(result.best().is_some());
    }

    #[test]
    fn first_feasible_race_returns_a_feasible_winner_and_cancels_the_rest() {
        // ota3 at unit-test scale reaches feasibility quickly, so the race
        // must end with a feasible winner and the FirstFeasible stop. With
        // workers: 1 the chains run in order, so the outcome is fully
        // deterministic: chain 0 wins, later chains are cancelled or skipped.
        let circuit = generators::ota3();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 4000,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 1,
        };
        let control = RunControl::unbounded().with_stop_on_first_feasible(true);
        let result = multistart_sa_controlled(&circuit, &cfg, &control);
        assert_eq!(result.stop, StopReason::FirstFeasible);
        let best = result.best().expect("race must produce a winner");
        assert_eq!(best.floorplan.num_placed(), circuit.num_blocks());
        assert!(!constraints::has_violations(&circuit, &best.floorplan));
        // Race mode is an explicit opt-in: the shared token is raised, so
        // the chains after the winner never ran to completion.
        assert!(control.cancel_token().is_cancelled());
    }

    #[test]
    fn surviving_winner_skips_panicked_and_skipped_slots() {
        let circuit = generators::ota3();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 60,
                ..SaConfig::small()
            },
            chains: 2,
            workers: 1,
        };
        let result = multistart_sa(&circuit, &cfg);
        let real = finished(&result, 0).clone();
        let outcomes = vec![
            ChainOutcome::Panicked("boom".to_string()),
            ChainOutcome::Skipped,
            ChainOutcome::Finished(real.clone()),
            ChainOutcome::Finished(real),
        ];
        // Slot 2 and 3 tie exactly; panicked/skipped slots before them must
        // not shift the index rule.
        assert_eq!(select_surviving_winner(&circuit, &outcomes), Some(2));
        let nobody = vec![
            ChainOutcome::Panicked("boom".to_string()),
            ChainOutcome::Skipped,
        ];
        assert_eq!(select_surviving_winner(&circuit, &nobody), None);
    }

    #[test]
    fn aggregate_stop_orders_first_feasible_over_interrupts_over_skips() {
        let circuit = generators::ota3();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 40,
                ..SaConfig::small()
            },
            chains: 1,
            workers: 1,
        };
        let done = finished(&multistart_sa(&circuit, &cfg), 0).clone();
        let feasible_stop = ChainOutcome::Finished(done.clone().with_stop(StopReason::FirstFeasible));
        let cancelled = ChainOutcome::Finished(done.clone().with_stop(StopReason::Cancelled));
        let completed = ChainOutcome::Finished(done);
        assert_eq!(
            aggregate_stop(&[cancelled.clone(), feasible_stop]),
            StopReason::FirstFeasible
        );
        assert_eq!(
            aggregate_stop(&[completed.clone(), cancelled]),
            StopReason::Cancelled
        );
        assert_eq!(
            aggregate_stop(&[completed.clone(), ChainOutcome::Skipped]),
            StopReason::Cancelled
        );
        assert_eq!(
            aggregate_stop(&[completed.clone(), ChainOutcome::Panicked("x".into())]),
            StopReason::Completed
        );
        assert_eq!(aggregate_stop(&[completed]), StopReason::Completed);
    }

    #[test]
    fn portfolio_is_bit_identical_at_any_worker_count() {
        let circuit = generators::ota5();
        let base = Portfolio {
            workers: 1,
            ..Portfolio::small_race()
        };
        let serial = base.run(&circuit);
        for workers in [2usize, 4] {
            let race = Portfolio { workers, ..base.clone() };
            let parallel = race.run(&circuit);
            assert_eq!(parallel.winner, serial.winner, "{workers} workers");
            for (index, (p, s)) in parallel.members.iter().zip(&serial.members).enumerate() {
                let p = p.result().expect("member finished");
                let s = s.result().expect("member finished");
                assert_eq!(p.reward, s.reward, "member {index} at {workers} workers");
                assert_eq!(p.floorplan, s.floorplan, "member {index} at {workers} workers");
            }
        }
    }

    #[test]
    fn portfolio_members_keep_their_algorithms() {
        let circuit = generators::ota3();
        let portfolio = Portfolio::small_race();
        let outcome = portfolio.run(&circuit);
        let names: Vec<&str> = outcome
            .members
            .iter()
            .map(|m| m.result().expect("member finished").algorithm.as_str())
            .collect();
        assert_eq!(names, vec!["SA", "SA", "SA", "GA", "PSO"]);
        assert_eq!(outcome.stop, StopReason::Completed);
        let best = outcome.best().expect("portfolio has a winner");
        assert_eq!(
            best.floorplan.num_placed(),
            circuit.num_blocks(),
            "portfolio winner left blocks unplaced"
        );
    }

    #[test]
    fn pre_cancelled_portfolio_skips_every_member() {
        let circuit = generators::ota3();
        let token = CancelToken::new();
        token.cancel();
        let control = RunControl::unbounded().with_cancel_token(token);
        let outcome = Portfolio::small_race().run_controlled(&circuit, &control);
        assert!(outcome.members.iter().all(|m| matches!(m, ChainOutcome::Skipped)));
        assert_eq!(outcome.winner, None);
        assert_eq!(outcome.stop, StopReason::Cancelled);
    }
}

//! Multi-start SA and the heterogeneous optimizer portfolio — the first
//! consumers of the persistent parked [`afp_par::WorkerPool`].
//!
//! Both entry points run *whole optimizer runs* as the unit of parallel work
//! (where [`EvalPool`](crate::EvalPool) parallelizes within a generation):
//! [`multistart_sa`] races N independent SA chains whose seeds are derived
//! from one base seed, and [`Portfolio`] races heterogeneous members — SA at
//! different locality biases and cooling schedules, GA, PSO — on the same
//! problem. Each pool worker keeps one warm [`CostCache`] across the chains
//! it serves, so a worker's second chain starts with hot realization and
//! metrics scratch.
//!
//! # Determinism
//!
//! The worker count is a scheduling decision, never a results decision:
//!
//! * Chain `i` always runs with [`chain_seed`]`(base_seed, i)` and every
//!   chain is an independent `simulated_annealing_with_cache` run —
//!   bit-identical to running the same config serially, because
//!   `cost_cached` returns the same bits regardless of cache state (the
//!   layer 1–4 contract) and chains share no mutable state.
//! * The winner is chosen by [`select_winner`]: feasible results beat
//!   infeasible ones, then strictly higher reward wins, and ties resolve to
//!   the lowest index — a pure function of the (ordered) results, so the
//!   same winner falls out at any worker count.
//!
//! The differential proptest `multistart_sa_matches_serial_replay` holds the
//! first property against N sequential replays; `portfolio_*` tests hold the
//! second.

use std::time::Instant;

use afp_circuit::Circuit;
use afp_layout::constraints;
use afp_par::WorkerPool;

use crate::common::{BaselineResult, CostCache, Problem};
use crate::sa::{simulated_annealing_with_cache, SaConfig};
use crate::{Baseline, GaConfig, PsoConfig};

/// Derives the seed of chain `chain` from a base seed: a splitmix64 finalizer
/// over `seed + chain · golden-ratio`, so consecutive chains get
/// well-separated RNG streams while chain 0 of two different base seeds never
/// collides with each other's chain 1.
///
/// This is the *only* seed rule multi-start uses — tests replay individual
/// chains by calling it directly.
pub fn chain_seed(seed: u64, chain: usize) -> u64 {
    let mut z = seed.wrapping_add((chain as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of [`multistart_sa`]: one base [`SaConfig`] cloned per chain
/// (with the seed rederived per chain), the number of chains, and the worker
/// count of the pool the chains run on.
#[derive(Debug, Clone, PartialEq)]
pub struct MultistartSaConfig {
    /// The per-chain SA configuration; `base.seed` is the *base* seed that
    /// [`chain_seed`] derives each chain's actual seed from.
    pub base: SaConfig,
    /// Number of independent chains (must be at least 1).
    pub chains: usize,
    /// Pool worker count: `0` means one per available hardware thread, and
    /// the effective count is clamped to `chains`. `1` runs the chains
    /// sequentially on the calling thread with no thread spawned.
    pub workers: usize,
}

impl MultistartSaConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        MultistartSaConfig {
            base: SaConfig::small(),
            chains: 4,
            workers: 0,
        }
    }

    /// Table-I-scale chains with restarts on: each chain reheats twice, the
    /// multi-start layer on top covers the cross-basin diversity that
    /// restarts alone (which always resume from the incumbent best) cannot.
    pub fn table1() -> Self {
        MultistartSaConfig {
            base: SaConfig {
                restarts: 2,
                ..SaConfig::table1()
            },
            chains: 4,
            workers: 0,
        }
    }
}

/// The outcome of a [`multistart_sa`] run: every chain's result (in chain
/// order — chain `i` ran seed [`chain_seed`]`(base, i)`) plus the winner
/// index under [`select_winner`].
#[derive(Debug, Clone)]
pub struct MultistartResult {
    /// Per-chain results, indexed by chain number.
    pub chains: Vec<BaselineResult>,
    /// Index into [`chains`](MultistartResult::chains) of the winning chain.
    pub winner: usize,
    /// Wall-clock time of the whole multi-start run in seconds.
    pub runtime_s: f64,
}

impl MultistartResult {
    /// The winning chain's result.
    pub fn best(&self) -> &BaselineResult {
        &self.chains[self.winner]
    }
}

/// Runs `config.chains` independent SA chains on a circuit and returns every
/// chain's result plus the deterministic winner. See [`multistart_sa_on`].
pub fn multistart_sa(circuit: &Circuit, config: &MultistartSaConfig) -> MultistartResult {
    let problem = Problem::new(circuit);
    multistart_sa_on(&problem, config)
}

/// [`multistart_sa`] on an existing [`Problem`]: races the chains over a
/// persistent [`WorkerPool`] with one warm [`CostCache`] per worker.
///
/// Chain `i` is bit-identical to a serial
/// [`simulated_annealing_with_cache`] run of the base config with seed
/// [`chain_seed`]`(base.seed, i)` — at any worker count. Only `runtime_s`
/// (wall-clock) varies run to run.
///
/// # Panics
///
/// Panics if `config.chains` is zero.
pub fn multistart_sa_on(problem: &Problem, config: &MultistartSaConfig) -> MultistartResult {
    assert!(config.chains > 0, "multistart_sa needs at least one chain");
    let started = Instant::now();
    let workers = resolve_workers(config.workers).min(config.chains);
    let mut pool = WorkerPool::new(workers);
    let mut caches: Vec<CostCache> = (0..workers).map(|_| CostCache::new(problem)).collect();
    let chain_ids: Vec<usize> = (0..config.chains).collect();
    let chains = pool.map_scoped(&chain_ids, &mut caches, |cache, &chain| {
        let cfg = SaConfig {
            seed: chain_seed(config.base.seed, chain),
            ..config.base.clone()
        };
        simulated_annealing_with_cache(problem, &cfg, None, cache)
    });
    let winner = select_winner(problem.circuit(), &chains);
    MultistartResult {
        chains,
        winner,
        runtime_s: started.elapsed().as_secs_f64(),
    }
}

/// The deterministic best-of reduction shared by [`multistart_sa`] and
/// [`Portfolio::run`]: feasible results (every block placed, no constraint
/// violations per [`afp_layout::constraints::has_violations`]) beat
/// infeasible ones; within a feasibility class, strictly higher reward wins;
/// ties keep the lowest index. A pure function of the ordered results — the
/// same winner falls out at any worker count.
///
/// # Panics
///
/// Panics if `results` is empty.
pub fn select_winner(circuit: &Circuit, results: &[BaselineResult]) -> usize {
    assert!(!results.is_empty(), "select_winner needs at least one result");
    let mut winner = 0;
    let mut best_key = (false, f64::NEG_INFINITY);
    for (index, result) in results.iter().enumerate() {
        let feasible = result.floorplan.num_placed() == circuit.num_blocks()
            && !constraints::has_violations(circuit, &result.floorplan);
        let key = (feasible, result.reward);
        // Strict comparisons throughout: equal keys keep the earlier index.
        let better = (key.0 && !best_key.0) || (key.0 == best_key.0 && key.1 > best_key.1);
        if better {
            winner = index;
            best_key = key;
        }
    }
    winner
}

/// A heterogeneous optimizer race: every member runs on the same circuit
/// (with member seeds derived by [`chain_seed`] from the portfolio seed) and
/// [`select_winner`] picks the result — the portfolio analogue of racing
/// many candidate solves against one shared engine.
///
/// Members run as whole, independent optimizer runs over a persistent
/// [`WorkerPool`]. Population members (GA/PSO) are forced to `workers: 1`
/// for the duration of the race: they already occupy one portfolio worker
/// each, and a nested per-member pool would oversubscribe the machine
/// without changing any result (worker counts never change results).
///
/// # Examples
///
/// ```
/// use afp_circuit::generators;
/// use afp_metaheuristics::Portfolio;
///
/// let circuit = generators::ota5();
/// let portfolio = Portfolio::small_race();
/// let outcome = portfolio.run(&circuit);
/// assert_eq!(outcome.members.len(), portfolio.members.len());
/// assert!(outcome.best().reward.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// The racing members; member `i` runs with seed
    /// [`chain_seed`]`(seed, i)`.
    pub members: Vec<Baseline>,
    /// Pool worker count: `0` means one per available hardware thread,
    /// clamped to the member count; `1` runs members sequentially.
    pub workers: usize,
    /// Base seed the member seeds are derived from.
    pub seed: u64,
}

impl Portfolio {
    /// A small race for unit tests: three SA chains at spread-out locality
    /// biases plus GA and PSO, all at unit-test scale.
    pub fn small_race() -> Self {
        Portfolio {
            members: vec![
                Baseline::Sa(SaConfig::small()),
                Baseline::Sa(SaConfig {
                    locality_bias: 0.9,
                    ..SaConfig::small()
                }),
                Baseline::Sa(SaConfig {
                    cooling: 0.99,
                    restarts: 2,
                    ..SaConfig::small()
                }),
                Baseline::Ga(GaConfig::small()),
                Baseline::Pso(PsoConfig::small()),
            ],
            workers: 0,
            seed: 0,
        }
    }

    /// The Table-I-scale race: SA at locality biases 0.0 / 0.5 / 0.9 (the
    /// 0.5 member with restarts, the 0.9 member with slower cooling — the
    /// spread `docs/TUNING.md` motivates) against GA and PSO.
    pub fn table1_race() -> Self {
        Portfolio {
            members: vec![
                Baseline::Sa(SaConfig {
                    locality_bias: 0.0,
                    ..SaConfig::table1()
                }),
                Baseline::Sa(SaConfig {
                    restarts: 2,
                    ..SaConfig::table1()
                }),
                Baseline::Sa(SaConfig {
                    locality_bias: 0.9,
                    cooling: 0.99,
                    ..SaConfig::table1()
                }),
                Baseline::Ga(GaConfig::table1()),
                Baseline::Pso(PsoConfig::table1()),
            ],
            workers: 0,
            seed: 0,
        }
    }

    /// Races the members on a circuit: member `i` runs with seed
    /// [`chain_seed`]`(self.seed, i)`, results come back in member order,
    /// and [`select_winner`] picks the winner — all bit-identical at any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if the portfolio has no members.
    pub fn run(&self, circuit: &Circuit) -> PortfolioResult {
        assert!(!self.members.is_empty(), "portfolio needs at least one member");
        let started = Instant::now();
        // Nested pools would oversubscribe: each member already has a
        // portfolio worker, so population members evaluate serially inside
        // it. Results are unaffected (the layer-5 contract).
        let members: Vec<Baseline> = self
            .members
            .iter()
            .map(|member| match member {
                Baseline::Ga(cfg) => Baseline::Ga(GaConfig {
                    workers: 1,
                    ..cfg.clone()
                }),
                Baseline::Pso(cfg) => Baseline::Pso(PsoConfig {
                    workers: 1,
                    ..cfg.clone()
                }),
                other => other.clone(),
            })
            .collect();
        let workers = resolve_workers(self.workers).min(members.len());
        let mut pool = WorkerPool::new(workers);
        // Members build their own evaluation stacks (each `Baseline::run` is
        // a self-contained optimizer run), so the per-worker state is unit.
        let mut slots = vec![(); workers];
        let indexed: Vec<(usize, Baseline)> = members.into_iter().enumerate().collect();
        let results = pool.map_scoped(&indexed, &mut slots, |_, (index, member)| {
            member.run(circuit, chain_seed(self.seed, *index))
        });
        let winner = select_winner(circuit, &results);
        PortfolioResult {
            members: results,
            winner,
            runtime_s: started.elapsed().as_secs_f64(),
        }
    }
}

/// The outcome of a [`Portfolio::run`]: every member's result in member
/// order plus the winner index under [`select_winner`].
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// Per-member results, indexed like [`Portfolio::members`].
    pub members: Vec<BaselineResult>,
    /// Index into [`members`](PortfolioResult::members) of the winner.
    pub winner: usize,
    /// Wall-clock time of the whole race in seconds.
    pub runtime_s: f64,
}

impl PortfolioResult {
    /// The winning member's result.
    pub fn best(&self) -> &BaselineResult {
        &self.members[self.winner]
    }
}

fn resolve_workers(workers: usize) -> usize {
    if workers == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        workers
    }
    .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn chain_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..16).map(|i| chain_seed(7, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "chain seeds collided");
        assert_eq!(seeds, (0..16).map(|i| chain_seed(7, i)).collect::<Vec<_>>());
    }

    #[test]
    fn multistart_is_bit_identical_at_any_worker_count() {
        let circuit = generators::ota8();
        let base_cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 150,
                seed: 11,
                ..SaConfig::small()
            },
            chains: 4,
            workers: 1,
        };
        let serial = multistart_sa(&circuit, &base_cfg);
        for workers in [2usize, 3, 4, 8] {
            let parallel = multistart_sa(
                &circuit,
                &MultistartSaConfig {
                    workers,
                    ..base_cfg.clone()
                },
            );
            assert_eq!(parallel.winner, serial.winner, "{workers} workers");
            for (chain, (p, s)) in parallel.chains.iter().zip(&serial.chains).enumerate() {
                assert_eq!(p.reward, s.reward, "chain {chain} at {workers} workers");
                assert_eq!(p.floorplan, s.floorplan, "chain {chain} at {workers} workers");
                assert_eq!(p.evaluations, s.evaluations, "chain {chain} at {workers} workers");
            }
        }
    }

    #[test]
    fn multistart_chains_replay_individually() {
        // Chain i of a multi-start run is exactly a serial SA run with the
        // derived seed — the contract the seed rule exists for.
        let circuit = generators::ota5();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 120,
                seed: 3,
                ..SaConfig::small()
            },
            chains: 3,
            workers: 2,
        };
        let result = multistart_sa(&circuit, &cfg);
        let problem = Problem::new(&circuit);
        for (chain, pooled) in result.chains.iter().enumerate() {
            let chain_cfg = SaConfig {
                seed: chain_seed(cfg.base.seed, chain),
                ..cfg.base.clone()
            };
            let mut cache = CostCache::new(&problem);
            let replay = simulated_annealing_with_cache(&problem, &chain_cfg, None, &mut cache);
            assert_eq!(pooled.reward, replay.reward, "chain {chain}");
            assert_eq!(pooled.floorplan, replay.floorplan, "chain {chain}");
        }
    }

    #[test]
    fn winner_rule_prefers_feasible_then_reward_then_index() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 200,
                ..SaConfig::small()
            },
            chains: 5,
            workers: 1,
        };
        let result = multistart_sa_on(&problem, &cfg);
        let winner = &result.chains[result.winner];
        let winner_feasible = winner.floorplan.num_placed() == circuit.num_blocks()
            && !constraints::has_violations(&circuit, &winner.floorplan);
        for (index, chain) in result.chains.iter().enumerate() {
            let feasible = chain.floorplan.num_placed() == circuit.num_blocks()
                && !constraints::has_violations(&circuit, &chain.floorplan);
            if feasible && !winner_feasible {
                panic!("feasible chain {index} lost to an infeasible winner");
            }
            if feasible == winner_feasible {
                assert!(
                    chain.reward < winner.reward
                        || (chain.reward == winner.reward && index >= result.winner),
                    "chain {index} should have beaten the winner"
                );
            }
        }
    }

    #[test]
    fn select_winner_breaks_reward_ties_by_lowest_index() {
        let circuit = generators::ota3();
        let cfg = MultistartSaConfig {
            base: SaConfig {
                iterations: 50,
                ..SaConfig::small()
            },
            chains: 2,
            workers: 1,
        };
        let result = multistart_sa(&circuit, &cfg);
        // Duplicate the results: the duplicate of the winner ties it exactly
        // and must lose on index.
        let mut doubled = result.chains.clone();
        doubled.extend(result.chains.iter().cloned());
        let winner = select_winner(&circuit, &doubled);
        assert!(winner < result.chains.len(), "tie must keep the lowest index");
        assert_eq!(winner, result.winner);
    }

    #[test]
    fn portfolio_is_bit_identical_at_any_worker_count() {
        let circuit = generators::ota5();
        let base = Portfolio {
            workers: 1,
            ..Portfolio::small_race()
        };
        let serial = base.run(&circuit);
        for workers in [2usize, 4] {
            let race = Portfolio { workers, ..base.clone() };
            let parallel = race.run(&circuit);
            assert_eq!(parallel.winner, serial.winner, "{workers} workers");
            for (index, (p, s)) in parallel.members.iter().zip(&serial.members).enumerate() {
                assert_eq!(p.reward, s.reward, "member {index} at {workers} workers");
                assert_eq!(p.floorplan, s.floorplan, "member {index} at {workers} workers");
            }
        }
    }

    #[test]
    fn portfolio_members_keep_their_algorithms() {
        let circuit = generators::ota3();
        let portfolio = Portfolio::small_race();
        let outcome = portfolio.run(&circuit);
        let names: Vec<&str> = outcome.members.iter().map(|m| m.algorithm.as_str()).collect();
        assert_eq!(names, vec!["SA", "SA", "SA", "GA", "PSO"]);
        assert!(outcome.winner < outcome.members.len());
        assert_eq!(
            outcome.best().floorplan.num_placed(),
            circuit.num_blocks(),
            "portfolio winner left blocks unplaced"
        );
    }
}

//! Simulated annealing over sequence pairs — the workhorse baseline of analog
//! floorplanning (and the optimizer used by ALIGN [28], which the paper cites
//! as the state-of-the-art automatic layout generator it compares against).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use afp_circuit::Circuit;

use crate::common::{
    candidate_is_feasible, BaselineResult, Candidate, CostCache, MoveMix, Problem, RunControl,
    StopReason,
};

/// Simulated-annealing configuration.
///
/// # Examples
///
/// The locality-aware move mix biases sequence swaps toward adjacent
/// positions, which keeps the incremental cost pipeline's dirty sets small
/// (see `docs/TUNING.md`). A zero bias reproduces the historical uniform
/// walk bit-for-bit:
///
/// ```
/// use afp_circuit::generators;
/// use afp_metaheuristics::{simulated_annealing, SaConfig};
///
/// let circuit = generators::ota5();
/// let uniform = SaConfig { locality_bias: 0.0, ..SaConfig::small() };
/// let local = SaConfig { locality_bias: 0.8, ..SaConfig::small() };
/// let a = simulated_annealing(&circuit, &uniform);
/// let b = simulated_annealing(&circuit, &local);
/// // Both anneal the same budget; only the proposal distribution differs.
/// assert_eq!(a.evaluations, b.evaluations);
/// assert!(a.reward.is_finite() && b.reward.is_finite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Total number of proposed moves.
    pub iterations: usize,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every `moves_per_temperature`.
    pub cooling: f64,
    /// Number of moves between temperature updates.
    pub moves_per_temperature: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a sequence-swap proposal exchanges adjacent positions
    /// instead of two uniform ones (see [`MoveMix`]). Adjacent swaps shrink
    /// the incremental pipeline's dirty sets, raising move throughput; `0.0`
    /// reproduces the historical uniform walk bit-for-bit.
    pub locality_bias: f64,
    /// Number of restarts: the move budget is split into `restarts + 1` equal
    /// segments, and at each segment boundary the chain teleports back to the
    /// incumbent best and the temperature is reheated (see
    /// [`reheat_factor`](SaConfig::reheat_factor)). Restart boundaries draw
    /// nothing from the RNG, so `0` — the default everywhere — replays
    /// historical move streams bit-for-bit, and a restarted run stays
    /// deterministic for its seed.
    pub restarts: usize,
    /// On restart the temperature is raised to at least
    /// `initial_temperature * reheat_factor` (it is never lowered: a segment
    /// still hotter than the reheat target keeps its temperature). Ignored
    /// when `restarts` is `0`.
    pub reheat_factor: f64,
}

impl SaConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        SaConfig {
            iterations: 400,
            initial_temperature: 1.0,
            cooling: 0.95,
            moves_per_temperature: 20,
            seed: 0,
            locality_bias: 0.0,
            restarts: 0,
            reheat_factor: 0.5,
        }
    }

    /// The configuration used by the Table I reproduction: enough moves for
    /// circuits up to 19 blocks while keeping SA runtimes in the ~1 s range
    /// the paper reports. The locality-aware move mix is on (half the swaps
    /// are adjacent): it feeds the dirty-set machinery without giving up the
    /// long-range moves a cooling schedule still needs early on.
    pub fn table1() -> Self {
        SaConfig {
            iterations: 4_000,
            initial_temperature: 2.0,
            cooling: 0.97,
            moves_per_temperature: 50,
            seed: 0,
            locality_bias: 0.5,
            restarts: 0,
            reheat_factor: 0.5,
        }
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig::small()
    }
}

/// Runs simulated annealing on a circuit and returns the best floorplan found.
pub fn simulated_annealing(circuit: &Circuit, config: &SaConfig) -> BaselineResult {
    let problem = Problem::new(circuit);
    simulated_annealing_on(&problem, config, None)
}

/// Runs simulated annealing on an existing problem, optionally starting from a
/// provided candidate (used by the RL-SA hybrid baseline).
pub fn simulated_annealing_on(
    problem: &Problem,
    config: &SaConfig,
    initial: Option<Candidate>,
) -> BaselineResult {
    let mut cache = CostCache::new(problem);
    simulated_annealing_with_cache(problem, config, initial, &mut cache)
}

/// [`simulated_annealing_on`] with a caller-provided [`CostCache`], so runs
/// can reuse evaluation buffers — and so the determinism regression tests can
/// drive the identical annealing schedule through the incremental and the
/// full (`full-realize` oracle) realization paths.
pub fn simulated_annealing_with_cache(
    problem: &Problem,
    config: &SaConfig,
    initial: Option<Candidate>,
    cache: &mut CostCache,
) -> BaselineResult {
    simulated_annealing_controlled(problem, config, initial, cache, &RunControl::unbounded())
}

/// [`simulated_annealing_with_cache`] under a [`RunControl`]: the full SA
/// loop with a deadline / budget / cancellation poll per move.
///
/// The control is polled with the move counter as the tick: the evaluation
/// budget is compared exactly on every move (a budget stop always lands on
/// the same evaluation count), while the wall clock, the cancel token and —
/// when [`RunControl::stop_on_first_feasible`] is on — the feasibility of
/// the incumbent best are only checked every [`RunControl::stride`] moves.
/// Polling draws nothing from the RNG, so a run the control never interrupts
/// is bit-identical to [`simulated_annealing_with_cache`] without one. An
/// interrupted run returns the best candidate found so far with the
/// interrupting [`StopReason`] in [`BaselineResult::stop`]; a first-feasible
/// stop additionally raises the shared cancel token so sibling racers stop.
pub fn simulated_annealing_controlled(
    problem: &Problem,
    config: &SaConfig,
    initial: Option<Candidate>,
    cache: &mut CostCache,
    control: &RunControl,
) -> BaselineResult {
    simulated_annealing_controlled_traced(problem, config, initial, cache, control).0
}

/// [`simulated_annealing_controlled`] that additionally returns the best
/// *candidate* (sequence pair + shape choices) alongside the result.
///
/// The serve layer's warm-start path needs the winning candidate — not just
/// its realized floorplan — so a near-identical request (same topology,
/// perturbed shapes or config) can resume the walk from the cached winner
/// instead of a random start. The traced run is the plain controlled run
/// with the internal `best` cloned out at the end: same RNG stream, same
/// trajectory, bit-identical [`BaselineResult`].
pub fn simulated_annealing_controlled_traced(
    problem: &Problem,
    config: &SaConfig,
    initial: Option<Candidate>,
    cache: &mut CostCache,
    control: &RunControl,
) -> (BaselineResult, Candidate) {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mix = MoveMix::local(config.locality_bias);
    let mut current =
        initial.unwrap_or_else(|| Candidate::random(problem.num_blocks(), &mut rng));
    let mut current_cost = problem.cost_cached(&current, cache);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut temperature = config.initial_temperature;
    let mut evaluations = 1;
    let mut stop = StopReason::Completed;

    // Entry poll (tick 0): a pre-raised token, an expired deadline, an
    // already-exhausted budget — or a warm start that is already feasible
    // under a first-feasible race — stops before the first move.
    if let Some(reason) = control.poll(0, evaluations as u64) {
        let result = BaselineResult::from_candidate("SA", problem, &best, started, evaluations)
            .with_stop(reason);
        return (result, best);
    }
    if control.stop_on_first_feasible() && candidate_is_feasible(problem, &best) {
        control.cancel();
        let result = BaselineResult::from_candidate("SA", problem, &best, started, evaluations)
            .with_stop(StopReason::FirstFeasible);
        return (result, best);
    }

    // Restart boundaries split the budget into `restarts + 1` equal segments
    // (integer division leaves the remainder to the last segment). The check
    // below draws nothing from the RNG, so with `restarts: 0` this function
    // is instruction-for-instruction the historical annealing loop.
    let segments = config.restarts + 1;
    let mut next_boundary = 1usize;

    for step in 0..config.iterations {
        // Perturb in place and remember the inverse move: a rejected proposal
        // is reverted with two index swaps instead of cloning the candidate
        // on every iteration.
        let undo = current.perturb_with(&mix, &mut rng);
        let proposal_cost = problem.cost_cached(&current, cache);
        evaluations += 1;
        let delta = proposal_cost - current_cost;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp();
        if accept {
            current_cost = proposal_cost;
            if current_cost < best_cost {
                best.clone_from(&current);
                best_cost = current_cost;
            }
        } else {
            current.undo(undo);
        }
        if (step + 1) % config.moves_per_temperature == 0 {
            temperature *= config.cooling;
        }
        if next_boundary <= config.restarts
            && step + 1 == next_boundary * config.iterations / segments
        {
            // Restart: resume the walk from the incumbent best (abandoning a
            // chain that wandered into a penalty basin) with enough heat to
            // escape the best's own neighborhood.
            current.clone_from(&best);
            current_cost = best_cost;
            temperature = temperature.max(config.initial_temperature * config.reheat_factor);
            next_boundary += 1;
        }
        // Control poll, after the move has fully settled: nothing here
        // touches the RNG, so an uninterrupted run replays the historical
        // stream bit-for-bit.
        let tick = (step + 1) as u64;
        if let Some(reason) = control.poll(tick, evaluations as u64) {
            stop = reason;
            break;
        }
        if control.stop_on_first_feasible()
            && tick % control.stride() == 0
            && candidate_is_feasible(problem, &best)
        {
            control.cancel();
            stop = StopReason::FirstFeasible;
            break;
        }
    }
    let result =
        BaselineResult::from_candidate("SA", problem, &best, started, evaluations).with_stop(stop);
    (result, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;

    #[test]
    fn sa_improves_over_random_start() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let mut rng = StdRng::seed_from_u64(7);
        let random = Candidate::random(problem.num_blocks(), &mut rng);
        let random_cost = problem.cost(&random);
        let result = simulated_annealing(&circuit, &SaConfig::small());
        assert!(
            -result.reward <= random_cost,
            "SA ({}) should not be worse than a random candidate ({})",
            -result.reward,
            random_cost
        );
        assert_eq!(result.floorplan.num_placed(), circuit.num_blocks());
        assert!(result.runtime_s >= 0.0);
        assert_eq!(result.algorithm, "SA");
    }

    #[test]
    fn sa_is_deterministic_for_a_seed() {
        let circuit = generators::ota3();
        let cfg = SaConfig {
            iterations: 150,
            ..SaConfig::small()
        };
        let a = simulated_annealing(&circuit, &cfg);
        let b = simulated_annealing(&circuit, &cfg);
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn sa_on_bias2_is_identical_with_incremental_realization_on_and_off() {
        // Determinism regression for the incremental engine: a fixed seed on
        // Bias-2 (19 blocks) must produce the same accept/reject trajectory,
        // final cost and final floorplan whether cost evaluations realize
        // incrementally or from scratch. Any divergence in a single snap
        // decision would change the cost stream and split the trajectories.
        let circuit = generators::bias19();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 800,
            seed: 0xB1A5,
            ..SaConfig::table1()
        };
        let mut inc_cache = CostCache::new(&problem);
        inc_cache.set_incremental(true);
        let incremental = simulated_annealing_with_cache(&problem, &cfg, None, &mut inc_cache);
        let mut full_cache = CostCache::new(&problem);
        full_cache.set_incremental(false);
        let full = simulated_annealing_with_cache(&problem, &cfg, None, &mut full_cache);
        assert_eq!(incremental.reward, full.reward, "final cost diverged");
        assert_eq!(incremental.evaluations, full.evaluations);
        assert_eq!(incremental.floorplan, full.floorplan, "final floorplan diverged");
        assert!(
            inc_cache.realize_stats().hit_rate() > 0.0,
            "incremental path never engaged on the SA walk"
        );
    }

    #[test]
    fn locality_biased_walk_is_deterministic_and_places_everything() {
        let circuit = generators::ota8();
        let cfg = SaConfig {
            iterations: 300,
            locality_bias: 0.9,
            ..SaConfig::small()
        };
        let a = simulated_annealing(&circuit, &cfg);
        let b = simulated_annealing(&circuit, &cfg);
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.floorplan.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn zero_bias_reproduces_the_historical_uniform_walk() {
        // `sa_is_deterministic_for_a_seed` pins run-to-run stability; this
        // pins *cross-config* stability: a `locality_bias: 0.0` config is the
        // pre-locality SA, same RNG stream and all, so explicitly passing the
        // uniform mix must change nothing against the `small()` default.
        let circuit = generators::ota5();
        let base = SaConfig::small();
        assert_eq!(base.locality_bias, 0.0);
        let explicit = SaConfig {
            locality_bias: 0.0,
            ..base.clone()
        };
        let a = simulated_annealing(&circuit, &base);
        let b = simulated_annealing(&circuit, &explicit);
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.floorplan, b.floorplan);
    }

    #[test]
    fn zero_restarts_replays_the_historical_stream_bit_for_bit() {
        // The restart fields must be inert at their defaults: a config that
        // spells out `restarts: 0` (with any reheat factor) is the historical
        // annealing loop, same RNG stream, same trajectory, same floorplan.
        let circuit = generators::ota8();
        let base = SaConfig {
            iterations: 300,
            seed: 42,
            ..SaConfig::table1()
        };
        assert_eq!(base.restarts, 0);
        let explicit = SaConfig {
            restarts: 0,
            reheat_factor: 0.9,
            ..base.clone()
        };
        let a = simulated_annealing(&circuit, &base);
        let b = simulated_annealing(&circuit, &explicit);
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.floorplan, b.floorplan);
    }

    #[test]
    fn restarted_walk_is_deterministic_and_spends_the_same_budget() {
        // Restart boundaries draw nothing from the RNG: the proposal stream
        // is shared with the non-restarted run, only the accept states
        // diverge. Evaluations (and thus the move budget) must not change,
        // and the run must stay seed-deterministic.
        let circuit = generators::ota8();
        let plain = SaConfig {
            iterations: 400,
            seed: 9,
            ..SaConfig::table1()
        };
        let restarted = SaConfig {
            restarts: 3,
            reheat_factor: 0.5,
            ..plain.clone()
        };
        let a = simulated_annealing(&circuit, &restarted);
        let b = simulated_annealing(&circuit, &restarted);
        assert_eq!(a.reward, b.reward);
        assert_eq!(a.floorplan, b.floorplan);
        let base = simulated_annealing(&circuit, &plain);
        assert_eq!(a.evaluations, base.evaluations, "restarts must not change the budget");
        assert_eq!(a.floorplan.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn generous_control_is_bit_identical_to_no_control() {
        // The tentpole determinism contract at unit scale: deadline an hour
        // out, budget far above the move count, non-default stride — the
        // control must never influence the trajectory.
        let circuit = generators::ota8();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 300,
            seed: 77,
            ..SaConfig::table1()
        };
        let mut plain_cache = CostCache::new(&problem);
        let plain = simulated_annealing_with_cache(&problem, &cfg, None, &mut plain_cache);
        let control = RunControl::unbounded()
            .with_deadline(std::time::Duration::from_secs(3600))
            .with_budget(1_000_000)
            .with_stride(16);
        let mut cache = CostCache::new(&problem);
        let controlled =
            simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        assert_eq!(controlled.reward, plain.reward);
        assert_eq!(controlled.evaluations, plain.evaluations);
        assert_eq!(controlled.floorplan, plain.floorplan);
        assert_eq!(controlled.stop, StopReason::Completed);
        assert_eq!(plain.stop, StopReason::Completed);
    }

    #[test]
    fn budget_stops_at_the_exact_evaluation_count() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 400,
            ..SaConfig::small()
        };
        let control = RunControl::unbounded().with_budget(57);
        let mut cache = CostCache::new(&problem);
        let result = simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        assert_eq!(result.stop, StopReason::Budget);
        assert_eq!(result.evaluations, 57, "budget stops are exact");
        assert_eq!(result.floorplan.num_placed(), circuit.num_blocks());
        assert!(result.reward.is_finite(), "best-so-far must be a real result");
    }

    #[test]
    fn expired_deadline_returns_best_so_far_within_a_stride() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 10_000,
            ..SaConfig::small()
        };
        let control = RunControl::unbounded()
            .with_deadline(std::time::Duration::from_secs(0))
            .with_stride(32);
        let mut cache = CostCache::new(&problem);
        let result = simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        assert_eq!(result.stop, StopReason::Deadline);
        // The entry poll fires at tick 0, before any move.
        assert_eq!(result.evaluations, 1);
        assert_eq!(result.floorplan.num_placed(), circuit.num_blocks());
    }

    #[test]
    fn cancellation_stops_the_walk_and_is_recorded() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 5_000,
            ..SaConfig::small()
        };
        let control = RunControl::unbounded().with_stride(8);
        control.cancel();
        let mut cache = CostCache::new(&problem);
        let result = simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        assert_eq!(result.stop, StopReason::Cancelled);
        assert_eq!(result.evaluations, 1, "pre-cancelled runs stop at entry");
    }

    #[test]
    fn budgeted_prefix_matches_the_unbounded_runs_prefix() {
        // An interrupted run is the *prefix* of the uncontrolled run: same
        // seed, fewer moves. Re-running with iterations = budget - 1 (the
        // initial evaluation consumes one) must land on the same best.
        let circuit = generators::ota8();
        let problem = Problem::new(&circuit);
        let cfg = SaConfig {
            iterations: 400,
            seed: 5,
            ..SaConfig::small()
        };
        let control = RunControl::unbounded().with_budget(101);
        let mut cache = CostCache::new(&problem);
        let budgeted = simulated_annealing_controlled(&problem, &cfg, None, &mut cache, &control);
        assert_eq!(budgeted.stop, StopReason::Budget);
        assert_eq!(budgeted.evaluations, 101);
        let truncated_cfg = SaConfig {
            iterations: 100,
            ..cfg
        };
        let truncated = simulated_annealing(&circuit, &truncated_cfg);
        assert_eq!(budgeted.reward, truncated.reward);
        assert_eq!(budgeted.floorplan, truncated.floorplan);
    }

    #[test]
    fn warm_start_is_respected() {
        let circuit = generators::ota3();
        let problem = Problem::new(&circuit);
        let warm = Candidate::identity(problem.num_blocks(), problem.shape_sets());
        let cfg = SaConfig {
            iterations: 10,
            ..SaConfig::small()
        };
        let result = simulated_annealing_on(&problem, &cfg, Some(warm.clone()));
        // With almost no iterations the result cannot be worse than the warm start.
        assert!(-result.reward <= problem.cost(&warm) + 1e-9);
    }
}

//! RL-SA hybrid baseline ("RL-SA [13]" column of Table I).
//!
//! The predecessor work [13] combines a learned proposal policy with a short
//! simulated-annealing refinement: the policy quickly produces a decent
//! sequence pair, SA then polishes it. Runtimes are close to plain SA (the
//! policy warm-up is short), which matches the 1–2.5 s range the paper
//! reports for this column.

use std::time::Instant;

use afp_circuit::Circuit;

use crate::common::{BaselineResult, CostCache, Problem, RunControl};
use crate::sa::{simulated_annealing_controlled, SaConfig};
use crate::sp_rl::{sequence_pair_rl_on_controlled, SpRlConfig};

/// Configuration of the RL-SA hybrid.
#[derive(Debug, Clone, PartialEq)]
pub struct RlSaConfig {
    /// Configuration of the short policy warm-up stage.
    pub warmup: SpRlConfig,
    /// Configuration of the SA refinement stage.
    pub refinement: SaConfig,
}

impl RlSaConfig {
    /// A configuration small enough for unit tests.
    pub fn small() -> Self {
        RlSaConfig {
            warmup: SpRlConfig {
                episodes: 6,
                moves_per_episode: 6,
                ..SpRlConfig::small()
            },
            refinement: SaConfig {
                iterations: 200,
                ..SaConfig::small()
            },
        }
    }

    /// Configuration used for the Table I reproduction.
    pub fn table1() -> Self {
        RlSaConfig {
            warmup: SpRlConfig {
                episodes: 30,
                moves_per_episode: 20,
                ..SpRlConfig::table1()
            },
            refinement: SaConfig::table1(),
        }
    }
}

impl Default for RlSaConfig {
    fn default() -> Self {
        RlSaConfig::small()
    }
}

/// Runs the RL-SA hybrid on a circuit.
pub fn rl_sa(circuit: &Circuit, config: &RlSaConfig) -> BaselineResult {
    rl_sa_controlled(circuit, config, &RunControl::unbounded())
}

/// [`rl_sa`] under a [`RunControl`].
///
/// The deadline and the cancel token are global — either stage observes them
/// and stops. The *evaluation budget*, however, applies per optimizer stage:
/// each stage polls with its own evaluation counter, so a budget of `b`
/// allows up to `b` warm-up evaluations and then up to `b` refinement
/// evaluations. (Threading one shared counter through would change no
/// uninterrupted trajectory but would complicate the per-stage entry points
/// for little gain; callers wanting a global cap can budget the stages via
/// their configs.) If the warm-up is interrupted its best candidate is
/// returned directly — refinement never starts on a deadline already missed.
pub fn rl_sa_controlled(
    circuit: &Circuit,
    config: &RlSaConfig,
    control: &RunControl,
) -> BaselineResult {
    let problem = Problem::new(circuit);
    let started = Instant::now();
    let (warmup_result, warm_candidate) =
        sequence_pair_rl_on_controlled(&problem, &config.warmup, control);
    if warmup_result.stop.is_interrupted() {
        return BaselineResult {
            algorithm: "RL-SA".to_string(),
            runtime_s: started.elapsed().as_secs_f64(),
            ..warmup_result
        };
    }
    let mut cache = CostCache::new(&problem);
    let refined = simulated_annealing_controlled(
        &problem,
        &config.refinement,
        Some(warm_candidate),
        &mut cache,
        control,
    );
    let evaluations = warmup_result.evaluations + refined.evaluations;
    // The refinement stage is the one the control interrupted (or completed);
    // its stop reason describes the hybrid run regardless of which stage's
    // candidate wins below.
    let stop = refined.stop;
    // Keep the better of the two stages (SA should rarely lose, but the warm
    // start is never discarded if refinement regresses).
    let best = if refined.reward >= warmup_result.reward {
        refined
    } else {
        warmup_result
    };
    BaselineResult {
        algorithm: "RL-SA".to_string(),
        runtime_s: started.elapsed().as_secs_f64(),
        evaluations,
        stop,
        ..best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use crate::sa::simulated_annealing;

    #[test]
    fn rl_sa_runs_and_places_everything() {
        let circuit = generators::ota5();
        let result = rl_sa(&circuit, &RlSaConfig::small());
        assert_eq!(result.floorplan.num_placed(), circuit.num_blocks());
        assert_eq!(result.algorithm, "RL-SA");
        assert!(result.reward.is_finite());
    }

    #[test]
    fn rl_sa_is_deterministic_per_seed() {
        let circuit = generators::ota3();
        let a = rl_sa(&circuit, &RlSaConfig::small());
        let b = rl_sa(&circuit, &RlSaConfig::small());
        assert_eq!(a.reward, b.reward);
    }

    #[test]
    fn hybrid_is_competitive_with_plain_sa_at_equal_budget() {
        let circuit = generators::ota5();
        let hybrid = rl_sa(&circuit, &RlSaConfig::small());
        let plain = simulated_annealing(
            &circuit,
            &SaConfig {
                iterations: 200,
                ..SaConfig::small()
            },
        );
        // The warm start must not make things catastrophically worse.
        assert!(hybrid.reward >= plain.reward - 2.0);
    }
}

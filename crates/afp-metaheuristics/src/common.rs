//! Shared machinery of the baseline floorplanners: candidate encoding,
//! cost function, perturbation moves and result reporting.

use std::time::Instant;

use rand::Rng;

use afp_circuit::{shapes::shape_sets, Circuit, Shape, ShapeSet, SHAPES_PER_BLOCK};
use afp_layout::{metrics, Canvas, Floorplan, RewardWeights, SequencePair, SpacingConfig};

/// A candidate solution: a sequence pair plus the index of the chosen
/// candidate shape for every block.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Positive sequence (block indices).
    pub positive: Vec<usize>,
    /// Negative sequence (block indices).
    pub negative: Vec<usize>,
    /// Chosen shape index per block (0..SHAPES_PER_BLOCK).
    pub shape_choice: Vec<usize>,
}

impl Candidate {
    /// The identity candidate: natural order, most-square shapes.
    pub fn identity(num_blocks: usize, shape_sets: &[ShapeSet]) -> Self {
        Candidate {
            positive: (0..num_blocks).collect(),
            negative: (0..num_blocks).collect(),
            shape_choice: shape_sets.iter().map(|s| s.most_square()).collect(),
        }
    }

    /// A uniformly random candidate.
    pub fn random<R: Rng + ?Sized>(num_blocks: usize, rng: &mut R) -> Self {
        let mut positive: Vec<usize> = (0..num_blocks).collect();
        let mut negative: Vec<usize> = (0..num_blocks).collect();
        shuffle(&mut positive, rng);
        shuffle(&mut negative, rng);
        Candidate {
            positive,
            negative,
            shape_choice: (0..num_blocks)
                .map(|_| rng.gen_range(0..SHAPES_PER_BLOCK))
                .collect(),
        }
    }

    /// Applies a random perturbation move in place: swap two blocks in the
    /// positive sequence, in the negative sequence, in both, or change one
    /// block's shape.
    pub fn perturb<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.positive.len();
        if n < 2 {
            return;
        }
        match rng.gen_range(0..4) {
            0 => {
                let (i, j) = two_distinct(n, rng);
                self.positive.swap(i, j);
            }
            1 => {
                let (i, j) = two_distinct(n, rng);
                self.negative.swap(i, j);
            }
            2 => {
                let (i, j) = two_distinct(n, rng);
                self.positive.swap(i, j);
                let (i, j) = two_distinct(n, rng);
                self.negative.swap(i, j);
            }
            _ => {
                let b = rng.gen_range(0..n);
                self.shape_choice[b] = rng.gen_range(0..SHAPES_PER_BLOCK);
            }
        }
    }

    /// Converts the candidate to a packed [`SequencePair`] over the given
    /// shapes (one [`ShapeSet`] per block, optionally congestion-inflated).
    pub fn to_sequence_pair(&self, shapes: &[Shape]) -> SequencePair {
        SequencePair {
            positive: self.positive.clone(),
            negative: self.negative.clone(),
            shapes: shapes.to_vec(),
        }
    }
}

fn shuffle<R: Rng + ?Sized, T>(v: &mut [T], rng: &mut R) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

fn two_distinct<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (usize, usize) {
    let i = rng.gen_range(0..n);
    let mut j = rng.gen_range(0..n);
    while j == i {
        j = rng.gen_range(0..n);
    }
    (i, j)
}

/// The shared evaluation context: circuit, canvas, per-block shape sets,
/// optional congestion-aware spacing and the reward normalization.
#[derive(Debug)]
pub struct Problem {
    /// The circuit being floorplanned.
    pub circuit: Circuit,
    /// The placement canvas.
    pub canvas: Canvas,
    /// Candidate shapes per block.
    pub shape_sets: Vec<ShapeSet>,
    /// Congestion-aware spacing applied to baseline shapes (paper §V-B), or
    /// `None` to pack the raw shapes.
    pub spacing: Option<SpacingConfig>,
    /// `HPWL_min` estimate used by the reward (paper Eq. 5).
    pub hpwl_min: f64,
    /// Reward weights (α, β, γ, violation penalty).
    pub weights: RewardWeights,
}

impl Problem {
    /// Builds the evaluation context for a circuit with the paper's defaults
    /// (congestion-aware spacing enabled for baselines).
    pub fn new(circuit: &Circuit) -> Self {
        Problem {
            canvas: Canvas::for_circuit(circuit),
            shape_sets: shape_sets(circuit),
            spacing: Some(SpacingConfig::default()),
            hpwl_min: metrics::hpwl_lower_bound(circuit),
            weights: RewardWeights::default(),
            circuit: circuit.clone(),
        }
    }

    /// Disables the congestion-aware spacing decoration.
    pub fn without_spacing(mut self) -> Self {
        self.spacing = None;
        self
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.circuit.num_blocks()
    }

    /// The (possibly inflated) shape of each block under a candidate's shape
    /// choices.
    pub fn shapes_for(&self, candidate: &Candidate) -> Vec<Shape> {
        let raw: Vec<Shape> = candidate
            .shape_choice
            .iter()
            .enumerate()
            .map(|(b, &s)| self.shape_sets[b].shape(s))
            .collect();
        match &self.spacing {
            Some(cfg) => cfg.inflate_all(&self.circuit, &raw),
            None => raw,
        }
    }

    /// Realizes a candidate as a floorplan on the shared canvas.
    pub fn realize(&self, candidate: &Candidate) -> Floorplan {
        let shapes = self.shapes_for(candidate);
        candidate
            .to_sequence_pair(&shapes)
            .to_floorplan(&self.circuit, self.canvas)
    }

    /// Cost of a candidate (lower is better): the negative episode reward of
    /// its floorplan, so that cost minimization and reward maximization agree.
    pub fn cost(&self, candidate: &Candidate) -> f64 {
        let floorplan = self.realize(candidate);
        -metrics::episode_reward(&self.circuit, &floorplan, self.hpwl_min, &self.weights)
    }
}

/// The outcome of one baseline optimization run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Name of the algorithm that produced the result.
    pub algorithm: String,
    /// The final floorplan.
    pub floorplan: Floorplan,
    /// Metrics of the final floorplan.
    pub metrics: metrics::FloorplanMetrics,
    /// Episode reward (paper Eq. 5) of the final floorplan.
    pub reward: f64,
    /// Wall-clock optimization time in seconds.
    pub runtime_s: f64,
    /// Number of candidate evaluations performed.
    pub evaluations: usize,
}

impl BaselineResult {
    /// Assembles a result from a problem and its best candidate.
    pub fn from_candidate(
        algorithm: &str,
        problem: &Problem,
        candidate: &Candidate,
        started: Instant,
        evaluations: usize,
    ) -> Self {
        let floorplan = problem.realize(candidate);
        let m = metrics::metrics(&problem.circuit, &floorplan);
        let reward = metrics::episode_reward(
            &problem.circuit,
            &floorplan,
            problem.hpwl_min,
            &problem.weights,
        );
        BaselineResult {
            algorithm: algorithm.to_string(),
            floorplan,
            metrics: m,
            reward,
            runtime_s: started.elapsed().as_secs_f64(),
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afp_circuit::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_candidate_is_well_formed() {
        let circuit = generators::ota5();
        let problem = Problem::new(&circuit);
        let c = Candidate::identity(problem.num_blocks(), &problem.shape_sets);
        assert_eq!(c.positive.len(), 5);
        assert_eq!(c.shape_choice.len(), 5);
        let cost = problem.cost(&c);
        assert!(cost.is_finite() && cost > 0.0);
    }

    #[test]
    fn random_candidates_are_permutations() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Candidate::random(8, &mut rng);
        let mut pos = c.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..8).collect::<Vec<_>>());
        let mut neg = c.negative.clone();
        neg.sort_unstable();
        assert_eq!(neg, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn perturbation_preserves_permutation_property() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Candidate::random(10, &mut rng);
        for _ in 0..50 {
            c.perturb(&mut rng);
        }
        let mut pos = c.positive.clone();
        pos.sort_unstable();
        assert_eq!(pos, (0..10).collect::<Vec<_>>());
        assert!(c.shape_choice.iter().all(|&s| s < SHAPES_PER_BLOCK));
    }

    #[test]
    fn spacing_increases_cost() {
        let circuit = generators::ota8();
        let with = Problem::new(&circuit);
        let without = Problem::new(&circuit).without_spacing();
        let c = Candidate::identity(with.num_blocks(), &with.shape_sets);
        // Inflated shapes should not make the floorplan cheaper.
        assert!(with.cost(&c) >= without.cost(&c) * 0.99);
    }

    #[test]
    fn realize_places_all_blocks() {
        let circuit = generators::bias9();
        let problem = Problem::new(&circuit);
        let mut rng = StdRng::seed_from_u64(3);
        let c = Candidate::random(problem.num_blocks(), &mut rng);
        let fp = problem.realize(&c);
        assert_eq!(fp.num_placed(), circuit.num_blocks());
    }
}
